//! Air-time allocation across a multichannel group
//! (`bda_core::multichannel`).
//!
//! Splitting a broadcast cycle over K channels at equal aggregate
//! bandwidth is only a win if placement follows popularity: every
//! per-channel byte airs K× slower, so an evenly striped cycle is
//! *strictly worse* than single-channel for uniform demand (same weighted
//! scan, plus switch costs). The allocator's job is to find the partition
//! — and for indexed groups the `(channel, slot)` placement — that turns
//! channel parallelism into shorter expected access time:
//!
//! * **Striped schemes** ([`best_striped`]) — exact dynamic program over
//!   contiguous partitions of the key-sorted (= popularity-sorted, the
//!   repo-wide identity-ranking convention) record list. Slice `g` rides
//!   channel `g`; every query homed off channel 0 pays the switch cost.
//!   The naive even partition is in the search space, so the result is
//!   never worse than even striping *by construction*.
//! * **Indexed groups** ([`indexed_search`]) — greedy local search over
//!   `(channel, slot)` swaps, in the spirit of the Kenyon–Schabanel–Young
//!   schedule-improvement step: start from even contiguous placement and
//!   accept slot/channel swaps among the hottest records while the
//!   predicted access time drops. The prediction is a closed form built
//!   on a residue-class argument (below), not a simulation.
//!
//! **The cross-channel wait, exactly.** The directory bucket of key `k`
//! ends at a fixed offset within channel 0's cycle (`C0` ticks long); the
//! data bucket airs at offset `o` in its channel's cycle (`L` ticks). As
//! the client's tune-in cycle varies, the arrival instant
//! `dir_end + switch_cost` sweeps the residues `{c·C0 mod L}` — exactly
//! the multiples of `g = gcd(C0, L)`. The expected wait to the data
//! bucket's next occurrence is therefore
//! `((o − base) mod g) + (L − g)/2`, and the **conflict rate** — the
//! fraction of alignments where the needed data bucket was airing while
//! the client was still reading the directory or retuning (just missed
//! it, forcing a whole extra `L`) — is `g/L` when
//! `(o − base) mod g > g − bucket`, else 0. Striped groups never
//! conflict: a query needs buckets of exactly one channel.

use bda_core::Params;

use crate::Model;

/// One striped air-time allocation: slice sizes per channel (channel 0
/// first) plus the predicted weighted metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StripedAllocation {
    /// Channels in use (= `sizes.len()`).
    pub channels: u32,
    /// Records per channel, in key order; sums to the dataset size.
    pub sizes: Vec<usize>,
    /// Predicted popularity-weighted metrics, switch cost included.
    pub predicted: Model,
}

/// Predicted weighted metrics of striping `weights.len()` records into
/// the given contiguous `sizes` (channel 0 first), where `slice_model`
/// is the inner scheme's single-channel closed form evaluated under the
/// K-dilated params. Queries homed off channel 0 pay `switch_cost` of
/// access time (tuning is unaffected — a retuning radio is deaf).
pub fn striped_predict(
    params: &Params,
    weights: &[f64],
    sizes: &[usize],
    switch_cost: u64,
    slice_model: impl Fn(&Params, usize) -> Model,
) -> Model {
    assert_eq!(sizes.iter().sum::<usize>(), weights.len());
    let scaled = params.scaled(sizes.len() as u32);
    let mut access = 0.0;
    let mut tuning = 0.0;
    let mut lo = 0usize;
    for (g, &m) in sizes.iter().enumerate() {
        let w: f64 = weights[lo..lo + m].iter().sum();
        let model = slice_model(&scaled, m);
        let sw = if g == 0 { 0.0 } else { switch_cost as f64 };
        access += w * (model.access + sw);
        tuning += w * model.tuning;
        lo += m;
    }
    Model { access, tuning }
}

/// The naive baseline: even contiguous striping over `k` channels.
pub fn even_striped(
    params: &Params,
    weights: &[f64],
    k: u32,
    switch_cost: u64,
    slice_model: impl Fn(&Params, usize) -> Model,
) -> StripedAllocation {
    let sizes = bda_core::even_partition(weights.len(), k as usize);
    let predicted = striped_predict(params, weights, &sizes, switch_cost, slice_model);
    StripedAllocation {
        channels: sizes.len() as u32,
        sizes,
        predicted,
    }
}

/// The exact best contiguous partition into `k` slices: an `O(k·n²)`
/// dynamic program minimizing predicted weighted access time. Because
/// the even partition is one of the candidates, the result's predicted
/// access is `≤` [`even_striped`]'s — the allocator can refuse to help,
/// never hurt.
pub fn best_striped(
    params: &Params,
    weights: &[f64],
    k: u32,
    switch_cost: u64,
    slice_model: impl Fn(&Params, usize) -> Model,
) -> StripedAllocation {
    let n = weights.len();
    let k = (k as usize).clamp(1, n);
    let scaled = params.scaled(k as u32);
    // Per-slice-size access cost of the inner scheme (weight-independent:
    // every cycle position is equally far from a uniform tune-in).
    let slice_access: Vec<f64> = (0..=n)
        .map(|m| {
            if m == 0 {
                0.0
            } else {
                slice_model(&scaled, m).access
            }
        })
        .collect();
    let mut prefix = vec![0.0f64; n + 1];
    for (i, w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let sw = switch_cost as f64;
    const INF: f64 = f64::INFINITY;
    // dp[g][i]: cheapest cover of records 0..i with slices on channels
    // 0..g. choice[g][i]: the split point producing it.
    let mut dp = vec![vec![INF; n + 1]; k + 1];
    let mut choice = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0.0;
    for g in 1..=k {
        for i in g..=n {
            // Slice g-1 covers records j..i; leave room for g-1 earlier
            // slices and k-g later ones.
            let hi_j = i - 1;
            let lo_j = g - 1;
            if i > n - (k - g) {
                continue;
            }
            for j in lo_j..=hi_j {
                if dp[g - 1][j] == INF {
                    continue;
                }
                let w = prefix[i] - prefix[j];
                let switch = if g == 1 { 0.0 } else { sw };
                let cost = dp[g - 1][j] + w * (slice_access[i - j] + switch);
                if cost < dp[g][i] {
                    dp[g][i] = cost;
                    choice[g][i] = j;
                }
            }
        }
    }
    let mut sizes = vec![0usize; k];
    let mut i = n;
    for g in (1..=k).rev() {
        let j = choice[g][i];
        sizes[g - 1] = i - j;
        i = j;
    }
    let predicted = striped_predict(params, weights, &sizes, switch_cost, &slice_model);
    StripedAllocation {
        channels: k as u32,
        sizes,
        predicted,
    }
}

/// Pick the channel count: run [`best_striped`] for every candidate `K`
/// (each at equal aggregate bandwidth — the K-dilated params) and keep
/// the lowest predicted weighted access time.
pub fn pick_channels(
    params: &Params,
    weights: &[f64],
    candidates: &[u32],
    switch_cost: u64,
    slice_model: impl Fn(&Params, usize) -> Model,
) -> StripedAllocation {
    candidates
        .iter()
        .map(|&k| best_striped(params, weights, k, switch_cost, &slice_model))
        .min_by(|a, b| a.predicted.access.total_cmp(&b.predicted.access))
        .expect("no candidate channel counts")
}

// ---------------------------------------------------------------------------
// Indexed groups: per-(channel, slot) placement.
// ---------------------------------------------------------------------------

/// One indexed-group allocation: a per-record `(channel, slot)` placement
/// (the exact shape `IndexedGroupScheme::with_placement` takes) plus the
/// predicted metrics and the conflict rate.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedAllocation {
    /// Total channels, index channel 0 included.
    pub channels: u32,
    /// `(channel, slot)` of record `i` of the key-sorted dataset.
    pub placement: Vec<(u32, u32)>,
    /// Predicted popularity-weighted metrics, switch cost included.
    pub predicted: Model,
    /// Popularity-weighted fraction of accesses whose needed data bucket
    /// airs while the client is still reading the directory or retuning.
    pub conflict_rate: f64,
}

/// Frozen per-group geometry shared by every prediction.
struct Geometry {
    bs: u64,
    fanout: usize,
    roots: usize,
    dirs: usize,
    cycle0: u64,
    switch_cost: u64,
}

impl Geometry {
    fn new(params: &Params, n: usize, channels: u32, switch_cost: u64) -> Self {
        let scaled = params.scaled(channels);
        let bs = u64::from(scaled.data_bucket_size());
        let fanout = scaled.index_entries_per_bucket();
        let dirs = n.div_ceil(fanout);
        let roots = dirs.div_ceil(fanout);
        Geometry {
            bs,
            fanout,
            roots,
            dirs,
            cycle0: (roots + dirs) as u64 * bs,
            switch_cost,
        }
    }

    /// Expected time (and listened bytes) from tune-in to the end of the
    /// covering directory read for record `p`, averaged exactly over the
    /// channel-0 bucket the uniform tune-in lands the client on —
    /// mirroring the group walk's dispatch arithmetic step for step.
    fn pre_switch(&self, p: usize) -> (f64, f64) {
        let bs = self.bs as f64;
        let j = p / self.fanout;
        let r = j / self.fanout;
        let total = self.roots + self.dirs;
        // Full resynchronization from the end of probed bucket q: doze to
        // the next root block, scan roots 0..=r, doze to dir j, read it.
        let resync = |q: usize| {
            (total - (q + 1)) as f64 * bs
                + (r + 1) as f64 * bs
                + ((self.roots + j) as f64 - (r + 1) as f64) * bs
                + bs
        };
        let mut time = 0.0;
        let mut listen = 0.0;
        for q in 0..total {
            // Half a partial bucket listened through, plus the probed
            // bucket itself.
            let t0 = 1.5 * bs;
            let (t, l) = if q < self.roots {
                if r >= q {
                    // Scan forward from the landed root to the covering
                    // one, then doze to the directory bucket.
                    let scan = (r - q) as f64 * bs;
                    let doze = ((self.roots + j) as f64 - (r + 1) as f64) * bs;
                    (t0 + scan + doze + bs, t0 + scan + bs)
                } else {
                    (t0 + resync(q), t0 + (r + 1) as f64 * bs + bs)
                }
            } else if q - self.roots == j {
                // Landed directly on the covering directory bucket.
                (t0, t0)
            } else {
                (t0 + resync(q), t0 + (r + 1) as f64 * bs + bs)
            };
            time += t;
            listen += l;
        }
        (time / total as f64, listen / total as f64)
    }

    /// `(expected wait to the data occurrence, conflict fraction)` for
    /// record `p` placed at `(channel, slot)`, with `lane_len` data
    /// buckets on that channel — the residue-class closed form from the
    /// module docs.
    fn data_wait(&self, p: usize, slot: u32, lane_len: usize) -> (f64, f64) {
        let j = p / self.fanout;
        let cap = lane_len as u64 * self.bs;
        let g = gcd(self.cycle0, cap);
        let base = ((self.roots + j + 1) as u64 * self.bs + self.switch_cost) % cap;
        let o = u64::from(slot) * self.bs;
        let r0 = (o + cap - base % cap) % cap % g;
        let wait = r0 as f64 + (cap - g) as f64 / 2.0;
        let conflict = if g > self.bs && r0 > g - self.bs {
            g as f64 / cap as f64
        } else if g <= self.bs && r0 > 0 {
            // Residues step by ≤ one bucket: every alignment lands the
            // arrival inside some occurrence's airing window.
            g as f64 / cap as f64
        } else {
            0.0
        };
        (wait, conflict)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Predicted weighted metrics and conflict rate of a placement.
fn indexed_predict(
    geo: &Geometry,
    weights: &[f64],
    placement: &[(u32, u32)],
    lane_len: &[usize],
) -> (Model, f64) {
    let bs = geo.bs as f64;
    let mut access = 0.0;
    let mut tuning = 0.0;
    let mut conflict = 0.0;
    for (p, (&w, &(ch, slot))) in weights.iter().zip(placement).enumerate() {
        let (pre_t, pre_l) = geo.pre_switch(p);
        let (wait, cf) = geo.data_wait(p, slot, lane_len[ch as usize - 1]);
        access += w * (pre_t + geo.switch_cost as f64 + wait + bs);
        tuning += w * (pre_l + bs);
        conflict += w * cf;
    }
    (Model { access, tuning }, conflict)
}

fn even_placement(n: usize, data_channels: usize) -> (Vec<(u32, u32)>, Vec<usize>) {
    let sizes = bda_core::even_partition(n, data_channels.min(n));
    let mut placement = Vec::with_capacity(n);
    for (d, &len) in sizes.iter().enumerate() {
        for slot in 0..len {
            placement.push((d as u32 + 1, slot as u32));
        }
    }
    (placement, sizes)
}

/// The naive indexed baseline: even contiguous data striping over the
/// `channels - 1` data channels.
pub fn indexed_even(
    params: &Params,
    weights: &[f64],
    channels: u32,
    switch_cost: u64,
) -> IndexedAllocation {
    assert!(channels >= 2, "an indexed group needs >= 2 channels");
    let n = weights.len();
    let geo = Geometry::new(params, n, channels, switch_cost);
    let (placement, lanes) = even_placement(n, channels as usize - 1);
    let (predicted, conflict_rate) = indexed_predict(&geo, weights, &placement, &lanes);
    IndexedAllocation {
        channels,
        placement,
        predicted,
        conflict_rate,
    }
}

/// How many of the hottest records the local search may move.
const SEARCH_HEAD: usize = 48;
/// Improvement passes before the search settles.
const SEARCH_PASSES: usize = 6;

/// Greedy KSY-style local search over `(channel, slot)` assignments:
/// start from [`indexed_even`] and repeatedly accept pairwise swaps among
/// the hottest [`SEARCH_HEAD`] records (same-channel slot rotations and
/// cross-channel moves alike) while the predicted weighted access time
/// strictly drops. Deterministic, and never worse than the even baseline
/// by construction.
pub fn indexed_search(
    params: &Params,
    weights: &[f64],
    channels: u32,
    switch_cost: u64,
) -> IndexedAllocation {
    assert!(channels >= 2, "an indexed group needs >= 2 channels");
    let n = weights.len();
    let geo = Geometry::new(params, n, channels, switch_cost);
    let (mut placement, lanes) = even_placement(n, channels as usize - 1);

    // Hottest records first; ties broken by index so the scan order is
    // stable.
    let mut hot: Vec<usize> = (0..n).collect();
    hot.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    hot.truncate(SEARCH_HEAD.min(n));

    let key_cost = |p: usize, place: (u32, u32)| -> f64 {
        let (wait, _) = geo.data_wait(p, place.1, lanes[place.0 as usize - 1]);
        weights[p] * wait
    };
    for _ in 0..SEARCH_PASSES {
        let mut improved = false;
        for (ai, &a) in hot.iter().enumerate() {
            for &b in &hot[ai + 1..] {
                let (pa, pb) = (placement[a], placement[b]);
                if pa == pb {
                    continue;
                }
                let before = key_cost(a, pa) + key_cost(b, pb);
                let after = key_cost(a, pb) + key_cost(b, pa);
                if after + 1e-9 < before {
                    placement.swap(a, b);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let (predicted, conflict_rate) = indexed_predict(&geo, weights, &placement, &lanes);
    IndexedAllocation {
        channels,
        placement,
        predicted,
        conflict_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_datagen::zipf_weights;

    fn flat_model(p: &Params, m: usize) -> Model {
        crate::flat(p, m)
    }

    #[test]
    fn k1_striping_reduces_to_the_single_channel_model() {
        let p = Params::paper();
        let w = zipf_weights(100, 0.9);
        let a = best_striped(&p, &w, 1, 10_000, flat_model);
        assert_eq!(a.sizes, vec![100]);
        let base = crate::flat(&p, 100);
        assert!((a.predicted.access - base.access).abs() < 1e-9);
    }

    #[test]
    fn dp_never_beats_are_beaten_by_even_striping() {
        let p = Params::paper();
        for theta in [0.0, 0.5, 1.2] {
            let w = zipf_weights(120, theta);
            for k in [2u32, 4, 8] {
                let even = even_striped(&p, &w, k, 5_000, flat_model);
                let best = best_striped(&p, &w, k, 5_000, flat_model);
                assert!(
                    best.predicted.access <= even.predicted.access + 1e-9,
                    "theta={theta} k={k}: best {} > even {}",
                    best.predicted.access,
                    even.predicted.access
                );
                assert_eq!(best.sizes.iter().sum::<usize>(), 120);
                assert!(best.sizes.iter().all(|&s| s > 0));
            }
        }
    }

    #[test]
    fn skew_shrinks_the_home_slice() {
        let p = Params::paper();
        let w = zipf_weights(128, 1.2);
        let a = best_striped(&p, &w, 4, 2_000, flat_model);
        // The hot head must get a short (fast) slice on the switch-free
        // home channel.
        assert!(a.sizes[0] < 32, "hot slice not shrunk: {:?}", a.sizes);
        // And the skewed optimum must beat the uniform one's even split.
        let even = even_striped(&p, &w, 4, 2_000, flat_model);
        assert!(a.predicted.access < even.predicted.access);
    }

    #[test]
    fn pick_channels_prefers_one_channel_for_uniform_demand() {
        let p = Params::paper();
        let w = zipf_weights(96, 0.0);
        // Uniform demand: splitting only dilates the cycle and adds
        // switches, so K=1 must win.
        let a = pick_channels(&p, &w, &[1, 2, 4, 8], 1_000, flat_model);
        assert_eq!(a.channels, 1);
        // Heavy skew: some K > 1 must win.
        let hot = zipf_weights(96, 1.2);
        let b = pick_channels(&p, &hot, &[1, 2, 4, 8], 1_000, flat_model);
        assert!(b.channels > 1, "skewed demand stayed single-channel");
        assert!(
            b.predicted.access
                < pick_channels(&p, &hot, &[1], 0, flat_model)
                    .predicted
                    .access
        );
    }

    #[test]
    fn indexed_search_never_worse_and_placement_stays_valid() {
        let p = Params::paper();
        for theta in [0.0, 0.9, 1.2] {
            let w = zipf_weights(64, theta);
            let even = indexed_even(&p, &w, 4, 512);
            let best = indexed_search(&p, &w, 4, 512);
            assert!(best.predicted.access <= even.predicted.access + 1e-9);
            assert!((0.0..=1.0).contains(&best.conflict_rate));
            // Placement is a per-channel permutation.
            let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); 3];
            for &(ch, slot) in &best.placement {
                lanes[ch as usize - 1].push(slot);
            }
            for lane in &mut lanes {
                lane.sort_unstable();
                assert_eq!(*lane, (0..lane.len() as u32).collect::<Vec<_>>());
            }
        }
    }
}
