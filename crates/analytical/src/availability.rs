//! Availability-aware models (extension).
//!
//! The paper derives closed forms only for the 100 %-availability setting
//! of Fig. 4; Fig. 5's availability sweep is presented purely empirically.
//! These models extend §2 with the *data availability* parameter
//! `a ∈ \[0, 1\]`: each scheme's expected metric is the mixture of its
//! success cost (weight `a`) and its failure-detection cost (weight
//! `1 − a`):
//!
//! * **flat** — a failed search scans the whole cycle instead of half;
//! * **signature** — a failed search examines all `Nr` signatures instead
//!   of half, and every spurious match is a false drop;
//! * **B+-tree schemes** — failure is detected inside the index segment,
//!   so the broadcast wait disappears entirely;
//! * **hashing** — failure costs the same locate path, minus the download,
//!   plus reading the full (rather than half) collision chain.

use bda_core::Params;
use bda_signature::SigParams;

use crate::btree::tree_shape;
use crate::Model;

fn mix(success: Model, failure: Model, availability: f64) -> Model {
    let a = availability.clamp(0.0, 1.0);
    Model {
        access: a * success.access + (1.0 - a) * failure.access,
        tuning: a * success.tuning + (1.0 - a) * failure.tuning,
    }
}

/// Flat broadcast at availability `a`.
pub fn flat(params: &Params, nr: usize, availability: f64) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let n = nr as f64;
    let success = crate::flat::flat(params, nr);
    // Failure: scan one complete cycle after the initial wait.
    let fail_at = (0.5 + n) * dt;
    mix(
        success,
        Model {
            access: fail_at,
            tuning: fail_at,
        },
        availability,
    )
}

/// Simple signature indexing at availability `a` (`distinct_strings` as in
/// [`crate::signature()`]).
pub fn signature(
    params: &Params,
    sig: &SigParams,
    distinct_strings: usize,
    nr: usize,
    availability: f64,
) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let it = f64::from(params.header_size + sig.sig_bytes);
    let n = nr as f64;
    let p_fd = crate::signature::false_drop_probability(sig, distinct_strings);
    let success = crate::signature::signature(params, sig, distinct_strings, nr);
    // Failure: every signature examined, every spurious match downloaded.
    let failure = Model {
        access: 0.5 * (it + dt) + n * (it + dt),
        tuning: 0.5 * (it + dt) + n * it + p_fd * n * dt,
    };
    mix(success, failure, availability)
}

/// Distributed indexing at availability `a`.
pub fn distributed(params: &Params, nr: usize, r: Option<usize>, availability: f64) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let fanout = params.index_entries_per_bucket();
    let (k, _) = tree_shape(fanout, nr);
    let success = crate::btree::distributed(params, nr, r);
    // Failure: absence is only confirmed at the leaf index bucket of the
    // key's range, and the non-replicated part of the tree is broadcast
    // once per cycle — so the expected wait matches the success path's
    // broadcast wait, minus the final download. Tuning drops by exactly
    // that download. (This is why Fig. 5(a)'s distributed curve is flat in
    // availability while its *tuning* stays index-only.)
    let failure = Model {
        access: (success.access - dt).max(0.0),
        tuning: (k as f64 + 2.5) * dt,
    };
    mix(success, failure, availability)
}

/// `(1,m)` indexing at availability `a`.
pub fn one_m(params: &Params, nr: usize, m: Option<usize>, availability: f64) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let fanout = params.index_entries_per_bucket();
    let (k, _) = tree_shape(fanout, nr);
    let success = crate::btree::one_m(params, nr, m);
    // Failure: every index segment holds the whole tree, so absence is
    // confirmed within the first segment reached — the broadcast wait
    // (½·cycle) disappears entirely. Success access is
    // 1.5·Dt + C/(2m) + C/2; strip the ½·C term.
    let m_val = {
        let (_, index_buckets) = tree_shape(fanout, nr);
        m.unwrap_or_else(|| bda_btree::optimal::optimal_m(nr, index_buckets))
            .clamp(1, nr) as f64
    };
    let cycle = (success.access - 1.5 * dt) / (0.5 + 0.5 / m_val);
    let failure = Model {
        access: success.access - 0.5 * cycle,
        tuning: (k as f64 + 1.5) * dt,
    };
    mix(success, failure, availability)
}

/// Simple hashing at availability `a` (layout statistics as in
/// [`crate::hash()`]).
pub fn hash(params: &Params, nr: usize, na: u64, nc: usize, availability: f64) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let success = crate::hash::hash(params, nr, na, nc);
    // Failure: identical locate + shift path. A *present* key's chain scan
    // reads Ct = Nc/Nr colliding buckets plus the download; an *absent*
    // key's slot has a size-unbiased chain of expected length Nr/Na, read
    // in full plus the terminating mismatch bucket. Net difference:
    // (Nr/Na + 1) − (Ct + 1).
    let ct = nc as f64 / nr as f64;
    let chain_e = nr as f64 / na as f64;
    let delta = (chain_e - ct) * dt;
    let failure = Model {
        access: success.access + delta,
        tuning: success.tuning + delta,
    };
    mix(success, failure, availability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{DynSystem, Scheme};
    use bda_datagen::{DatasetBuilder, Popularity, QueryWorkload};
    use bda_sim::{SimConfig, Simulator};

    const NR: usize = 1_500;

    fn simulate(sys: &dyn DynSystem, a: f64) -> (f64, f64) {
        let (ds, pool) = DatasetBuilder::new(NR, 77)
            .build_with_absent_pool(NR)
            .unwrap();
        let _ = &ds;
        let workload = QueryWorkload::new(&ds, pool, a, Popularity::Uniform, 5);
        let mut cfg = SimConfig::quick();
        cfg.accuracy = 0.03;
        cfg.event_driven = false;
        cfg.max_rounds = 400;
        let r = Simulator::new(sys, workload, cfg).run();
        assert_eq!(r.aborted, 0);
        (r.mean_access(), r.mean_tuning())
    }

    fn dataset() -> bda_core::Dataset {
        DatasetBuilder::new(NR, 77).build().unwrap()
    }

    fn check(label: &str, measured: (f64, f64), model: Model, tol_at: f64, tol_tt: f64) {
        let (at, tt) = measured;
        assert!(
            (at - model.access).abs() / model.access < tol_at,
            "{label} access: measured {at:.0} model {:.0}",
            model.access
        );
        assert!(
            (tt - model.tuning).abs() / model.tuning < tol_tt,
            "{label} tuning: measured {tt:.0} model {:.0}",
            model.tuning
        );
    }

    #[test]
    fn flat_tracks_availability() {
        let p = Params::paper();
        let sys = bda_core::FlatScheme.build(&dataset(), &p).unwrap();
        for a in [0.0, 0.5, 1.0] {
            check(
                &format!("flat a={a}"),
                simulate(&sys, a),
                flat(&p, NR, a),
                0.06,
                0.06,
            );
        }
    }

    #[test]
    fn signature_tracks_availability() {
        let p = Params::paper();
        let sigp = SigParams::default();
        let sys = bda_signature::SimpleSignatureScheme::with_params(sigp)
            .build(&dataset(), &p)
            .unwrap();
        for a in [0.0, 0.5, 1.0] {
            check(
                &format!("signature a={a}"),
                simulate(&sys, a),
                signature(&p, &sigp, 4, NR, a),
                0.06,
                0.15,
            );
        }
    }

    #[test]
    fn distributed_tracks_availability() {
        let p = Params::paper();
        let sys = bda_btree::DistributedScheme::new()
            .build(&dataset(), &p)
            .unwrap();
        for a in [0.0, 0.5, 1.0] {
            check(
                &format!("distributed a={a}"),
                simulate(&sys, a),
                distributed(&p, NR, None, a),
                0.20,
                0.25,
            );
        }
    }

    #[test]
    fn hashing_tracks_availability() {
        let p = Params::paper();
        let sys = bda_hash::HashScheme::new().build(&dataset(), &p).unwrap();
        let model = |a| hash(&p, NR, sys.na(), sys.num_collisions(), a);
        for a in [0.0, 0.5, 1.0] {
            check(
                &format!("hashing a={a}"),
                simulate(&sys, a),
                model(a),
                0.10,
                0.15,
            );
        }
    }

    #[test]
    fn qualitative_shapes_match_fig5() {
        let p = Params::paper();
        // Flat and signature access fall with availability; tree access
        // failure path is far below its success path.
        assert!(flat(&p, NR, 0.0).access > flat(&p, NR, 1.0).access);
        let s0 = signature(&p, &SigParams::default(), 4, NR, 0.0);
        let s1 = signature(&p, &SigParams::default(), 4, NR, 1.0);
        assert!(s0.access > s1.access);
        assert!(s0.tuning > s1.tuning);
        // Distributed access is flat in availability (absence is only
        // confirmed at the once-per-cycle leaf bucket); its tuning drops
        // by the skipped download. (1,m) access *does* collapse at low
        // availability — the whole tree precedes every segment.
        let d0 = distributed(&p, NR, None, 0.0);
        let d1 = distributed(&p, NR, None, 1.0);
        assert!((d0.access - d1.access).abs() / d1.access < 0.01);
        assert!(d0.tuning < d1.tuning);
        let m0 = one_m(&p, NR, None, 0.0);
        let m1 = one_m(&p, NR, None, 1.0);
        assert!(m0.access < m1.access / 2.0);
        // Hashing barely moves.
        let h0 = hash(&p, NR, NR as u64, NR / 3, 0.0);
        let h1 = hash(&p, NR, NR as u64, NR / 3, 1.0);
        assert!((h0.access - h1.access).abs() / h1.access < 0.01);
    }
}
