//! `(1,m)` and distributed-indexing models (paper §2.1).

use bda_btree::optimal::{
    distributed_access_buckets, distributed_access_buckets_ragged, optimal_m, optimal_r,
    optimal_r_ragged,
};
use bda_core::Params;

use crate::Model;

/// Shape of the B+-tree the schemes would build: `(k, index_buckets)` —
/// number of index levels and total index nodes — for `nr` records at
/// fanout `n`. Computed by the same chunked-grouping rule as
/// [`bda_btree::IndexTree::build`], without materializing the tree.
pub fn tree_shape(fanout: usize, nr: usize) -> (usize, usize) {
    assert!(fanout >= 2 && nr >= 1);
    let mut level = nr.div_ceil(fanout);
    let mut k = 1;
    let mut total = level;
    while level > 1 {
        level = level.div_ceil(fanout);
        total += level;
        k += 1;
    }
    (k, total)
}

/// Expected metrics for `(1,m)` indexing over `nr` records.
///
/// With `I` index buckets per tree copy, the cycle is `C = (m·I + Nr)·Dt`.
/// The protocol costs, in buckets:
///
/// ```text
/// At/Dt = ½            (initial wait)
///       + 1            (first complete bucket → next-segment offset)
///       + C/(2m·Dt)    (reach the next index segment)
///       + C/(2·Dt)     (broadcast wait: index descent happens while
///                       dozing toward the data bucket)
/// Tt/Dt = ½ + 1 + k + 1   (initial read, k index probes, download)
/// ```
///
/// `m = None` uses the optimal `m* = √(Nr/I)` (what the paper simulates).
pub fn one_m(params: &Params, nr: usize, m: Option<usize>) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let fanout = params.index_entries_per_bucket();
    let (k, index_buckets) = tree_shape(fanout, nr);
    let m = m
        .unwrap_or_else(|| optimal_m(nr, index_buckets))
        .clamp(1, nr) as f64;
    let cycle_buckets = m * index_buckets as f64 + nr as f64;
    let access = (0.5 + 1.0 + cycle_buckets / (2.0 * m) + cycle_buckets / 2.0) * dt;
    let tuning = (k as f64 + 2.5) * dt;
    Model { access, tuning }
}

/// Expected metrics for distributed indexing over `nr` records, modelled
/// on the actual (possibly ragged) tree shape — see
/// [`bda_btree::optimal::distributed_access_buckets_ragged`]. This is what
/// matches the implemented scheme; the paper's full-tree formula is kept in
/// [`distributed_paper`] for reference.
///
/// Tuning time follows the paper's cost enumeration (initial wait, first
/// bucket, control-index probe, `k` tree levels, download):
///
/// ```text
/// Tt/Dt = ½ + 1 + 1 + k + 1 = k + 7/2
/// ```
///
/// `r = None` uses the access-optimal replication depth, as the paper does.
pub fn distributed(params: &Params, nr: usize, r: Option<usize>) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let fanout = params.index_entries_per_bucket();
    let (k, _) = tree_shape(fanout, nr);
    let r = r.unwrap_or_else(|| optimal_r_ragged(fanout, nr)).min(k - 1);
    let access = distributed_access_buckets_ragged(fanout, r, nr) * dt;
    let tuning = (k as f64 + 3.5) * dt;
    Model { access, tuning }
}

/// The paper's §2.1 access-time formula verbatim (full-tree idealization,
/// `n^k = Nr`), plus the initial first-bucket read:
///
/// ```text
/// At/Dt = ½·( (n^(k−r) − 1)/(n−1) + (n^(r+1) − n)/(n^(r+1) − n^r)
///           + Nr/n^r + N + 1 ) + 1
/// ```
///
/// Close to [`distributed`] when the tree is near-full; off when the top
/// levels are ragged (DESIGN.md documents the deviation).
pub fn distributed_paper(params: &Params, nr: usize, r: Option<usize>) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let fanout = params.index_entries_per_bucket();
    let (k, _) = tree_shape(fanout, nr);
    let r = r.unwrap_or_else(|| optimal_r(fanout, k, nr)).min(k - 1);
    let access = (distributed_access_buckets(fanout, k, r, nr) + 1.0) * dt;
    let tuning = (k as f64 + 3.5) * dt;
    Model { access, tuning }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_btree::{DistributedScheme, IndexTree, OneMScheme};
    use bda_core::DynSystem;
    use bda_core::{Dataset, Key, Record, Scheme};

    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    #[test]
    fn tree_shape_matches_real_trees() {
        for nr in [1usize, 5, 17, 18, 100, 289, 5000] {
            for fanout in [2usize, 3, 17] {
                let d = ds(nr as u64);
                let tree = IndexTree::build(&d, fanout).unwrap();
                let (k, total) = tree_shape(fanout, nr);
                assert_eq!(k, tree.num_levels(), "nr={nr} fanout={fanout}");
                assert_eq!(total, tree.total_nodes(), "nr={nr} fanout={fanout}");
            }
        }
    }

    /// Measure a scheme's average metrics over a key × tune-in grid.
    fn measure(sys: &dyn DynSystem, keys: &[Key]) -> (f64, f64) {
        let cycle = sys.cycle_len();
        let mut access = 0f64;
        let mut tuning = 0f64;
        let mut n = 0f64;
        for &k in keys {
            for s in 0..24u64 {
                let out = sys.probe(k, s * cycle / 24 + 71);
                assert!(out.found && !out.aborted);
                access += out.access as f64;
                tuning += out.tuning as f64;
                n += 1.0;
            }
        }
        (access / n, tuning / n)
    }

    #[test]
    fn one_m_model_matches_simulation() {
        let n = 2000u64;
        let params = Params::paper();
        let d = ds(n);
        let sys = OneMScheme::new().build(&d, &params).unwrap();
        let keys: Vec<Key> = (0..n).step_by(23).map(|i| Key(i * 3)).collect();
        let (acc, tun) = measure(&sys, &keys);
        let m = one_m(&params, n as usize, None);
        assert!(
            (acc - m.access).abs() / m.access < 0.10,
            "access: measured {acc} model {}",
            m.access
        );
        assert!(
            (tun - m.tuning).abs() / m.tuning < 0.15,
            "tuning: measured {tun} model {}",
            m.tuning
        );
    }

    #[test]
    fn distributed_model_matches_simulation() {
        let n = 2000u64;
        let params = Params::paper();
        let d = ds(n);
        let sys = DistributedScheme::new().build(&d, &params).unwrap();
        let keys: Vec<Key> = (0..n).step_by(23).map(|i| Key(i * 3)).collect();
        let (acc, tun) = measure(&sys, &keys);
        let m = distributed(&params, n as usize, None);
        assert!(
            (acc - m.access).abs() / m.access < 0.15,
            "access: measured {acc} model {}",
            m.access
        );
        assert!(
            (tun - m.tuning).abs() / m.tuning < 0.20,
            "tuning: measured {tun} model {}",
            m.tuning
        );
    }

    #[test]
    fn distributed_beats_one_m_equal_tuning_class() {
        // Both schemes share the (k + const)·Dt tuning shape; distributed
        // should win on access time (that is its whole point).
        let p = Params::paper();
        for nr in [5_000usize, 20_000] {
            let d = distributed(&p, nr, None);
            let o = one_m(&p, nr, None);
            assert!(d.access < o.access, "nr={nr}");
            assert!((d.tuning - o.tuning).abs() <= 2.0 * f64::from(p.data_bucket_size()));
        }
    }

    #[test]
    fn models_scale_linearly_in_records() {
        let p = Params::paper();
        let a = distributed(&p, 10_000, None);
        let b = distributed(&p, 20_000, None);
        let ratio = b.access / a.access;
        assert!((1.7..=2.3).contains(&ratio), "ratio={ratio}");
    }
}
