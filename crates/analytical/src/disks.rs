//! Closed-form expected access time for broadcast-disk repetition
//! schedules (see `bda_core::disks`).
//!
//! For a scan layout the retrieval moment is exact: a client downloads
//! record `r` at the end of `r`'s next complete occurrence. If `r`'s
//! occurrences start at cycle positions `x_0 < x_1 < … < x_{k-1}` within a
//! major cycle of length `L`, a client tuning in uniformly at random waits
//!
//! ```text
//! E[wait-to-start] = Σ_i g_i² / (2L),   g_i = wrapping gaps between the x_i
//! ```
//!
//! (integrate the sawtooth "distance to next occurrence" over one cycle),
//! and then listens through the occurrence itself. The scheme's expected
//! access time is the **popularity-weighted mean of per-record
//! inter-arrival gap costs**:
//!
//! ```text
//! At = Σ_r w_r · (Dt + Σ_i g_{r,i}² / (2L))
//! ```
//!
//! With `k` evenly spaced occurrences the gap term collapses to `L/(2k)` —
//! repetition divides a record's expected wait by its occurrence count,
//! which is exactly what spinning its disk faster buys. At `D = 1` every
//! record occurs once, every gap is `L`, and the formula reduces to the
//! flat-cycle model `At = Dt + L/2` (the paper's "half the broadcast
//! cycle").

use bda_core::{Params, RepetitionSchedule};

use crate::Model;

/// Popularity-weighted expected wait (in slots) until the *start* of the
/// next occurrence, for a schedule whose occurrences occupy uniform
/// consecutive slots. Returns the weighted mean of `Σ g_i²/(2T)` per
/// record, in slot units. `weights` is indexed by record and must sum
/// to 1 (see `bda_datagen::zipf_weights`).
fn weighted_wait_slots(schedule: &RepetitionSchedule, weights: &[f64]) -> f64 {
    let total_slots = schedule.num_occurrences() as f64;
    // Slot positions per record, in broadcast order.
    let mut slots: Vec<Vec<f64>> = vec![Vec::new(); weights.len()];
    for (p, r) in schedule.sequence().enumerate() {
        slots[r as usize].push(p as f64);
    }
    let mut at = 0.0;
    for (r, pos) in slots.iter().enumerate() {
        assert!(!pos.is_empty(), "record {r} never scheduled");
        let k = pos.len();
        let mut sum_sq = 0.0;
        for i in 0..k {
            let gap = if i + 1 < k {
                pos[i + 1] - pos[i]
            } else {
                total_slots - pos[k - 1] + pos[0]
            };
            sum_sq += gap * gap;
        }
        at += weights[r] * sum_sq / (2.0 * total_slots);
    }
    at
}

/// Expected metrics for **flat broadcast disks** (`FlatDisksScheme`): one
/// data bucket per occurrence. Exact for found queries under uniform
/// tune-in; the client never dozes, so `Tt = At`.
pub fn flat_disks(params: &Params, schedule: &RepetitionSchedule, weights: &[f64]) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let at = dt + dt * weighted_wait_slots(schedule, weights);
    Model {
        access: at,
        tuning: at,
    }
}

/// Expected metrics for **signature broadcast disks**
/// (`SimpleSignatureDisksScheme`): one `(signature, data)` pair per
/// occurrence. The access time is exact — the wait to the next pair is
/// shift-invariant in the data bucket's offset within the pair — while the
/// tuning time is the usual sifting approximation (one signature read per
/// pair passed over, plus the final download), ignoring false drops.
pub fn signature_disks(
    params: &Params,
    sig_bytes: u32,
    schedule: &RepetitionSchedule,
    weights: &[f64],
) -> Model {
    let it = f64::from(params.header_size + sig_bytes);
    let dt = f64::from(params.data_bucket_size());
    let pair = it + dt;
    let wait_pairs = weighted_wait_slots(schedule, weights);
    Model {
        access: dt + pair * wait_pairs,
        tuning: dt + it * (wait_pairs + 0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{
        Dataset, DiskConfig, DiskLayout, DynSystem, FlatDisksScheme, Key, Params, Record, Scheme,
    };

    fn uniform_weights(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn d1_reduces_to_the_flat_cycle_model() {
        let n = 100;
        let p = Params::paper();
        let layout = DiskLayout::new(n, &DiskConfig::new(1));
        let m = flat_disks(&p, layout.schedule(), &uniform_weights(n));
        let baseline = crate::flat(&p, n);
        assert!(
            (m.access - baseline.access).abs() < 1e-9 + f64::from(p.data_bucket_size()) / 2.0,
            "disks D=1 {} vs flat model {}",
            m.access,
            baseline.access
        );
        // Exact correspondence: Dt + L/2 = Dt·(1 + N/2); the classic model
        // adds the half-bucket initial alignment inside its (N+1)/2 term.
        let dt = f64::from(p.data_bucket_size());
        assert!((m.access - dt * (1.0 + n as f64 / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn model_matches_exhaustive_flat_disks_average() {
        let n = 70usize;
        let p = Params::paper();
        let ds = Dataset::new((0..n as u64).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatDisksScheme::new(DiskConfig::new(3))
            .build(&ds, &p)
            .unwrap();
        let layout = DiskLayout::new(n, &DiskConfig::new(3));
        let cycle = sys.cycle_len();

        // Uniform weights, exhaustive tune-in grid per key.
        let mut total = 0f64;
        let mut count = 0f64;
        for k in 0..n as u64 {
            for t in (0..cycle).step_by(101) {
                total += sys.probe(Key(k * 2), t).access as f64;
                count += 1.0;
            }
        }
        let measured = total / count;
        let model = flat_disks(&p, layout.schedule(), &uniform_weights(n)).access;
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.01,
            "measured {measured:.1} vs model {model:.1} ({:.2}% off)",
            err * 100.0
        );
    }

    #[test]
    fn skewed_weights_reward_repetition() {
        // Under hot-head weights the stratified schedule must beat the
        // flat cycle; under uniform weights it must lose (repetition
        // lengthens the cycle without favoring anyone).
        let n = 70;
        let p = Params::paper();
        let d1 = DiskLayout::new(n, &DiskConfig::new(1));
        let d3 = DiskLayout::new(n, &DiskConfig::new(3));
        let mut hot = vec![0.002; n];
        let head_mass = 1.0 - 0.002 * (n as f64 - 10.0);
        for w in hot.iter_mut().take(10) {
            *w = head_mass / 10.0;
        }
        let uniform = uniform_weights(n);
        let flat1_hot = flat_disks(&p, d1.schedule(), &hot).access;
        let flat3_hot = flat_disks(&p, d3.schedule(), &hot).access;
        assert!(
            flat3_hot < flat1_hot,
            "hot: D3 {flat3_hot} vs D1 {flat1_hot}"
        );
        let flat1_uni = flat_disks(&p, d1.schedule(), &uniform).access;
        let flat3_uni = flat_disks(&p, d3.schedule(), &uniform).access;
        assert!(
            flat3_uni > flat1_uni,
            "uniform: D3 {flat3_uni} vs D1 {flat1_uni}"
        );
    }
}
