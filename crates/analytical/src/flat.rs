//! Flat-broadcast model.

use bda_core::Params;

use crate::Model;

/// Expected metrics for flat broadcast over `nr` records.
///
/// Derivation: tune-in is uniform within the cycle, so the client listens
/// through half a bucket on average before the first complete bucket
/// (`Ft = Dt/2`), then scans `j` buckets where `j` is uniform on
/// `{1, …, N}` (the target is equally likely to be at any distance),
/// giving `E[j] = (N+1)/2`. The client never dozes, so `Tt = At`:
///
/// ```text
/// At = Tt = (½ + (N+1)/2) · Dt
/// ```
///
/// matching the paper's "approximately half of the broadcast cycle".
pub fn flat(params: &Params, nr: usize) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let n = nr as f64;
    let at = (0.5 + (n + 1.0) / 2.0) * dt;
    Model {
        access: at,
        tuning: at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::{Dataset, FlatScheme, Key, Record, Scheme, System};

    #[test]
    fn model_matches_exhaustive_average() {
        // Average the protocol over every key and a dense grid of tune-in
        // times; the model must match within a fraction of a bucket.
        let n = 40u64;
        let params = Params::paper();
        let ds = Dataset::new((0..n).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &params).unwrap();
        let cycle = sys.channel().cycle_len();
        let mut total_access = 0f64;
        let mut total_tuning = 0f64;
        let mut count = 0f64;
        for k in 0..n {
            for t in (0..cycle).step_by(97) {
                let out = sys.probe(Key(k * 2), t);
                total_access += out.access as f64;
                total_tuning += out.tuning as f64;
                count += 1.0;
            }
        }
        let m = flat(&params, n as usize);
        let dt = f64::from(params.data_bucket_size());
        assert!(
            (total_access / count - m.access).abs() < dt,
            "measured {} vs model {}",
            total_access / count,
            m.access
        );
        assert!((total_tuning / count - m.tuning).abs() < dt);
    }

    #[test]
    fn scales_linearly_with_records() {
        let p = Params::paper();
        let m1 = flat(&p, 1000);
        let m2 = flat(&p, 2000);
        assert!((m2.access / m1.access - 2.0).abs() < 0.01);
    }
}
