//! Simple-hashing model (paper §2.2).

use bda_core::Params;

use crate::Model;

/// Expected metrics for simple hashing, given the realized layout: `na`
/// initially allocated buckets, `nc` colliding buckets, `n_total` buckets
/// per cycle (`N = Na + Nc`).
///
/// Components, following the paper's decomposition (`Ft + Ht + St + Ct +
/// Dt`), with `Ht` (time to reach the hashing position) computed exactly
/// for our protocol by averaging over the uniform tune-in position `p` and
/// the uniform slot `h`:
///
/// * `p ≤ h` — doze `(h − p)` buckets to the hashing position;
/// * `p > h` (position passed, or tuned into the overflow region) — doze to
///   the next cycle start `(N − p)` buckets away, read one extra bucket
///   there, then doze `h` further buckets.
///
/// `St` (shift to the chain start) averages `Nc/2` buckets and `Ct` (the
/// collision-chain scan) `Nc/Nr` extra reads, exactly as in the paper.
pub fn hash(params: &Params, nr: usize, na: u64, nc: usize) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let n = (na as usize + nc) as f64;
    let na_f = na as f64;

    // E[Ht] in buckets: average over h uniform in [0, na) of the expected
    // doze/read cost from a uniform position p in [0, n).
    let mut ht = 0.0;
    for h in 0..na {
        let h = h as f64;
        // p ≤ h (probability (h+1)/n): mean gap h/2, no extra read.
        let reach_direct = ((h + 1.0) / n) * (h / 2.0);
        // p > h (probability (n−h−1)/n): mean wait to cycle start
        // (n−h−1)/2, one extra bucket read, then h buckets to the slot.
        let miss_p = (n - h - 1.0) / n;
        let reach_wrapped = miss_p * ((n - h - 1.0) / 2.0 + 1.0 + h);
        ht += reach_direct + reach_wrapped;
    }
    ht /= na_f;

    let nc_f = nc as f64;
    let st = nc_f / 2.0; // average shift to the chain start
    let ct = nc_f / nr as f64; // average chain overflow scanned

    // ½ initial wait + 1 first bucket + Ht + St + Ct + 1 download.
    let access = (0.5 + 1.0 + ht + st + ct + 1.0) * dt;

    // Tuning: the dozes inside Ht/St cost nothing; what remains is the
    // initial read, the extra read after a wrapped locate (probability of
    // the p > h branch, ≈ (Nc + ½Na)/N), the slot bucket, the chain scan
    // and the download.
    let p_wrap: f64 = (0..na).map(|h| (n - h as f64 - 1.0) / n).sum::<f64>() / na_f;
    let tuning = (0.5 + 1.0 + p_wrap + 1.0 + ct + 1.0) * dt;

    Model { access, tuning }
}

/// Convenience wrapper estimating the layout statistics under an ideal
/// (uniform) hash at load factor `Nr/Na = load`: slot occupancies are
/// `Poisson(load)`, so the expected fraction of empty slots is `e^(−load)`
/// and `Nc = Nr − Na·(1 − e^(−load))`.
pub fn hash_poisson(params: &Params, nr: usize, load: f64) -> Model {
    let na = ((nr as f64 / load).ceil()).max(1.0);
    let occupied = na * (1.0 - (-load).exp());
    let nc = (nr as f64 - occupied).max(0.0);
    hash(params, nr, na as u64, nc.round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::{Dataset, Record, Scheme, System};
    use bda_hash::HashScheme;

    fn ds(n: u64) -> Dataset {
        Dataset::from_unsorted(
            (0..n)
                .map(|i| Record::keyed(i.wrapping_mul(0x9E3779B97F4A7C15) >> 2))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn model_matches_simulation_on_realized_layout() {
        let n = 2000u64;
        let params = Params::paper();
        let d = ds(n);
        let sys = HashScheme::new().build(&d, &params).unwrap();
        let model = hash(&params, n as usize, sys.na(), sys.num_collisions());

        let cycle = sys.channel().cycle_len();
        let mut access = 0f64;
        let mut tuning = 0f64;
        let mut cnt = 0f64;
        for r in d.records().iter().step_by(23) {
            for s in 0..24u64 {
                let out = sys.probe(r.key, s * cycle / 24 + 71);
                assert!(out.found && !out.aborted);
                access += out.access as f64;
                tuning += out.tuning as f64;
                cnt += 1.0;
            }
        }
        access /= cnt;
        tuning /= cnt;
        assert!(
            (access - model.access).abs() / model.access < 0.10,
            "access: measured {access} model {}",
            model.access
        );
        assert!(
            (tuning - model.tuning).abs() / model.tuning < 0.15,
            "tuning: measured {tuning} model {}",
            model.tuning
        );
    }

    #[test]
    fn poisson_estimate_close_to_realized() {
        let n = 5000u64;
        let params = Params::paper();
        let d = ds(n);
        let sys = HashScheme::new().build(&d, &params).unwrap();
        let realized = hash(&params, n as usize, sys.na(), sys.num_collisions());
        let estimated = hash_poisson(&params, n as usize, 1.0);
        assert!(
            (realized.access - estimated.access).abs() / realized.access < 0.05,
            "realized {} vs poisson {}",
            realized.access,
            estimated.access
        );
    }

    #[test]
    fn access_exceeds_flat_tuning_stays_flat() {
        let p = Params::paper();
        let h1 = hash_poisson(&p, 10_000, 1.0);
        let h2 = hash_poisson(&p, 20_000, 1.0);
        let f = crate::flat::flat(&p, 10_000);
        // Hashing pays cycle inflation + locate round trips: worst access.
        assert!(h1.access > f.access);
        // Tuning is independent of the number of records (the paper's
        // horizontal line in Fig. 4(b)).
        let dt = f64::from(p.data_bucket_size());
        assert!((h1.tuning - h2.tuning).abs() < 0.2 * dt);
        assert!(h1.tuning < 6.0 * dt);
    }
}
