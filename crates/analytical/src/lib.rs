//! # bda-analytical — closed-form access/tuning-time models (paper §2)
//!
//! For each access method the paper derives expected access time `At` and
//! tuning time `Tt` as functions of the broadcast parameters; Fig. 4 then
//! overlays those analytical curves ("(A)") on the simulation results
//! ("(S)") and shows they coincide. This crate provides the same models,
//! in **bytes**, for the protocols implemented in this workspace.
//!
//! Two housekeeping notes, recorded in DESIGN.md:
//!
//! * Where the paper's printed arithmetic is internally inconsistent (its
//!   §2.1 tuning-time enumeration sums to `(k + 7/2)·Dt` but is stated as
//!   `(k + 3/2)·Dt`), we model the enumeration, i.e. what a faithful
//!   protocol actually costs — the simulated and analytical curves then
//!   agree, which is the property the paper demonstrates.
//! * The distributed-indexing access-time formula assumes a *full* tree;
//!   for ragged trees it is an approximation (a few percent at paper
//!   scale), exactly as in the original.
//!
//! All models return a [`Model`] (`access`, `tuning`, both in bytes).
//!
//! ```
//! use bda_analytical as model;
//! use bda_core::Params;
//!
//! let p = Params::paper();
//! let flat = model::flat(&p, 10_000);
//! let dist = model::distributed(&p, 10_000, None);
//! let hash = model::hash_poisson(&p, 10_000, 1.0);
//! // The Fig. 4 orderings fall straight out of the closed forms:
//! assert!(flat.access < dist.access && dist.access < hash.access);
//! assert!(hash.tuning < dist.tuning && dist.tuning < flat.tuning);
//! ```

pub mod allocation;
pub mod availability;
pub mod btree;
pub mod disks;
pub mod flat;
pub mod hash;
pub mod signature;

pub use allocation::{
    best_striped, even_striped, indexed_even, indexed_search, pick_channels, striped_predict,
    IndexedAllocation, StripedAllocation,
};
pub use btree::{distributed, distributed_paper, one_m, tree_shape};
pub use disks::{flat_disks, signature_disks};
pub use flat::flat;
pub use hash::{hash, hash_poisson};
pub use signature::{false_drop_probability, signature};

/// Expected metrics for one scheme, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Model {
    /// Expected access time `At` (bytes).
    pub access: f64,
    /// Expected tuning time `Tt` (bytes).
    pub tuning: f64,
}
