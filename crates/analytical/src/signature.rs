//! Simple-signature model (paper §2.3).

use bda_core::Params;
use bda_signature::SigParams;

use crate::Model;

/// Probability that an unrelated record's signature matches a query
/// signature — the per-record *false drop* probability.
///
/// `distinct_strings` is the number of **distinct attribute values** whose
/// bit strings the record superimposes, counting the key once (datagen
/// records carry the key as attribute 0, so this equals `attrs.len()`).
/// Each string sets `w = bits_per_attr` *distinct* bits out of `b`, so the
/// expected fraction of set bits is `ρ = 1 − (1 − w/b)^s`, and a query of
/// `w` distinct bits matches hypergeometrically:
///
/// ```text
/// p_fd ≈ Π_{i=0}^{w−1} (ρ·b − i) / (b − i)
/// ```
pub fn false_drop_probability(sig: &SigParams, distinct_strings: usize) -> f64 {
    let b = f64::from(sig.bits().max(1));
    let w = f64::from(sig.bits_per_attr.min(sig.bits()));
    let rho = 1.0 - (1.0 - w / b).powf(distinct_strings as f64);
    let set = rho * b;
    let mut p = 1.0;
    let mut i = 0.0;
    while i < w {
        p *= ((set - i).max(0.0)) / (b - i);
        i += 1.0;
    }
    p
}

/// Expected metrics for simple signature indexing over `nr` records whose
/// signatures superimpose `distinct_strings` distinct attribute values
/// (see [`false_drop_probability`]).
///
/// With signature buckets of `It = header + sig_bytes` bytes, the cycle is
/// `Nr·(It + Dt)`. The client examines `j` signatures, `j` uniform on
/// `{1, …, Nr}`; elapsed time per examined record is `It + Dt` whether the
/// data bucket is read or dozed over, so
///
/// ```text
/// At = ½·(It + Dt) + (Nr+1)/2 · (It + Dt)
/// ```
///
/// (the paper's `½(Dt + It)(Nr + 1)`). Tuning pays each examined
/// signature, each false drop, and the final download:
///
/// ```text
/// Tt = ½·(It + Dt) + (Nr+1)/2 · It + (Fd + 1) · Dt,
/// Fd = p_fd · (Nr − 1)/2
/// ```
pub fn signature(params: &Params, sig: &SigParams, distinct_strings: usize, nr: usize) -> Model {
    let dt = f64::from(params.data_bucket_size());
    let it = f64::from(params.header_size + sig.sig_bytes);
    let n = nr as f64;
    let examined = (n + 1.0) / 2.0;
    let p_fd = false_drop_probability(sig, distinct_strings);
    let fd = p_fd * (n - 1.0) / 2.0;

    let access = 0.5 * (it + dt) + examined * (it + dt);
    let tuning = 0.5 * (it + dt) + examined * it + (fd + 1.0) * dt;
    Model { access, tuning }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::{Dataset, Key, Record, Scheme, System};
    use bda_signature::SimpleSignatureScheme;

    fn ds(n: u64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| Record::new(Key(i * 7), vec![i * 7, i + 13, i % 29, i % 3]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn false_drop_probability_tracks_measurement() {
        let sig = SigParams {
            sig_bytes: 4,
            bits_per_attr: 4,
        };
        // Records superimpose {i, i+1, i+2} plus the key i — 3 distinct
        // values.
        let p_model = false_drop_probability(&sig, 3);
        // Measure directly over random record/query pairs.
        let mut hits = 0u64;
        let total = 40_000u64;
        for i in 0..total {
            let rec = sig.record_signature(Key(i), &[i, i + 1, i + 2]);
            let q = sig.query_signature(Key(1_000_000 + i));
            hits += u64::from(rec.matches(&q));
        }
        let p_meas = hits as f64 / total as f64;
        assert!(
            (p_meas - p_model).abs() < 0.5 * p_model + 0.002,
            "measured {p_meas} vs model {p_model}"
        );
    }

    #[test]
    fn model_matches_simulation() {
        let n = 1500u64;
        let params = Params::paper();
        let sigp = SigParams::default();
        let d = ds(n);
        let sys = SimpleSignatureScheme::with_params(sigp)
            .build(&d, &params)
            .unwrap();
        let model = signature(&params, &sigp, 4, n as usize);

        let cycle = sys.channel().cycle_len();
        let mut access = 0f64;
        let mut tuning = 0f64;
        let mut cnt = 0f64;
        for i in (0..n).step_by(19) {
            for s in 0..16u64 {
                let out = sys.probe(Key(i * 7), s * cycle / 16 + 31);
                assert!(out.found && !out.aborted);
                access += out.access as f64;
                tuning += out.tuning as f64;
                cnt += 1.0;
            }
        }
        access /= cnt;
        tuning /= cnt;
        assert!(
            (access - model.access).abs() / model.access < 0.05,
            "access: measured {access} model {}",
            model.access
        );
        assert!(
            (tuning - model.tuning).abs() / model.tuning < 0.15,
            "tuning: measured {tuning} model {}",
            model.tuning
        );
    }

    #[test]
    fn shorter_signatures_trade_access_for_tuning() {
        // The §2.3 tradeoff: shrinking the signature shortens the cycle
        // (better access) but false drops explode (worse tuning).
        let p = Params::paper();
        let long = SigParams {
            sig_bytes: 32,
            bits_per_attr: 4,
        };
        let short = SigParams {
            sig_bytes: 1,
            bits_per_attr: 4,
        };
        let nr = 20_000;
        let ml = signature(&p, &long, 4, nr);
        let ms = signature(&p, &short, 4, nr);
        assert!(ms.access < ml.access, "shorter sig → shorter cycle");
        assert!(ms.tuning > ml.tuning, "shorter sig → more false drops");
    }

    #[test]
    fn access_is_near_flat_broadcast() {
        let p = Params::paper();
        let nr = 10_000;
        let m = signature(&p, &SigParams::default(), 4, nr);
        let f = crate::flat::flat(&p, nr);
        let overhead = m.access / f.access;
        // It/Dt ≈ 24/533 ≈ 4.5 % overhead.
        assert!((1.0..1.1).contains(&overhead), "overhead={overhead}");
    }
}
