//! # bda — Broadcast-Based Data Access in Wireless Environments
//!
//! A from-scratch Rust reproduction of Yang & Bouguettaya, *Broadcast-Based
//! Data Access in Wireless Environments* (EDBT 2002): the broadcast-channel
//! substrate, the five air-indexing access methods the paper compares, the
//! adaptive discrete-event testbed, the closed-form analytical models, and
//! the experiment harness that regenerates every table and figure of the
//! evaluation.
//!
//! This crate is the public facade: it re-exports the workspace so an
//! application needs a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use bda::prelude::*;
//!
//! // 1. A dataset (the paper broadcasts a ~35k-record dictionary; any
//! //    key-sorted records work).
//! let dataset = DatasetBuilder::new(1_000, 42).build().unwrap();
//!
//! // 2. Pick an access method and lay out the broadcast cycle.
//! let params = Params::paper();
//! let system = DistributedScheme::new().build(&dataset, &params).unwrap();
//!
//! // 3. A client tunes in at any instant and runs the access protocol.
//! let key = dataset.record(123).key;
//! let outcome = system.probe(key, 777_777);
//! assert!(outcome.found);
//! // Access time = client waiting time; tuning time = energy spent
//! // listening. Both in bytes, as in the paper.
//! assert!(outcome.tuning <= outcome.access);
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |-----------|-------|----------|
//! | [`core`] | `bda-core` | buckets, channels, protocol machines, flat broadcast |
//! | [`btree`] | `bda-btree` | `(1,m)` and distributed indexing |
//! | [`hash`] | `bda-hash` | simple hashing |
//! | [`signature`] | `bda-signature` | simple / integrated / multi-level signatures |
//! | [`datagen`] | `bda-datagen` | synthetic dictionary, workloads, deterministic RNG |
//! | [`sim`] | `bda-sim` | discrete-event testbed with confidence-controlled termination |
//! | [`analytical`] | `bda-analytical` | closed-form At/Tt models (paper §2) |

pub use bda_analytical as analytical;
pub use bda_btree as btree;
pub use bda_core as core;
pub use bda_datagen as datagen;
pub use bda_hash as hash;
pub use bda_hybrid as hybrid;
pub use bda_signature as signature;
pub use bda_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use bda_btree::{DistributedScheme, OneMScheme};
    pub use bda_core::{
        AccessOutcome, BucketRef, Channel, Dataset, DiskConfig, DiskLayout, DiskScheme, DynSystem,
        FlatDisksScheme, FlatScheme, GroupConfig, IndexedGroupScheme, Key, Params, Record, Scheme,
        StripedScheme, System, Ticks,
    };
    pub use bda_datagen::{
        zipf_ranking, zipf_weights, Arrivals, DatasetBuilder, Popularity, Prng, QueryWorkload,
    };
    pub use bda_hash::{HashFn, HashScheme};
    pub use bda_hybrid::HybridScheme;
    pub use bda_signature::{
        IntegratedSignatureScheme, MultiLevelSignatureScheme, SigParams,
        SimpleSignatureDisksScheme, SimpleSignatureScheme,
    };
    pub use bda_sim::{SimConfig, SimReport, Simulator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_builds_every_scheme() {
        let ds = DatasetBuilder::new(64, 1).build().unwrap();
        let p = Params::paper();
        let key = ds.record(10).key;
        assert!(FlatScheme.build(&ds, &p).unwrap().probe(key, 0).found);
        assert!(
            OneMScheme::new()
                .build(&ds, &p)
                .unwrap()
                .probe(key, 0)
                .found
        );
        assert!(
            DistributedScheme::new()
                .build(&ds, &p)
                .unwrap()
                .probe(key, 0)
                .found
        );
        assert!(
            HashScheme::new()
                .build(&ds, &p)
                .unwrap()
                .probe(key, 0)
                .found
        );
        assert!(
            SimpleSignatureScheme::new()
                .build(&ds, &p)
                .unwrap()
                .probe(key, 0)
                .found
        );
    }
}
