//! Criterion micro-benchmarks: broadcast-channel construction cost per
//! scheme. Construction happens once per broadcast program change on the
//! server, so these bound how quickly a server can re-cut its cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bda_bench::SchemeKind;
use bda_core::Params;
use bda_datagen::DatasetBuilder;

fn construction(c: &mut Criterion) {
    let params = Params::paper();
    let mut group = c.benchmark_group("build_channel");
    for nr in [1_000usize, 10_000] {
        let dataset = DatasetBuilder::new(nr, 7).build().unwrap();
        for kind in SchemeKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.name(), nr), &dataset, |b, ds| {
                b.iter(|| {
                    let sys = kind.build(black_box(ds), &params).unwrap();
                    black_box(sys.cycle_len())
                })
            });
        }
    }
    group.finish();
}

fn dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    for nr in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("dictionary", nr), &nr, |b, &nr| {
            b.iter(|| black_box(DatasetBuilder::new(nr, 3).build().unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, construction, dataset_generation);
criterion_main!(benches);
