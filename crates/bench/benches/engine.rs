//! Criterion benchmarks for the discrete-event engine at scale: ≥100k
//! concurrent clients per scheme through the slab + bucket-aligned-wakeup
//! engine, plus a slab-vs-reference comparison at a size the naive engine
//! can still stomach. `engine_bench` (the binary) emits the same scenario
//! as machine-readable `BENCH_engine.json` for trend tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bda_bench::SchemeKind;
use bda_core::{Key, Params, Ticks};
use bda_datagen::{DatasetBuilder, Prng};
use bda_sim::{engine::reference::run_requests_reference, Engine};

const RECORDS: usize = 1_000;
const CLIENTS: usize = 100_000;

/// A burst of `n` requests for present keys, all tuning in within a
/// 16-tick window — narrower than any bucket, so the whole population is
/// concurrently in flight.
fn burst(ds: &bda_core::Dataset, n: usize, seed: u64) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    let mut rng = Prng::new(seed);
    (0..n)
        .map(|i| {
            let key = keys[rng.below(keys.len() as u64) as usize];
            ((i % 16) as Ticks, key)
        })
        .collect()
}

fn engine_100k(c: &mut Criterion) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(RECORDS, 11).build().unwrap();
    let requests = burst(&dataset, CLIENTS, 5);
    let mut group = c.benchmark_group("engine_100k");
    group.sample_size(10);
    for kind in SchemeKind::ALL {
        let system = kind.build(&dataset, &params).unwrap();
        group.bench_function(BenchmarkId::new(kind.name(), CLIENTS), |b| {
            let mut engine = Engine::new(system.as_ref());
            b.iter(|| black_box(engine.run_batch(black_box(&requests)).len()))
        });
    }
    group.finish();
}

fn engine_steady_stream(c: &mut Criterion) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(RECORDS, 11).build().unwrap();
    let requests = burst(&dataset, CLIENTS, 7);
    let mut group = c.benchmark_group("engine_steady_32k");
    group.sample_size(10);
    for kind in [SchemeKind::Hashing, SchemeKind::Distributed] {
        let system = kind.build(&dataset, &params).unwrap();
        group.bench_function(BenchmarkId::new(kind.name(), CLIENTS), |b| {
            let mut engine = Engine::new(system.as_ref());
            b.iter(|| {
                let mut n = 0usize;
                engine.run_stream(requests.iter().copied(), 32_768, |_| n += 1);
                black_box(n)
            })
        });
    }
    group.finish();
}

fn engine_vs_reference(c: &mut Criterion) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(RECORDS, 11).build().unwrap();
    let requests = burst(&dataset, 20_000, 9);
    let system = SchemeKind::Hashing.build(&dataset, &params).unwrap();
    let mut group = c.benchmark_group("engine_vs_reference");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("slab", requests.len()), |b| {
        let mut engine = Engine::new(system.as_ref());
        b.iter(|| black_box(engine.run_batch(black_box(&requests)).len()))
    });
    group.bench_function(BenchmarkId::new("reference", requests.len()), |b| {
        b.iter(|| black_box(run_requests_reference(system.as_ref(), black_box(&requests)).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_100k,
    engine_steady_stream,
    engine_vs_reference
);
criterion_main!(benches);
