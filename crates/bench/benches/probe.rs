//! Criterion micro-benchmarks: one client query per scheme (the inner loop
//! of every simulation), plus the signature-matching and tree-search hot
//! paths in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bda_bench::SchemeKind;
use bda_core::{Key, Params};
use bda_datagen::{DatasetBuilder, Prng};
use bda_signature::SigParams;

fn probe(c: &mut Criterion) {
    let params = Params::paper();
    let nr = 5_000usize;
    let dataset = DatasetBuilder::new(nr, 11).build().unwrap();
    let keys: Vec<Key> = dataset.keys().collect();
    let mut group = c.benchmark_group("probe");
    for kind in SchemeKind::ALL {
        let system = kind.build(&dataset, &params).unwrap();
        let cycle = system.cycle_len();
        group.bench_function(BenchmarkId::new(kind.name(), nr), |b| {
            let mut rng = Prng::new(5);
            b.iter(|| {
                let key = keys[rng.below(keys.len() as u64) as usize];
                let t = rng.below(cycle);
                black_box(system.probe(black_box(key), t))
            })
        });
    }
    group.finish();
}

fn signature_match(c: &mut Criterion) {
    let sig = SigParams::default();
    let rec = sig.record_signature(Key(42), &[42, 43, 44, 45]);
    let q = sig.query_signature(Key(42));
    c.bench_function("signature_match", |b| {
        b.iter(|| black_box(rec.matches(black_box(&q))))
    });
}

fn tree_search(c: &mut Criterion) {
    let dataset = DatasetBuilder::new(50_000, 13).build().unwrap();
    let tree = bda_btree::IndexTree::build(&dataset, 17).unwrap();
    let keys: Vec<Key> = dataset.keys().collect();
    c.bench_function("btree_reference_search", |b| {
        let mut rng = Prng::new(9);
        b.iter(|| {
            let key = keys[rng.below(keys.len() as u64) as usize];
            black_box(tree.search(black_box(key)))
        })
    });
}

criterion_group!(benches, probe, signature_match, tree_search);
criterion_main!(benches);
