//! Ablation: hash-function quality and load factor.
fn main() {
    bda_bench::experiments::ablations::ablation_hash(&bda_bench::Cli::parse());
}
