//! Ablation: (1,m)-indexing segment count m.
fn main() {
    bda_bench::experiments::ablations::ablation_m(&bda_bench::Cli::parse());
}
