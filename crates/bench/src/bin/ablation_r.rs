//! Ablation: distributed-indexing replication depth r.
fn main() {
    bda_bench::experiments::ablations::ablation_r(&bda_bench::Cli::parse());
}
