//! Ablation: signature length (access vs tuning tradeoff).
fn main() {
    bda_bench::experiments::ablations::ablation_siglen(&bda_bench::Cli::parse());
}
