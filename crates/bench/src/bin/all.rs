//! Runs every experiment in sequence: Table 1, Figs. 4-6, all ablations.
fn main() {
    let cli = bda_bench::Cli::parse();
    use bda_bench::experiments::*;
    table1::run(&cli);
    println!();
    fig4::run(&cli);
    println!();
    fig5::run(&cli);
    println!();
    fig6::run(&cli);
    println!();
    ablations::ablation_r(&cli);
    println!();
    ablations::ablation_m(&cli);
    println!();
    ablations::ablation_siglen(&cli);
    println!();
    ablations::ablation_hash(&cli);
    println!();
    ext_errors::run(&cli);
    println!();
    ext_disks::run(&cli);
    println!();
    ext_hybrid::run(&cli);
    println!();
    ext_multichannel::run(&cli);
    println!();
    ext_tails::run(&cli);
    println!();
    ext_phases::run(&cli);
}
