//! Bench regression gate: diff a fresh `engine_bench` run against the
//! committed baseline.
//!
//! `BENCH_engine.json` mixes two kinds of numbers:
//!
//! * **Deterministic counters** — requests, events, wake batches, fault
//!   counters, per-shard splits, busy/idle ticks, mean access times.
//!   These live in the tick domain and must match the baseline *exactly*;
//!   any difference is a behavioural change, not noise.
//! * **Wall-clock throughput** — `*_per_sec`, `*speedup*`,
//!   `*efficiency*`, `*improvement*`. These are machine-dependent, so
//!   they get a relative tolerance band: the gate fails only when the
//!   current value *degrades* by more than `--tolerance` (default 0.5,
//!   i.e. a value may halve before the gate trips; improvements never
//!   fail). Elapsed-time fields (`*_sec`) are skipped outright — they are
//!   the reciprocal of throughput and double-counting them adds noise.
//!
//! A metric present in the baseline but missing from the current run is
//! always an error (a silently dropped measurement is how regressions
//! hide). Metrics new in the current run are ignored, so the gate never
//! blocks adding measurements.
//!
//! ```text
//! bench_check --baseline PATH --current PATH [--tolerance F]
//! ```
//!
//! Exits 0 when every metric is within band, 1 on any regression, 2 on
//! usage or parse errors.

use bda_obs::export::{parse_json, Json};

struct Cli {
    baseline: String,
    current: String,
    tolerance: f64,
}

const DEFAULT_TOLERANCE: f64 = 0.5;

fn parse_cli() -> Cli {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next(),
            "--current" => current = args.next(),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance requires a fraction in [0, 1)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "bench_check --baseline PATH --current PATH [--tolerance F]\n\
                     \n\
                     Diffs a fresh engine_bench JSON against the committed baseline.\n\
                     Deterministic counters (requests, events, wake_batches, fault\n\
                     counters, per-shard splits, busy/idle ticks, mean access times)\n\
                     must match exactly. Wall-clock throughput metrics (*_per_sec,\n\
                     *speedup*, *efficiency*, *improvement*) may degrade by at most\n\
                     F relative to the baseline (default {DEFAULT_TOLERANCE}; 0.5 allows a value to\n\
                     halve) — improvements never fail. Elapsed-time fields (*_sec)\n\
                     are skipped. A baseline metric missing from the current run is\n\
                     always an error. Exits 0 in-band, 1 on regression, 2 on usage."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("bench_check requires --baseline PATH and --current PATH; try --help");
        std::process::exit(2);
    };
    Cli {
        baseline,
        current,
        tolerance,
    }
}

/// How one metric is compared against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Wall-clock elapsed time: machine noise, skipped.
    Skip,
    /// Machine-dependent, higher-is-better: tolerance band on degradation.
    Perf,
    /// Tick-domain deterministic: exact equality.
    Exact,
}

/// Classify a metric by its key name. The bench emits throughput as
/// `*_per_sec` and derived ratios as `*speedup*` / `*efficiency*` /
/// `*improvement*`; everything else numeric is a deterministic counter.
fn classify(key: &str) -> MetricClass {
    if key.ends_with("_sec") && !key.ends_with("_per_sec") {
        MetricClass::Skip
    } else if key.contains("per_sec")
        || key.contains("speedup")
        || key.contains("efficiency")
        || key.contains("improvement")
    {
        MetricClass::Perf
    } else {
        MetricClass::Exact
    }
}

/// One out-of-band metric.
struct Regression {
    path: String,
    baseline: f64,
    current: f64,
    what: &'static str,
}

/// Recursively diff `current` against `baseline`, collecting every
/// out-of-band metric. `key` is the member name that led here (classifies
/// leaf numbers); `path` is the human-readable location.
fn diff(
    baseline: &Json,
    current: Option<&Json>,
    key: &str,
    path: &str,
    tolerance: f64,
    out: &mut Vec<Regression>,
) {
    let Some(current) = current else {
        out.push(Regression {
            path: path.into(),
            baseline: f64::NAN,
            current: f64::NAN,
            what: "missing from current run",
        });
        return;
    };
    match (baseline, current) {
        (Json::Num(b), Json::Num(c)) => match classify(key) {
            MetricClass::Skip => {}
            MetricClass::Exact => {
                if b != c {
                    out.push(Regression {
                        path: path.into(),
                        baseline: *b,
                        current: *c,
                        what: "deterministic counter diverged",
                    });
                }
            }
            MetricClass::Perf => {
                if *c < *b * (1.0 - tolerance) {
                    out.push(Regression {
                        path: path.into(),
                        baseline: *b,
                        current: *c,
                        what: "degraded beyond tolerance",
                    });
                }
            }
        },
        (Json::Obj(members), Json::Obj(_)) => {
            for (k, v) in members {
                diff(v, current.get(k), k, &format!("{path}.{k}"), tolerance, out);
            }
        }
        (Json::Arr(bs), Json::Arr(cs)) => {
            if bs.len() != cs.len() {
                out.push(Regression {
                    path: path.into(),
                    baseline: bs.len() as f64,
                    current: cs.len() as f64,
                    what: "array length changed",
                });
                return;
            }
            for (i, b) in bs.iter().enumerate() {
                // Label scheme rows by their scheme name, not their index.
                let label = b
                    .get("scheme")
                    .and_then(|s| match s {
                        Json::Str(s) => Some(format!("{path}[{s}]")),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("{path}[{i}]"));
                diff(b, cs.get(i), key, &label, tolerance, out);
            }
        }
        (Json::Str(b), Json::Str(c)) => {
            if b != c {
                out.push(Regression {
                    path: path.into(),
                    baseline: f64::NAN,
                    current: f64::NAN,
                    what: "label changed",
                });
            }
        }
        (Json::Null, Json::Null) | (Json::Bool(_), Json::Bool(_)) => {}
        _ => out.push(Regression {
            path: path.into(),
            baseline: f64::NAN,
            current: f64::NAN,
            what: "type changed",
        }),
    }
}

/// Diff two parsed bench documents; returns every out-of-band metric.
fn check(baseline: &Json, current: &Json, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    diff(baseline, Some(current), "", "$", tolerance, &mut out);
    out
}

fn main() {
    let cli = parse_cli();
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&cli.baseline);
    let current = load(&cli.current);
    let regressions = check(&baseline, &current, cli.tolerance);
    if regressions.is_empty() {
        println!(
            "bench_check: {} within tolerance {} of {}",
            cli.current, cli.tolerance, cli.baseline
        );
        return;
    }
    eprintln!(
        "bench_check: {} regression(s) against {} (tolerance {}):",
        regressions.len(),
        cli.baseline,
        cli.tolerance
    );
    for r in &regressions {
        if r.baseline.is_nan() {
            eprintln!("  {}: {}", r.path, r.what);
        } else {
            eprintln!(
                "  {}: {} (baseline {}, current {})",
                r.path, r.what, r.baseline, r.current
            );
        }
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "bench": "engine", "clients": 100, "shards": 1,
        "schemes": [
            {"scheme": "flat", "requests": 100, "elapsed_sec": 0.5,
             "requests_per_sec": 1000.0, "events": 300, "wake_batches": 10,
             "shard_speedup": 1.0, "scatter_merge_sec": 0.001,
             "per_shard": [{"shard": 0, "requests": 100, "busy_ticks": 500}]}
        ]
    }"#;

    fn base() -> Json {
        parse_json(BASELINE).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        assert!(check(&base(), &base(), 0.5).is_empty());
    }

    #[test]
    fn wall_clock_noise_is_tolerated() {
        // Throughput down 30% (inside 0.5 band), elapsed doubled (skipped),
        // speedup up (improvements never fail).
        let cur = BASELINE
            .replace(
                "\"requests_per_sec\": 1000.0",
                "\"requests_per_sec\": 700.0",
            )
            .replace("\"elapsed_sec\": 0.5", "\"elapsed_sec\": 1.0")
            .replace("\"scatter_merge_sec\": 0.001", "\"scatter_merge_sec\": 0.9")
            .replace("\"shard_speedup\": 1.0", "\"shard_speedup\": 2.0");
        assert!(check(&base(), &parse_json(&cur).unwrap(), 0.5).is_empty());
    }

    #[test]
    fn throughput_collapse_fails() {
        let cur = BASELINE.replace(
            "\"requests_per_sec\": 1000.0",
            "\"requests_per_sec\": 400.0",
        );
        let r = check(&base(), &parse_json(&cur).unwrap(), 0.5);
        assert_eq!(r.len(), 1);
        assert!(
            r[0].path.contains("[flat].requests_per_sec"),
            "{}",
            r[0].path
        );
        assert_eq!(r[0].what, "degraded beyond tolerance");
    }

    #[test]
    fn deterministic_counter_drift_fails_exactly() {
        for (field, replacement) in [
            ("\"events\": 300", "\"events\": 301"),
            ("\"busy_ticks\": 500", "\"busy_ticks\": 499"),
        ] {
            let cur = BASELINE.replace(field, replacement);
            let r = check(&base(), &parse_json(&cur).unwrap(), 0.5);
            assert_eq!(r.len(), 1, "{field} must trip the exact gate");
            assert_eq!(r[0].what, "deterministic counter diverged");
        }
    }

    #[test]
    fn missing_baseline_metric_fails() {
        let cur = BASELINE.replace("\"wake_batches\": 10,", "\"wake_batches_renamed\": 10,");
        let r = check(&base(), &parse_json(&cur).unwrap(), 0.5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].what, "missing from current run");
    }

    #[test]
    fn extra_current_metrics_are_ignored() {
        let cur = BASELINE.replace("\"events\": 300", "\"events\": 300, \"new_metric\": 7");
        assert!(check(&base(), &parse_json(&cur).unwrap(), 0.5).is_empty());
    }

    #[test]
    fn scheme_rows_are_labelled_by_name_and_length_checked() {
        let cur = BASELINE.replace("\"schemes\": [", "\"schemes\": [{}, ");
        let r = check(&base(), &parse_json(&cur).unwrap(), 0.5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].what, "array length changed");
    }

    #[test]
    fn classification_matches_the_documented_rules() {
        assert_eq!(classify("elapsed_sec"), MetricClass::Skip);
        assert_eq!(classify("scatter_merge_sec"), MetricClass::Skip);
        assert_eq!(classify("requests_per_sec"), MetricClass::Perf);
        assert_eq!(classify("shard_speedup"), MetricClass::Perf);
        assert_eq!(classify("scaling_efficiency"), MetricClass::Perf);
        assert_eq!(classify("access_improvement"), MetricClass::Perf);
        assert_eq!(classify("events"), MetricClass::Exact);
        assert_eq!(classify("busy_ticks"), MetricClass::Exact);
        assert_eq!(classify("mean_access"), MetricClass::Exact);
    }
}
