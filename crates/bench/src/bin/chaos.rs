//! Chaos soak harness: randomized bursty-channel fault grids against
//! every execution driver, asserting bit-identical agreement per cell.
//!
//! Each cell draws a random scheme, dataset size, channel (i.i.d. or
//! Gilbert–Elliott burst loss, with or without scheduled outage windows),
//! retry policy (bounded/unbounded, exponential back-off, seeded jitter),
//! optional program churn and — on roughly a third of the cells — a
//! multichannel striping group (2–4 channels, randomized tune-switch
//! cost), then runs the same request batch through:
//!
//! * the slab engine with analytical fast-forward **on**,
//! * the slab engine with fast-forward **off** (bucket-by-bucket),
//! * the naive reference heap (the oracle),
//! * the sharded engine at 1 shard and at `#cores` shards,
//! * the isolated direct walker (spot-checked per request).
//!
//! Corruption is a pure function of (bucket instant, seed), so all six
//! executions must agree outcome-for-outcome; any divergence prints a
//! copy-pasteable reproducer (`chaos --cell <seed>` plus the fully
//! decoded channel/outage/policy/churn/group configuration) and
//! per-window context — both drivers' completions folded into windowed
//! time series (one window per broadcast cycle), with the first window
//! whose outcome counters disagree shown side by side — and exits
//! non-zero. `--quick` runs a small grid for CI smoke; the default soak
//! is ~8× larger.
//!
//! Flags: `--quick`, `--seed N`, `--cells N`, `--cell SEED`, `--quiet`.

use bda_bench::SchemeKind;
use bda_core::{
    BurstModel, ChannelModel, DynSystem, ErrorModel, GroupConfig, Key, LossModel, OutageSchedule,
    RetryPolicy, Ticks,
};
use bda_datagen::DatasetBuilder;
use bda_obs::{Completion, MetricsHub, TimeSeries, WindowSpec};
use bda_sim::engine::reference::run_requests_reference_channel;
use bda_sim::{run_requests_sharded_channel, CompletedRequest, Engine, UpdateSpec};

/// SplitMix64 — the harness's own deterministic parameter stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// One randomized grid cell, fully determined by its seed.
#[derive(Debug)]
struct Cell {
    seed: u64,
    kind: SchemeKind,
    records: usize,
    requests: usize,
    channel: ChannelModel,
    policy: RetryPolicy,
    /// Percent of records churned per cycle (0 = frozen program).
    churn_pct: u32,
    /// Multichannel striping (`None` = the classic single channel).
    group: Option<GroupConfig>,
}

impl Cell {
    /// Everything needed to rerun this exact cell by hand: a
    /// copy-pasteable invocation (the cell is a pure function of its
    /// seed) followed by the fully decoded configuration — every channel,
    /// outage, policy, churn and channel-group parameter spelled out, so
    /// nothing (in particular a degenerate burst or an implicit outage
    /// schedule) has to be reverse-engineered from the seed.
    fn reproducer(&self) -> String {
        let loss = match &self.channel.loss {
            LossModel::Iid(m) => {
                format!("loss=iid p={:.6} seed=0x{:X}", m.loss_prob, m.seed)
            }
            LossModel::Burst(b) => format!(
                "loss=burst g2b={:.6} b2g={:.6} loss_good={:.6} loss_bad={:.6} seed=0x{:X}",
                b.p_good_to_bad, b.p_bad_to_good, b.loss_good, b.loss_bad, b.seed
            ),
        };
        let o = &self.channel.outages;
        let outages = if self.channel.has_outages() {
            format!(
                "outages every={} len={} seed=0x{:X}",
                o.every, o.len, o.seed
            )
        } else {
            "outages=none".to_string()
        };
        let p = &self.policy;
        let policy = format!(
            "policy retries={:?} backoff={} cap={} jitter={:?} give_up={:?}",
            p.max_retries, p.backoff_cycles, p.backoff_cap_cycles, p.jitter_seed, p.give_up_after
        );
        let group = match &self.group {
            Some(g) => format!("channels={} switch_cost={}", g.channels, g.switch_cost),
            None => "channels=1".to_string(),
        };
        format!(
            "cargo run -p bda-bench --bin chaos -- --cell 0x{:X}\n  \
             # scheme={} records={} requests={} churn={}%\n  \
             # {loss}\n  # {outages}\n  # {policy}\n  # {group}",
            self.seed,
            self.kind.name(),
            self.records,
            self.requests,
            self.churn_pct,
        )
    }
}

/// Draw one cell from the parameter stream.
fn draw_cell(seed: u64) -> Cell {
    let mut rng = Rng(seed);
    let kind = SchemeKind::ALL[rng.below(SchemeKind::ALL.len() as u64) as usize];
    let records = 32 + rng.below(64) as usize;
    let requests = 32 + rng.below(48) as usize;

    // Loss process: i.i.d. ~25%, burst ~75% (the point of the soak).
    let loss = if rng.chance(0.25) {
        ChannelModel::iid(ErrorModel::new(0.02 + 0.28 * rng.unit(), rng.next()))
    } else {
        ChannelModel::burst(BurstModel::new(
            0.01 + 0.2 * rng.unit(), // good→bad
            0.05 + 0.5 * rng.unit(), // bad→good
            0.05 * rng.unit(),       // loss in good state
            0.5 + 0.5 * rng.unit(),  // loss in bad state
            rng.next(),
        ))
    };
    // Outage windows on roughly half the cells, 2–15% of air time.
    let channel = if rng.chance(0.5) {
        let len = 100 + rng.below(400);
        let rate = 0.02 + 0.13 * rng.unit();
        let every = ((len as f64 / rate) as Ticks).max(len);
        loss.with_outages(OutageSchedule::new(every, len, rng.next()))
    } else {
        loss
    };

    // Retry policy: always bounded enough that dead air cannot spin a
    // cell forever, with the resynchronization knobs mixed in.
    let mut policy = RetryPolicy::bounded(8 + rng.below(40) as u32);
    if rng.chance(0.7) {
        policy = policy.with_backoff_cap(1 << rng.below(5));
    }
    if rng.chance(0.6) {
        policy = policy.with_jitter(rng.next());
    }
    let churn_pct = if rng.chance(0.4) {
        5 + rng.below(21) as u32
    } else {
        0
    };
    // Stripe roughly a third of the cells over a channel group, so the
    // soak also differentiates the cross-channel routing, the per-channel
    // fault-seed remix and the tune-switch accounting.
    let group = if rng.chance(0.35) {
        let channels = 2 + rng.below(3) as u32;
        Some(GroupConfig::new(channels, rng.below(600)).expect("2..=4 channels is valid"))
    } else {
        None
    };
    Cell {
        seed,
        kind,
        records,
        requests,
        channel,
        policy,
        churn_pct,
        group,
    }
}

/// Deterministic request mix for a cell: unsorted arrivals with
/// collisions, present and absent keys interleaved.
fn request_mix(ds: &bda_core::Dataset, pool: &[Key], n: usize, rng: &mut Rng) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = rng.below(12_000);
            let key = if i % 5 == 0 {
                pool[i % pool.len()]
            } else {
                keys[rng.below(keys.len() as u64) as usize]
            };
            (t, key)
        })
        .collect()
}

/// Fold one driver's completion list into a windowed [`TimeSeries`] (one
/// window per broadcast cycle), so a divergence can be located in time.
fn completion_series(completed: &[CompletedRequest], width: Ticks) -> TimeSeries {
    let mut hub = MetricsHub::default();
    hub.enable_windows(WindowSpec::new(width));
    for r in completed {
        hub.complete_at(
            &Completion {
                end_tick: r.arrival + r.outcome.access,
                access: r.outcome.access,
                tuning: r.outcome.tuning,
                retries: r.outcome.retries,
                stale_restarts: r.outcome.stale_restarts,
                version_skews: r.outcome.version_skews,
                found: r.outcome.found,
                abandoned: r.outcome.abandoned,
            },
            None,
        );
    }
    hub.windows.expect("windows were just enabled")
}

/// Attribute a divergence in time: window both drivers' completions and
/// describe the first broadcast cycle whose outcome counters disagree,
/// with both drivers' counters side by side.
fn divergence_context(
    a_label: &str,
    a: &[CompletedRequest],
    b_label: &str,
    b: &[CompletedRequest],
    width: Ticks,
) -> String {
    let (sa, sb) = (completion_series(a, width), completion_series(b, width));
    let ids: std::collections::BTreeSet<u64> = sa
        .windows()
        .map(|(id, _)| id)
        .chain(sb.windows().map(|(id, _)| id))
        .collect();
    let fmt = |label: &str, s: &TimeSeries, id: u64| {
        let [completions, found, abandoned, corrupt_reads, stale_restarts, version_skews, access_ticks, tuning_ticks] =
            s.window(id)
                .map(|w| w.outcome_counters())
                .unwrap_or_default();
        format!(
            "  {label:<22} completions={completions} found={found} abandoned={abandoned} \
             corrupt_reads={corrupt_reads} stale_restarts={stale_restarts} \
             version_skews={version_skews} access={access_ticks} tuning={tuning_ticks}"
        )
    };
    for id in ids {
        let wa = sa
            .window(id)
            .map(|w| w.outcome_counters())
            .unwrap_or_default();
        let wb = sb
            .window(id)
            .map(|w| w.outcome_counters())
            .unwrap_or_default();
        if wa != wb {
            return format!(
                "first divergent window {id} [ticks {}..{}):\n{}\n{}",
                id * width,
                (id + 1) * width,
                fmt(a_label, &sa, id),
                fmt(b_label, &sb, id),
            );
        }
    }
    // Outcomes differed but every windowed counter agrees — the
    // disagreement is in a field the counters do not project (e.g.
    // probes or false drops).
    "no window's outcome counters differ (divergence is outside the counter projection)".into()
}

/// Run one cell through every driver; on divergence, return the failing
/// comparison's label.
fn run_cell(cell: &Cell) -> Result<CellStats, String> {
    let (ds, pool) = DatasetBuilder::new(cell.records, cell.seed ^ 0xD5)
        .build_with_absent_pool(8)
        .map_err(|e| e.to_string())?;
    let params = bda_core::Params::paper();
    let spec = UpdateSpec {
        rate: f64::from(cell.churn_pct) / 100.0,
        seed: cell.seed ^ 0x0DD,
        horizon_cycles: 16,
    };
    let sys: Box<dyn DynSystem> = match (cell.group, cell.churn_pct > 0) {
        (Some(config), true) => cell
            .kind
            .build_multichannel_versioned(&ds, &params, config, spec)
            .map_err(|e| e.to_string())?,
        (Some(config), false) => cell
            .kind
            .build_multichannel(&ds, &params, config, None)
            .map_err(|e| e.to_string())?,
        (None, true) => cell
            .kind
            .build_versioned(&ds, &params, spec)
            .map_err(|e| e.to_string())?,
        (None, false) => cell.kind.build(&ds, &params).map_err(|e| e.to_string())?,
    };
    let requests = request_mix(&ds, &pool, cell.requests, &mut Rng(cell.seed ^ 0x9E9));

    let run_engine = |ff: bool| -> Vec<CompletedRequest> {
        let mut e = Engine::with_channel(sys.as_ref(), cell.channel, cell.policy);
        e.set_fast_forward(ff);
        e.run_batch(&requests)
    };
    let width = sys.cycle_len();
    let fast = run_engine(true);
    let slow = run_engine(false);
    if fast != slow {
        return Err(format!(
            "fast-forward engine ≠ bucket-by-bucket engine\n{}",
            divergence_context("fast-forward", &fast, "bucket-by-bucket", &slow, width)
        ));
    }
    let oracle = run_requests_reference_channel(sys.as_ref(), &requests, cell.channel, cell.policy);
    if fast != oracle {
        return Err(format!(
            "slab engine ≠ reference oracle\n{}",
            divergence_context("slab engine", &fast, "reference oracle", &oracle, width)
        ));
    }
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    for shards in [1, cores] {
        let sharded = run_requests_sharded_channel(
            sys.as_ref(),
            &requests,
            shards,
            cell.channel,
            cell.policy,
        );
        if fast != sharded {
            return Err(format!(
                "slab engine ≠ sharded engine at {shards} shards\n{}",
                divergence_context("slab engine", &fast, "sharded engine", &sharded, width)
            ));
        }
    }
    let mut stats = CellStats::default();
    for (i, r) in fast.iter().enumerate() {
        // Spot-check the isolated walker on a deterministic subsample.
        if i % 7 == 0 {
            let direct = sys.probe_with_channel(r.key, r.arrival, cell.channel, cell.policy);
            if r.outcome != direct {
                return Err(format!("engine ≠ direct walker at request {i}"));
            }
        }
        if r.outcome.aborted {
            return Err(format!(
                "protocol aborted at request {i} — never acceptable"
            ));
        }
        stats.retries += u64::from(r.outcome.retries);
        stats.abandoned += u64::from(r.outcome.abandoned);
        stats.stale_restarts += u64::from(r.outcome.stale_restarts);
    }
    Ok(stats)
}

#[derive(Default)]
struct CellStats {
    retries: u64,
    abandoned: u64,
    stale_restarts: u64,
}

/// Parse an integer that may carry a `0x` prefix (cell seeds are printed
/// in hex by the reproducer).
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut quick = false;
    let mut quiet = false;
    let mut seed = 0xC4A0_5000u64;
    let mut cells: Option<usize> = None;
    let mut one_cell: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--seed" => {
                seed = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    });
            }
            "--cells" => {
                cells = Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--cells requires an integer");
                    std::process::exit(2);
                }));
            }
            "--cell" => {
                one_cell = Some(
                    args.next()
                        .as_deref()
                        .and_then(parse_u64)
                        .unwrap_or_else(|| {
                            eprintln!("--cell requires a cell seed (decimal or 0x-hex)");
                            std::process::exit(2);
                        }),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "chaos — randomized burst/outage/churn differential soak\n\
                     flags: --quick    small CI grid (16 cells)\n       \
                     --cells N  explicit cell count\n       \
                     --seed N   grid seed\n       \
                     --cell S   rerun exactly one cell from its printed seed\n       \
                     --quiet    no per-cell narration"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    // `--cell` replays one cell from a reproducer line, alone: decode it,
    // narrate the full configuration, and exit with the cell's verdict.
    if let Some(cell_seed) = one_cell {
        let cell = draw_cell(cell_seed);
        eprintln!("{}", cell.reproducer());
        match run_cell(&cell) {
            Ok(stats) => {
                println!(
                    "cell 0x{cell_seed:X} ok: all drivers agreed; {} retries, {} abandoned, {} stale restarts",
                    stats.retries, stats.abandoned, stats.stale_restarts
                );
                return;
            }
            Err(why) => {
                eprintln!("DIVERGENCE: {why}");
                std::process::exit(1);
            }
        }
    }
    let n = cells.unwrap_or(if quick { 16 } else { 128 });
    let mut totals = CellStats::default();
    let mut burst_cells = 0usize;
    let mut outage_cells = 0usize;
    let mut churn_cells = 0usize;
    let mut multi_cells = 0usize;
    for i in 0..n {
        let cell = draw_cell(
            seed.wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        if !matches!(cell.channel.loss, bda_core::LossModel::Iid(_)) {
            burst_cells += 1;
        }
        if cell.channel.has_outages() {
            outage_cells += 1;
        }
        if cell.churn_pct > 0 {
            churn_cells += 1;
        }
        if cell.group.is_some() {
            multi_cells += 1;
        }
        match run_cell(&cell) {
            Ok(stats) => {
                if !quiet {
                    eprintln!(
                        "cell {:>3}/{n} ok: {} records={} requests={} retries={} abandoned={} stale={}",
                        i + 1,
                        cell.kind.name(),
                        cell.records,
                        cell.requests,
                        stats.retries,
                        stats.abandoned,
                        stats.stale_restarts,
                    );
                }
                totals.retries += stats.retries;
                totals.abandoned += stats.abandoned;
                totals.stale_restarts += stats.stale_restarts;
            }
            Err(why) => {
                eprintln!("DIVERGENCE: {why}");
                eprintln!("reproduce with:\n{}", cell.reproducer());
                std::process::exit(1);
            }
        }
    }
    // The soak must actually exercise the fault machinery — a grid that
    // never corrupts a read proves nothing.
    if totals.retries == 0 {
        eprintln!("grid produced zero corrupted reads — parameters degenerate");
        std::process::exit(1);
    }
    println!(
        "chaos ok: {n} cells ({burst_cells} burst, {outage_cells} outage, {churn_cells} churn, \
         {multi_cells} multichannel) agreed across all drivers; {} retries, {} abandoned, \
         {} stale restarts",
        totals.retries, totals.abandoned, totals.stale_restarts
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::AccessOutcome;

    fn req(arrival: Ticks, access: Ticks, found: bool) -> CompletedRequest {
        CompletedRequest {
            arrival,
            key: Key(1),
            outcome: AccessOutcome {
                found,
                access,
                tuning: access / 2,
                probes: 1,
                false_drops: 0,
                retries: 0,
                abandoned: !found,
                aborted: false,
                stale_restarts: 0,
                version_skews: 0,
            },
        }
    }

    #[test]
    fn reproducer_decodes_the_full_cell_config() {
        // Scan seeds until the draw covers every decoded section at least
        // once: burst loss, outage schedule, churn and a channel group.
        let mut saw = (false, false, false, false);
        for s in 0..256u64 {
            let cell = draw_cell(s);
            let repro = cell.reproducer();
            assert!(
                repro.starts_with(&format!(
                    "cargo run -p bda-bench --bin chaos -- --cell 0x{s:X}\n"
                )),
                "{repro}"
            );
            assert!(repro.contains("loss="), "{repro}");
            assert!(
                repro.contains("outages every=") || repro.contains("outages=none"),
                "{repro}"
            );
            assert!(repro.contains("policy retries="), "{repro}");
            assert!(repro.contains("channels="), "{repro}");
            match &cell.channel.loss {
                LossModel::Iid(_) => assert!(repro.contains("loss=iid p="), "{repro}"),
                LossModel::Burst(b) => {
                    saw.0 = true;
                    assert!(
                        repro.contains(&format!("loss_bad={:.6}", b.loss_bad)),
                        "{repro}"
                    );
                }
            }
            if cell.channel.has_outages() {
                saw.1 = true;
                assert!(
                    repro.contains(&format!("len={}", cell.channel.outages.len)),
                    "{repro}"
                );
            }
            if cell.churn_pct > 0 {
                saw.2 = true;
                assert!(
                    repro.contains(&format!("churn={}%", cell.churn_pct)),
                    "{repro}"
                );
            }
            if let Some(g) = cell.group {
                saw.3 = true;
                assert!(
                    repro.contains(&format!(
                        "channels={} switch_cost={}",
                        g.channels, g.switch_cost
                    )),
                    "{repro}"
                );
            }
        }
        assert_eq!(
            saw,
            (true, true, true, true),
            "256 seeds must cover burst, outage, churn and multichannel cells"
        );
    }

    #[test]
    fn cell_seed_parses_in_both_radixes() {
        assert_eq!(parse_u64("0x1F"), Some(31));
        assert_eq!(parse_u64("0X1f"), Some(31));
        assert_eq!(parse_u64("31"), Some(31));
        assert_eq!(parse_u64("zzz"), None);
    }

    #[test]
    fn divergence_context_names_the_first_differing_window() {
        // Window width 100. Both drivers agree in window 1; driver B
        // flips a request's outcome in window 3 (end_tick 350).
        let a = vec![req(100, 50, true), req(300, 50, true)];
        let b = vec![req(100, 50, true), req(300, 50, false)];
        let ctx = divergence_context("driver A", &a, "driver B", &b, 100);
        assert!(
            ctx.contains("first divergent window 3 [ticks 300..400)"),
            "{ctx}"
        );
        assert!(ctx.contains("driver A"), "{ctx}");
        assert!(ctx.contains("driver B"), "{ctx}");
        assert!(ctx.contains("found=1"), "{ctx}");
        assert!(ctx.contains("found=0"), "{ctx}");
        // Identical streams produce no locatable window.
        let same = divergence_context("driver A", &a, "driver B", &a.clone(), 100);
        assert!(same.contains("no window"), "{same}");
    }
}
