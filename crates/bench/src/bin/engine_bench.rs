//! Machine-readable engine throughput harness.
//!
//! Drives a burst of concurrent clients (default 100 000, all tuned in
//! within one bucket, so the whole population is simultaneously in
//! flight) through the slab engine for every scheme, and writes
//! `BENCH_engine.json` with requests/sec, peak in-flight clients and
//! events processed — the numbers the perf trajectory is tracked by.
//!
//! With `--metrics-out DIR` every scheme is additionally re-run with the
//! observability layer on; the run's metrics land in `DIR/<scheme>.json`
//! (the `bda-obs/v1` document) plus a combined `DIR/metrics.prom`
//! Prometheus rendering, and the main JSON gains the observed throughput
//! next to the default (no-op recorder) one — the measured cost of
//! turning observation on.
//!
//! With `--shards N` every scheme is additionally run through the
//! sharded engine (`N` per-core slab engines over the shared program,
//! deterministic merge); the harness asserts the merged outcomes are
//! bit-identical to the single-engine batch, and the JSON gains the
//! aggregate sharded throughput, the speedup over one shard, the scaling
//! efficiency (speedup / shards) and a per-shard breakdown.
//!
//! Every run also measures a bursty-channel leg — each scheme's churning
//! program under a Gilbert–Elliott chain with outage windows — and
//! exports it as the JSON's `"burst"` block (req/s plus the corrupt /
//! abandoned / stale-restart counters).
//!
//! With `--shards N` the sharded leg additionally attributes load per
//! shard: a windowed re-run (one window per broadcast cycle) yields each
//! shard's busy/idle ticks, and the JSON gains `busy_ticks`/`idle_ticks`
//! per shard plus scheme-level imbalance figures (`shard_load_ratio` =
//! max/mean busy ticks, `shard_busy_variance`) and the measured
//! scatter-merge wall-clock cost (`scatter_merge_sec`).
//!
//! With `--timeline-out DIR` every scheme is re-run with windowed
//! (time-resolved) metrics, the window sums are asserted equal to the
//! end-of-run aggregates, and a `bda-obs/trace/v1` Perfetto/Chrome trace
//! (per-shard counter lanes + seed-sampled per-request span timelines)
//! lands in `DIR/<scheme>.trace.json`.
//!
//! ```text
//! engine_bench [--clients N] [--records N] [--shards N] [--out PATH]
//!              [--no-reference] [--metrics-out DIR] [--timeline-out DIR]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bda_bench::SchemeKind;
use bda_core::{BurstModel, ChannelModel, Key, OutageSchedule, Params, RetryPolicy, Ticks};
use bda_datagen::{DatasetBuilder, Prng};
use bda_obs::{export, validate_trace, MetricsHub, TimeSeries, WindowSpec};
use bda_sim::{
    engine::reference::run_requests_reference, perfetto_trace, Engine, EngineStats, ShardRun,
    ShardedEngine, UpdateSpec,
};

struct Cli {
    clients: usize,
    records: usize,
    /// `None`: single-engine benchmark only. `Some(n)`: additionally
    /// measure the sharded engine at `n` worker shards.
    shards: Option<usize>,
    out: String,
    reference: bool,
    metrics_out: Option<String>,
    timeline_out: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        clients: 100_000,
        records: 1_000,
        shards: None,
        out: "BENCH_engine.json".into(),
        reference: true,
        metrics_out: None,
        timeline_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} requires an integer");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--clients" => cli.clients = num("--clients"),
            "--records" => cli.records = num("--records"),
            "--shards" => {
                let n = num("--shards");
                if n == 0 {
                    eprintln!("--shards requires at least 1");
                    std::process::exit(2);
                }
                cli.shards = Some(n);
            }
            "--out" => {
                cli.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            "--metrics-out" => {
                cli.metrics_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--timeline-out" => {
                cli.timeline_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--timeline-out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--no-reference" => cli.reference = false,
            "--help" | "-h" => {
                eprintln!(
                    "engine_bench [--clients N] [--records N] [--shards N] [--out PATH] [--no-reference] [--metrics-out DIR] [--timeline-out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    cli
}

/// Scheme name → filesystem-safe stem (`(1,m)` → `_1_m_`).
fn file_stem(scheme: &str) -> String {
    scheme
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// `n` requests for present keys, all arriving within a 16-tick window —
/// narrower than any bucket, so every client is concurrently in flight.
fn burst(ds: &bda_core::Dataset, n: usize, seed: u64) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    let mut rng = Prng::new(seed);
    (0..n)
        .map(|i| {
            let key = keys[rng.below(keys.len() as u64) as usize];
            ((i % 16) as Ticks, key)
        })
        .collect()
}

/// Skew of the broadcast-disk leg's workload.
const SKEW_THETA: f64 = 1.2;
/// Stratification depth of the broadcast-disk leg.
const SKEW_DISKS: usize = 3;

/// Per-cycle churn rate of the bursty-channel leg's programs — enough
/// version drift that stale restarts actually register.
const BURST_CHURN: f64 = 0.10;

/// Seed of the deterministic request-timeline sample under
/// `--timeline-out` — sampling is a pure function of (seed, index).
const TRACE_SAMPLE_SEED: u64 = 0x7ACE;
/// How many requests' span timelines each trace carries.
const TRACE_SAMPLE_K: usize = 8;

/// The bursty-channel leg's fault model: the same Gilbert–Elliott chain
/// (~17 % stationary loss) plus 10 % outage windows the golden corpus
/// pins, driven by the exponential-back-off resynchronization policy.
fn burst_channel() -> (ChannelModel, RetryPolicy) {
    let chain = BurstModel::new(0.04, 0.20, 0.0, 0.9, 0xB57);
    (
        ChannelModel::burst(chain).with_outages(OutageSchedule::new(3_000, 300, 0x0A7)),
        RetryPolicy::bounded(24)
            .with_backoff_cap(8)
            .with_jitter(0x117),
    )
}

/// One bursty-channel row: a churning program under burst loss + outages.
struct BurstRow {
    scheme: &'static str,
    requests_per_sec: f64,
    corrupt_reads: u64,
    abandoned: u64,
    stale_restarts: u64,
}

/// Keys drawn Zipf(θ) — the workload broadcast disks are built for —
/// with tune-ins uniform over `span`, so the mean access time samples
/// every cycle phase instead of the hot head of the identity-ranked
/// cycle. (A 16-tick burst at t = 0 would flatter the flat program: rank
/// 0 airs first.)
fn zipf_burst(ds: &bda_core::Dataset, n: usize, seed: u64, span: Ticks) -> Vec<(Ticks, Key)> {
    let mut w = bda_datagen::QueryWorkload::new(
        ds,
        Vec::new(),
        1.0,
        bda_datagen::Popularity::Zipf(SKEW_THETA),
        seed,
    );
    let mut rng = Prng::new(seed ^ 0x5EED);
    (0..n)
        .map(|_| (rng.below(span.max(1)), w.next_key()))
        .collect()
}

/// One skewed-workload row: the flat (D = 1) program vs the stratified
/// (D = 3) program of the same scheme under a Zipf(1.2) burst.
struct SkewRow {
    scheme: &'static str,
    requests_per_sec: f64,
    mean_access: f64,
    disks_requests_per_sec: f64,
    disks_mean_access: f64,
}

/// Throughput and mean access time of one system under the skewed burst.
fn run_skew_leg(sys: &dyn bda_core::DynSystem, requests: &[(Ticks, Key)]) -> (f64, f64) {
    let mut engine = Engine::new(sys);
    engine.run_batch(requests);
    let start = Instant::now();
    let done = engine.run_batch(requests);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(done.len(), requests.len());
    let at: u128 = done.iter().map(|r| u128::from(r.outcome.access)).sum();
    (
        requests.len() as f64 / elapsed.max(1e-12),
        at as f64 / requests.len() as f64,
    )
}

/// Sharded-engine figures for one scheme (only measured under `--shards`).
struct ShardedFigures {
    requests_per_sec: f64,
    /// Aggregate sharded throughput over the single-engine throughput.
    speedup: f64,
    /// `speedup / shards` — 1.0 is perfect linear scaling.
    efficiency: f64,
    per_shard: Vec<ShardRun>,
    /// Per-shard busy ticks (≥ 1 client in flight) from the windowed
    /// attribution re-run, in shard order.
    busy_ticks: Vec<u64>,
    /// Per-shard idle ticks: the batch horizon minus busy ticks.
    idle_ticks: Vec<u64>,
    /// Max over mean of per-shard busy ticks — 1.0 is a perfectly even
    /// split of simulated work.
    load_ratio: f64,
    /// Population variance of per-shard busy ticks.
    busy_variance: f64,
    /// Wall-clock spent scatter-merging completions back into arrival
    /// order (the sequential tail of the sharded run).
    merge_sec: f64,
    /// Per-shard windowed time series, kept for `--timeline-out` lanes.
    series: Vec<TimeSeries>,
}

/// Windowed attribution re-run: per-shard busy/idle ticks and imbalance
/// over the same batch. The tick domain is deterministic, so this re-run
/// sees exactly the load the timed run did.
fn attribute_shards(
    system: &dyn bda_core::DynSystem,
    shards: usize,
    requests: &[(Ticks, Key)],
) -> (Vec<TimeSeries>, Vec<u64>, Vec<u64>, f64, f64, f64) {
    let mut engine = ShardedEngine::new(system, shards);
    engine.enable_metrics_windowed(WindowSpec::new(system.cycle_len()));
    let done = engine.run_batch(requests);
    let merge_sec = engine.last_merge_sec();
    let horizon = done
        .iter()
        .map(|r| r.arrival + r.outcome.access)
        .max()
        .unwrap_or(0);
    let series: Vec<TimeSeries> = engine
        .take_shard_metrics()
        .into_iter()
        .map(|h| h.windows.expect("windowed metrics were enabled"))
        .collect();
    assert_eq!(series.len(), shards, "every shard must report a series");
    let busy: Vec<u64> = series.iter().map(|s| s.totals().busy_ticks).collect();
    let idle: Vec<u64> = busy.iter().map(|&b| horizon.saturating_sub(b)).collect();
    let mean = busy.iter().sum::<u64>() as f64 / shards.max(1) as f64;
    let load_ratio = if mean > 0.0 {
        busy.iter().copied().max().unwrap_or(0) as f64 / mean
    } else {
        1.0
    };
    let variance =
        busy.iter().map(|&b| (b as f64 - mean).powi(2)).sum::<f64>() / shards.max(1) as f64;
    (series, busy, idle, load_ratio, variance, merge_sec)
}

struct Row {
    scheme: &'static str,
    elapsed_sec: f64,
    requests_per_sec: f64,
    stats: EngineStats,
    reference_speedup: Option<f64>,
    /// Fast-forward before/after on the reduced batch: throughput of the
    /// bucket-by-bucket engine, and the fast engine's speedup over it
    /// (only measured with the reference comparison enabled).
    slow_path_requests_per_sec: Option<f64>,
    fast_forward_speedup: Option<f64>,
    /// Throughput of the same batch with the observability layer on
    /// (only measured under `--metrics-out`).
    observed_requests_per_sec: Option<f64>,
    sharded: Option<ShardedFigures>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let cli = parse_cli();
    let params = Params::paper();
    let dataset = DatasetBuilder::new(cli.records, 11).build().unwrap();
    let requests = burst(&dataset, cli.clients, 5);
    // Reference comparison at a size the naive engine handles quickly.
    let ref_requests = burst(&dataset, (cli.clients / 5).max(1), 9);

    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12} {:>10} {:>10} {:>12}",
        "scheme",
        "req/s",
        "peak in-flight",
        "events",
        "batches",
        "vs naive",
        "vs slow",
        "observed r/s"
    );
    let mut rows = Vec::new();
    let mut hubs: Vec<(&'static str, MetricsHub)> = Vec::new();
    for kind in SchemeKind::ALL {
        let system = kind.build(&dataset, &params).unwrap();
        let mut engine = Engine::new(system.as_ref());
        // Warm the arena so steady-state (allocation-free) throughput is
        // what gets measured.
        engine.run_batch(&requests);
        let before = engine.stats();
        let start = Instant::now();
        let completed = engine.run_batch(&requests);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(completed.len(), requests.len());
        assert!(
            completed.iter().all(|r| !r.outcome.aborted),
            "protocol bug in {}",
            kind.name()
        );
        let after = engine.stats();
        let stats = EngineStats {
            events: after.events - before.events,
            wake_batches: after.wake_batches - before.wake_batches,
            peak_in_flight: after.peak_in_flight,
            completed: after.completed - before.completed,
            corrupt_reads: after.corrupt_reads - before.corrupt_reads,
            abandoned: after.abandoned - before.abandoned,
            stale_restarts: after.stale_restarts - before.stale_restarts,
            version_skews: after.version_skews - before.version_skews,
        };

        // Reduced-batch comparisons: the naive reference oracle and the
        // bucket-by-bucket (fast-forward off) slab engine, both against
        // the fast slab engine on the same batch. The slow runs are the
        // "before" column of the fast-forward repair; outcomes must stay
        // bit-identical across all three.
        let mut reference_speedup = None;
        let mut slow_path_requests_per_sec = None;
        let mut fast_forward_speedup = None;
        if cli.reference {
            let mut slab = Engine::new(system.as_ref());
            slab.run_batch(&ref_requests);
            let start = Instant::now();
            let fast_done = slab.run_batch(&ref_requests);
            let slab_t = start.elapsed().as_secs_f64();

            let mut slow = Engine::new(system.as_ref());
            slow.set_fast_forward(false);
            slow.run_batch(&ref_requests);
            let start = Instant::now();
            let slow_done = slow.run_batch(&ref_requests);
            let slow_t = start.elapsed().as_secs_f64();
            assert_eq!(
                fast_done,
                slow_done,
                "fast-forward must be outcome-invisible ({})",
                kind.name()
            );

            let start = Instant::now();
            run_requests_reference(system.as_ref(), &ref_requests);
            let ref_t = start.elapsed().as_secs_f64();

            reference_speedup = Some(ref_t / slab_t.max(1e-12));
            slow_path_requests_per_sec = Some(ref_requests.len() as f64 / slow_t.max(1e-12));
            fast_forward_speedup = Some(slow_t / slab_t.max(1e-12));
        }

        let observed_requests_per_sec = cli.metrics_out.is_some().then(|| {
            let mut observed = Engine::new(system.as_ref());
            observed.enable_metrics();
            // Same warm-up discipline as the no-op run.
            observed.run_batch(&requests);
            let _ = observed.take_metrics();
            observed.enable_metrics();
            let start = Instant::now();
            let done = observed.run_batch(&requests);
            let obs_elapsed = start.elapsed().as_secs_f64();
            assert_eq!(done.len(), requests.len());
            let hub = observed.take_metrics().expect("metrics were enabled");
            assert_eq!(hub.completed, requests.len() as u64);
            hubs.push((kind.name(), hub));
            requests.len() as f64 / obs_elapsed.max(1e-12)
        });

        let single_rps = requests.len() as f64 / elapsed.max(1e-12);
        let sharded = cli.shards.map(|n| {
            let mut engine = ShardedEngine::new(system.as_ref(), n);
            // Same warm-up discipline as the single-engine run.
            engine.run_batch(&requests);
            let start = Instant::now();
            let done = engine.run_batch(&requests);
            let sharded_elapsed = start.elapsed().as_secs_f64();
            assert_eq!(
                done,
                completed,
                "sharded merge must be bit-identical to the single engine ({})",
                kind.name()
            );
            let rps = requests.len() as f64 / sharded_elapsed.max(1e-12);
            // At one shard there is no split to measure: the sharded
            // engine *is* the single engine plus a trivial merge, so the
            // speedup is 1.0 by construction — reporting the timing ratio
            // would let run-to-run noise masquerade as a regression.
            let speedup = if n == 1 {
                1.0
            } else {
                rps / single_rps.max(1e-12)
            };
            // Regression gate: sharding a scheme must never cost
            // throughput. This is the guard that catches the multilevel
            // 0.965x class of regression — fail the whole bench run.
            if speedup < 1.0 {
                eprintln!(
                    "FAIL: {} shard_speedup {speedup:.3} < 1.0 at {n} shards \
                     ({rps:.0} req/s sharded vs {single_rps:.0} single)",
                    kind.name()
                );
                std::process::exit(1);
            }
            let per_shard = engine.last_runs().to_vec();
            let (series, busy_ticks, idle_ticks, load_ratio, busy_variance, merge_sec) =
                attribute_shards(system.as_ref(), n, &requests);
            ShardedFigures {
                requests_per_sec: rps,
                speedup,
                efficiency: speedup / n as f64,
                per_shard,
                busy_ticks,
                idle_ticks,
                load_ratio,
                busy_variance,
                merge_sec,
                series,
            }
        });

        if let Some(dir) = &cli.timeline_out {
            // Windowed (time-resolved) re-run: outcomes must stay
            // bit-identical and the window sums must equal the aggregate
            // hub exactly — the tentpole invariant of the timeline layer.
            let mut windowed = Engine::new(system.as_ref());
            windowed.enable_metrics_windowed(WindowSpec::new(system.cycle_len()));
            let done = windowed.run_batch(&requests);
            assert_eq!(
                done,
                completed,
                "windowed observation must not perturb outcomes ({})",
                kind.name()
            );
            let hub = windowed.take_metrics().expect("metrics were enabled");
            let series = hub.windows.as_ref().expect("windowed run carries a series");
            let totals = series.totals();
            assert_eq!(totals.completions, hub.completed, "{}", kind.name());
            assert_eq!(totals.found, hub.found, "{}", kind.name());
            assert_eq!(
                u128::from(totals.access_ticks),
                hub.access.sum(),
                "{}: window access sums must be exact",
                kind.name()
            );
            assert_eq!(
                u128::from(totals.tuning_ticks),
                hub.tuning.sum(),
                "{}: window tuning sums must be exact",
                kind.name()
            );
            // One counter lane per shard when the sharded leg ran, else
            // the single engine's lane; plus sampled request timelines.
            let lanes: Vec<&TimeSeries> = match &sharded {
                Some(f) => f.series.iter().collect(),
                None => vec![series],
            };
            let trace = perfetto_trace(
                kind.name(),
                system.as_ref(),
                &requests,
                ChannelModel::NONE,
                RetryPolicy::UNBOUNDED,
                &lanes,
                TRACE_SAMPLE_SEED,
                TRACE_SAMPLE_K,
            );
            let events = validate_trace(&trace)
                .unwrap_or_else(|e| panic!("{}: invalid trace document: {e}", kind.name()));
            assert!(events > 0, "{}: empty trace", kind.name());
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir}: {e}");
                std::process::exit(1);
            }
            let path = format!("{dir}/{}.trace.json", file_stem(kind.name()));
            if let Err(e) = std::fs::write(&path, trace) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }

        let row = Row {
            scheme: kind.name(),
            elapsed_sec: elapsed,
            requests_per_sec: single_rps,
            stats,
            reference_speedup,
            slow_path_requests_per_sec,
            fast_forward_speedup,
            observed_requests_per_sec,
            sharded,
        };
        println!(
            "{:<22} {:>12.0} {:>14} {:>14} {:>12} {:>10} {:>10} {:>12}",
            row.scheme,
            row.requests_per_sec,
            row.stats.peak_in_flight,
            row.stats.events,
            row.stats.wake_batches,
            row.reference_speedup
                .map_or("-".into(), |s| format!("{s:.1}x")),
            row.fast_forward_speedup
                .map_or("-".into(), |s| format!("{s:.1}x")),
            row.observed_requests_per_sec
                .map_or("-".into(), |s| format!("{s:.0}")),
        );
        if let (Some(f), Some(n)) = (&row.sharded, cli.shards) {
            println!(
                "  └ {n} shards: {:>12.0} req/s  ({:.2}x over 1 engine, {:.0}% efficiency, \
                 load ratio {:.2}, merge {:.2}ms)",
                f.requests_per_sec,
                f.speedup,
                f.efficiency * 100.0,
                f.load_ratio,
                f.merge_sec * 1e3,
            );
        }
        rows.push(row);
    }

    // Skewed-workload leg: a Zipf(1.2) burst over each disk-capable
    // scheme's flat (D=1) and stratified (D=3) programs. The stratified
    // program trades a longer cycle for hot-record repetition, so its mean
    // access time under skew must come out ahead — asserted, not just
    // exported.
    let skew_clients = (cli.clients / 10).max(1);
    let mut skew_rows: Vec<SkewRow> = Vec::new();
    println!(
        "\n{:<22} {:>12} {:>14} {:>14} {:>14} {:>10}",
        "skewed θ=1.2", "req/s", "mean At", "D3 req/s", "D3 mean At", "At gain"
    );
    for kind in SchemeKind::DISK_CAPABLE {
        let flat_sys = kind.build(&dataset, &params).unwrap();
        let disk_sys = kind
            .build_disks(&dataset, &params, SKEW_DISKS)
            .expect("disk-capable")
            .unwrap();
        // Uniform tune-in phase over eight major cycles of the stratified
        // program (≈ uniform over the flat cycle too).
        let skew_requests = zipf_burst(&dataset, skew_clients, 13, 8 * disk_sys.cycle_len());
        let (rps, at) = run_skew_leg(flat_sys.as_ref(), &skew_requests);
        let (d_rps, d_at) = run_skew_leg(disk_sys.as_ref(), &skew_requests);
        assert!(
            d_at < at,
            "{}: stratified mean access {d_at:.0} must beat flat {at:.0} under Zipf(1.2)",
            kind.name()
        );
        println!(
            "{:<22} {:>12.0} {:>14.0} {:>14.0} {:>14.0} {:>9.2}x",
            kind.name(),
            rps,
            at,
            d_rps,
            d_at,
            at / d_at
        );
        skew_rows.push(SkewRow {
            scheme: kind.name(),
            requests_per_sec: rps,
            mean_access: at,
            disks_requests_per_sec: d_rps,
            disks_mean_access: d_at,
        });
    }

    // Bursty-channel leg: every scheme's churning program under the
    // Gilbert–Elliott chain with outage windows, recovered by the
    // resynchronization policy. Throughput here prices the whole fault
    // path — skip-ahead state resolution, outage back-off, version-skew
    // restarts — and the fault counters prove the leg isn't degenerate.
    let (channel, policy) = burst_channel();
    let burst_clients = (cli.clients / 10).max(1);
    let burst_requests = burst(&dataset, burst_clients, 21);
    let mut burst_rows: Vec<BurstRow> = Vec::new();
    println!(
        "\n{:<22} {:>12} {:>12} {:>12} {:>14}",
        "burst+outage", "req/s", "corrupt", "abandoned", "stale restarts"
    );
    for kind in SchemeKind::ALL {
        let spec = UpdateSpec {
            rate: BURST_CHURN,
            seed: 0x0DD,
            horizon_cycles: 16,
        };
        let system = kind.build_versioned(&dataset, &params, spec).unwrap();
        let mut engine = Engine::with_channel(system.as_ref(), channel, policy);
        // Same warm-up discipline as the clean-channel leg.
        engine.run_batch(&burst_requests);
        let before = engine.stats();
        let start = Instant::now();
        let done = engine.run_batch(&burst_requests);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(done.len(), burst_requests.len());
        assert!(
            done.iter().all(|r| !r.outcome.aborted),
            "protocol bug in {} under burst channel",
            kind.name()
        );
        let after = engine.stats();
        let row = BurstRow {
            scheme: kind.name(),
            requests_per_sec: burst_requests.len() as f64 / elapsed.max(1e-12),
            corrupt_reads: after.corrupt_reads - before.corrupt_reads,
            abandoned: after.abandoned - before.abandoned,
            stale_restarts: after.stale_restarts - before.stale_restarts,
        };
        // A burst leg that never corrupts a read measures nothing.
        assert!(
            row.corrupt_reads > 0,
            "{}: burst channel produced no corrupt reads",
            kind.name()
        );
        println!(
            "{:<22} {:>12.0} {:>12} {:>12} {:>14}",
            row.scheme, row.requests_per_sec, row.corrupt_reads, row.abandoned, row.stale_restarts
        );
        burst_rows.push(row);
    }

    if let Some(dir) = &cli.metrics_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(1);
        }
        for (scheme, hub) in &hubs {
            let path = format!("{dir}/{}.json", file_stem(scheme));
            let doc = export::to_json(scheme, hub);
            debug_assert!(export::validate(&doc).is_ok());
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        let labelled: Vec<(&str, &MetricsHub)> = hubs.iter().map(|(s, h)| (*s, h)).collect();
        let prom_path = format!("{dir}/metrics.prom");
        if let Err(e) = std::fs::write(&prom_path, export::to_prometheus(&labelled)) {
            eprintln!("cannot write {prom_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {} metrics documents + metrics.prom to {dir}",
            hubs.len()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine\",");
    let _ = writeln!(json, "  \"clients\": {},", cli.clients);
    let _ = writeln!(json, "  \"records\": {},", cli.records);
    let _ = writeln!(
        json,
        "  \"shards\": {},",
        cli.shards.map_or("null".into(), |n| n.to_string())
    );
    json.push_str("  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"requests\": {}, \"elapsed_sec\": {:.6}, \
             \"requests_per_sec\": {:.1}, \"peak_in_flight\": {}, \"events\": {}, \
             \"wake_batches\": {}, \"corrupt_reads\": {}, \"abandoned\": {}, \
             \"stale_restarts\": {}, \"version_skews\": {}}}",
            json_escape(r.scheme),
            cli.clients,
            r.elapsed_sec,
            r.requests_per_sec,
            r.stats.peak_in_flight,
            r.stats.events,
            r.stats.wake_batches,
            r.stats.corrupt_reads,
            r.stats.abandoned,
            r.stats.stale_restarts,
            r.stats.version_skews,
        );
        // Quantities that weren't measured are omitted outright — a row
        // never carries a `null` placeholder for a disabled measurement.
        if let Some(s) = r.reference_speedup {
            json.pop();
            let _ = write!(json, ", \"reference_speedup\": {s:.2}}}");
        }
        if let (Some(slow), Some(ff)) = (r.slow_path_requests_per_sec, r.fast_forward_speedup) {
            json.pop();
            let _ = write!(
                json,
                ", \"slow_path_requests_per_sec\": {slow:.1}, \
                 \"fast_forward_speedup\": {ff:.2}}}"
            );
        }
        if let Some(s) = r.observed_requests_per_sec {
            json.pop();
            let _ = write!(json, ", \"observed_requests_per_sec\": {s:.1}}}");
        }
        if let Some(f) = &r.sharded {
            // Reopen the object to append the sharded block.
            json.pop();
            let _ = write!(
                json,
                ", \"sharded_requests_per_sec\": {:.1}, \"shard_speedup\": {:.3}, \
                 \"scaling_efficiency\": {:.3}, \"shard_load_ratio\": {:.4}, \
                 \"shard_busy_variance\": {:.1}, \"scatter_merge_sec\": {:.6}, \
                 \"per_shard\": [",
                f.requests_per_sec,
                f.speedup,
                f.efficiency,
                f.load_ratio,
                f.busy_variance,
                f.merge_sec
            );
            for (j, s) in f.per_shard.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"shard\": {}, \"requests\": {}, \"events\": {}, \
                     \"requests_per_sec\": {:.1}, \"busy_ticks\": {}, \"idle_ticks\": {}}}",
                    if j == 0 { "" } else { ", " },
                    s.shard,
                    s.requests,
                    s.events,
                    s.requests_per_sec(),
                    f.busy_ticks.get(j).copied().unwrap_or(0),
                    f.idle_ticks.get(j).copied().unwrap_or(0),
                );
            }
            json.push_str("]}");
        }
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"skewed\": {{\"theta\": {SKEW_THETA}, \"disks\": {SKEW_DISKS}, \"requests\": {skew_clients}, \"schemes\": ["
    );
    for (i, r) in skew_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"requests_per_sec\": {:.1}, \"mean_access\": {:.1}, \
             \"disks_requests_per_sec\": {:.1}, \"disks_mean_access\": {:.1}, \
             \"access_improvement\": {:.3}}}",
            json_escape(r.scheme),
            r.requests_per_sec,
            r.mean_access,
            r.disks_requests_per_sec,
            r.disks_mean_access,
            r.mean_access / r.disks_mean_access.max(1e-12),
        );
        json.push_str(if i + 1 < skew_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]},\n");
    let _ = writeln!(
        json,
        "  \"burst\": {{\"churn\": {BURST_CHURN}, \"requests\": {burst_clients}, \"schemes\": ["
    );
    for (i, r) in burst_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"requests_per_sec\": {:.1}, \"corrupt_reads\": {}, \
             \"abandoned\": {}, \"stale_restarts\": {}}}",
            json_escape(r.scheme),
            r.requests_per_sec,
            r.corrupt_reads,
            r.abandoned,
            r.stale_restarts,
        );
        json.push_str(if i + 1 < burst_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]}\n}\n");
    std::fs::write(&cli.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cli.out);
        std::process::exit(1);
    });
    println!("\nwrote {}", cli.out);
}
