//! Extension: broadcast-disk stratification under skewed demand.
fn main() {
    bda_bench::experiments::ext_disks::run(&bda_bench::Cli::parse());
}
