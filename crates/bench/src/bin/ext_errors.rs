//! Extension: access methods over an error-prone (lossy) channel.
fn main() {
    bda_bench::experiments::ext_errors::run(&bda_bench::Cli::parse());
}
