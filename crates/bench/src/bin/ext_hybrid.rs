//! Extension: hybrid index-tree + signature scheme vs its parents.
fn main() {
    bda_bench::experiments::ext_hybrid::run(&bda_bench::Cli::parse());
}
