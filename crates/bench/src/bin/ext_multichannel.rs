//! Extension: multichannel broadcast — channel groups, tune-switch
//! costs, and the air-time allocator at equal aggregate bandwidth.
fn main() {
    bda_bench::experiments::ext_multichannel::run(&bda_bench::Cli::parse());
}
