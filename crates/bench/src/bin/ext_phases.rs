//! Extension: per-phase tuning-time breakdown across all schemes.
fn main() {
    let cli = bda_bench::Cli::parse();
    bda_bench::experiments::ext_phases::run(&cli);
}
