//! Extension: tail access latency (p50/p95/p99) per scheme.
fn main() {
    bda_bench::experiments::ext_tails::run(&bda_bench::Cli::parse());
}
