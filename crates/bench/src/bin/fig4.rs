//! Regenerates Fig. 4(a)+(b): access/tuning time vs number of records.
fn main() {
    bda_bench::experiments::fig4::run(&bda_bench::Cli::parse());
}
