//! Regenerates Fig. 5(a)+(b): access/tuning time vs data availability.
fn main() {
    bda_bench::experiments::fig5::run(&bda_bench::Cli::parse());
}
