//! Regenerates Fig. 6(a)+(b): access/tuning time vs record/key ratio.
fn main() {
    bda_bench::experiments::fig6::run(&bda_bench::Cli::parse());
}
