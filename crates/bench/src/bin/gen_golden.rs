//! Regenerate the golden conformance corpus in `tests/golden/`.
//!
//! ```text
//! cargo run -p bda-bench --bin gen_golden [--out DIR] [--check]
//! ```
//!
//! `--check` writes nothing and exits non-zero if the checked-in files
//! differ from a fresh generation (what CI runs); the default overwrites
//! the corpus in place. Regenerated numbers are a **protocol change** —
//! review the diff before committing.

use bda_bench::golden;

fn main() {
    let mut out = golden::golden_dir();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = args.next().map(Into::into).unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                })
            }
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("gen_golden [--out DIR] [--check]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let files = golden::corpus();
    if check {
        let mut dirty = 0usize;
        for (name, expected) in &files {
            let path = out.join(name);
            match std::fs::read_to_string(&path) {
                Ok(actual) if &actual == expected => {}
                Ok(_) => {
                    eprintln!("STALE  {}", path.display());
                    dirty += 1;
                }
                Err(e) => {
                    eprintln!("MISSING {} ({e})", path.display());
                    dirty += 1;
                }
            }
        }
        if dirty > 0 {
            eprintln!(
                "{dirty} corpus file(s) out of date — run `cargo run -p bda-bench --bin gen_golden` and review the diff"
            );
            std::process::exit(1);
        }
        println!("golden corpus up to date ({} files)", files.len());
        return;
    }

    std::fs::create_dir_all(&out).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", out.display());
        std::process::exit(1);
    });
    for (name, tsv) in &files {
        let path = out.join(name);
        std::fs::write(&path, tsv).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
    }
    println!("wrote {} corpus files to {}", files.len(), out.display());
}
