//! Regenerates Table 1 (simulation settings).
fn main() {
    bda_bench::experiments::table1::run(&bda_bench::Cli::parse());
}
