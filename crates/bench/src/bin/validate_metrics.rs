//! CI gate: structurally validate `bda-obs/v1` metrics documents.
//!
//! Reads every path given on the command line, runs it through the
//! exporter's own validator (schema, required phase/gauge/histogram keys,
//! ordering invariants like `found ≤ completed` and `p50 ≤ p99.9`), and
//! exits nonzero on the first violation — so a broken exporter fails the
//! `obs-smoke` job instead of silently shipping malformed telemetry.
//!
//! ```text
//! validate_metrics FILE.json [FILE.json ...]
//! ```

use bda_obs::export::validate;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("validate_metrics FILE.json [FILE.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&text) {
            Ok(scheme) => println!("OK   {path} (scheme: {scheme})"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
