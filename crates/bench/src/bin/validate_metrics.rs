//! CI gate: structurally validate observability documents.
//!
//! Reads every path given on the command line, dispatches on the
//! document's declared `schema`, and runs it through the matching
//! validator:
//!
//! * `bda-obs/v1` metrics documents — schema, required
//!   phase/gauge/histogram keys, ordering invariants like
//!   `found ≤ completed` and `p50 ≤ p99.9`, and (when the optional
//!   `timeline` block is present) the windowed invariants: strictly
//!   increasing window ids, per-window `tuning ≤ access`, and window
//!   sums equal to the top-level aggregates exactly.
//! * `bda-obs/trace/v1` Perfetto/Chrome trace documents — event
//!   structure, monotone span nesting, counter lanes.
//!
//! Exits nonzero on the first violation — so a broken exporter fails the
//! `obs-smoke` / `timeline-smoke` jobs instead of silently shipping
//! malformed telemetry.
//!
//! ```text
//! validate_metrics FILE.json [FILE.json ...]
//! ```

use bda_obs::export::{parse_json, validate, Json};
use bda_obs::{validate_trace, TRACE_SCHEMA};

/// Validate one document, dispatching on its `schema` member. Returns a
/// human-readable summary for the OK line.
fn validate_any(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == TRACE_SCHEMA => {
            let events = validate_trace(text)?;
            Ok(format!("trace, {events} events"))
        }
        _ => {
            let scheme = validate(text)?;
            Ok(format!("scheme: {scheme}"))
        }
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("validate_metrics FILE.json [FILE.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_any(&text) {
            Ok(what) => println!("OK   {path} ({what})"),
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_version_mismatch_is_rejected_on_both_document_kinds() {
        // A future metrics schema must fail, not silently half-validate.
        let err = validate_any(r#"{"schema": "bda-obs/v2", "scheme": "flat"}"#)
            .expect_err("v2 metrics document must be rejected");
        assert!(err.contains("bda-obs/v1"), "{err}");
        // A future trace schema falls through to the metrics validator
        // (the dispatch matches the trace schema exactly), which rejects
        // it for the same reason.
        let err = validate_any(r#"{"schema": "bda-obs/trace/v2", "traceEvents": []}"#)
            .expect_err("v2 trace document must be rejected");
        assert!(err.contains("bda-obs/v1"), "{err}");
        // A document with no schema member at all is rejected too.
        assert!(validate_any(r#"{"traceEvents": []}"#).is_err());
    }

    #[test]
    fn dispatch_sends_each_kind_to_its_own_validator() {
        // A minimal valid trace document validates through the trace arm.
        let trace = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"flat\"}}}}]}}"
        );
        let what = validate_any(&trace).expect("trace document validates");
        assert!(what.starts_with("trace, "), "{what}");
        // A malformed trace (span missing dur) fails through the same arm.
        let bad = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"traceEvents\":[\
             {{\"ph\":\"X\",\"name\":\"q\",\"pid\":1,\"tid\":0,\"ts\":5}}]}}"
        );
        assert!(validate_any(&bad).is_err());
    }
}
