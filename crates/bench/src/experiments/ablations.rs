//! Ablation studies for the design knobs DESIGN.md calls out:
//! replication depth `r`, segmentation `m`, signature length, and hash
//! quality / load factor. These go beyond the paper's figures; they
//! substantiate its §2 tradeoff discussions.

use bda_btree::optimal::{optimal_m, optimal_r};
use bda_btree::{DistributedScheme, OneMScheme};
use bda_core::{DynSystem, Params, Scheme};
use bda_datagen::{DatasetBuilder, QueryWorkload};
use bda_hash::{HashFn, HashScheme};
use bda_signature::{SigParams, SimpleSignatureScheme};
use bda_sim::Simulator;

use crate::table::Table;
use crate::Cli;

fn nr(cli: &Cli) -> usize {
    if cli.quick {
        2_000
    } else {
        10_000
    }
}

fn simulate(cli: &Cli, system: &dyn DynSystem, dataset: &bda_core::Dataset) -> (f64, f64) {
    let workload = QueryWorkload::uniform(dataset, cli.seed ^ 0x51);
    let mut sim = Simulator::new(system, workload, cli.sim_config());
    let r = sim.run();
    assert_eq!(r.aborted, 0);
    (r.mean_access(), r.mean_tuning())
}

/// ◆ Distributed indexing: sweep the number of replicated levels `r`.
pub fn ablation_r(cli: &Cli) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(nr(cli), cli.seed).build().unwrap();
    let fanout = params.index_entries_per_bucket();
    let probe = DistributedScheme::new().build(&dataset, &params).unwrap();
    let k = probe.num_levels();
    let r_star = optimal_r(fanout, k, dataset.len());

    let mut t = Table::new(&["r", "access(S)", "tuning(S)", "cycle buckets", "note"]);
    for r in 0..k {
        let sys = DistributedScheme::with_r(r)
            .build(&dataset, &params)
            .unwrap();
        let (at, tt) = simulate(cli, &sys, &dataset);
        t.row(vec![
            r.to_string(),
            format!("{at:.0}"),
            format!("{tt:.0}"),
            bda_core::DynSystem::num_buckets(&sys).to_string(),
            if r == r_star {
                "← optimal (paper's choice)".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("# Ablation — distributed indexing replication depth r (k = {k})\n");
    print!("{}", t.render());
    let _ = t.write_csv("ablation_r");
}

/// ◆ `(1,m)` indexing: sweep the number of data segments `m`.
pub fn ablation_m(cli: &Cli) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(nr(cli), cli.seed).build().unwrap();
    let probe = OneMScheme::new().build(&dataset, &params).unwrap();
    let m_star = optimal_m(dataset.len(), probe.index_buckets_per_copy());

    let mut sweep: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
    if !sweep.contains(&m_star) {
        sweep.push(m_star);
        sweep.sort_unstable();
    }
    let mut t = Table::new(&["m", "access(S)", "tuning(S)", "cycle buckets", "note"]);
    for m in sweep {
        let sys = OneMScheme::with_m(m).build(&dataset, &params).unwrap();
        let (at, tt) = simulate(cli, &sys, &dataset);
        t.row(vec![
            m.to_string(),
            format!("{at:.0}"),
            format!("{tt:.0}"),
            bda_core::DynSystem::num_buckets(&sys).to_string(),
            if m == m_star {
                "← optimal m* = √(Nr/I)".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("# Ablation — (1,m) indexing segment count m (m* = {m_star})\n");
    print!("{}", t.render());
    let _ = t.write_csv("ablation_m");
}

/// ◆ Signature length: the §2.3 access-vs-tuning tradeoff.
pub fn ablation_siglen(cli: &Cli) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(nr(cli), cli.seed).build().unwrap();
    let mut t = Table::new(&[
        "sig bytes",
        "access(S)",
        "tuning(S)",
        "false drops/query",
        "p_fd model",
    ]);
    for sig_bytes in [1u32, 2, 4, 8, 16, 32, 64] {
        let sigp = SigParams {
            sig_bytes,
            ..SigParams::default()
        };
        let sys = SimpleSignatureScheme::with_params(sigp)
            .build(&dataset, &params)
            .unwrap();
        let workload = QueryWorkload::uniform(&dataset, cli.seed ^ 0x51);
        let mut sim = Simulator::new(&sys, workload, cli.sim_config());
        let r = sim.run();
        assert_eq!(r.aborted, 0);
        t.row(vec![
            sig_bytes.to_string(),
            format!("{:.0}", r.mean_access()),
            format!("{:.0}", r.mean_tuning()),
            format!("{:.2}", r.false_drops as f64 / r.requests as f64),
            format!("{:.5}", bda_analytical::false_drop_probability(&sigp, 4)),
        ]);
    }
    println!("# Ablation — signature length (shorter: better access, worse tuning)\n");
    print!("{}", t.render());
    let _ = t.write_csv("ablation_siglen");
}

/// ◆ Hash quality and load factor: the §4.2 remark that tuning time
/// depends on "how good the hashing function is".
pub fn ablation_hash(cli: &Cli) {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(nr(cli), cli.seed).build().unwrap();
    let mut t = Table::new(&[
        "hash fn",
        "load",
        "access(S)",
        "tuning(S)",
        "collisions",
        "empty slots",
    ]);
    let hash_fns = [
        HashFn::Mixed,
        HashFn::Modulo,
        HashFn::Clustered { factor: 4 },
        HashFn::Clustered { factor: 16 },
    ];
    for hf in hash_fns {
        for load in [1.0f64, 0.5] {
            let sys = HashScheme::new()
                .with_hash(hf)
                .with_load_factor(load)
                .build(&dataset, &params)
                .unwrap();
            let (at, tt) = simulate(cli, &sys, &dataset);
            t.row(vec![
                hf.label(),
                format!("{load}"),
                format!("{at:.0}"),
                format!("{tt:.0}"),
                sys.num_collisions().to_string(),
                sys.num_empty().to_string(),
            ]);
        }
    }
    println!("# Ablation — hash-function quality and load factor\n");
    print!("{}", t.render());
    let _ = t.write_csv("ablation_hash");
}
