//! Extension experiment: **broadcast disks** — stratified repetition
//! schedules under skewed demand (Acharya et al., SIGMOD 1995, composed
//! with the paper's air-indexing schemes).
//!
//! Records are ranked by popularity and assigned to `D` concentric
//! "disks" with relative spin speeds; hot records repeat every minor
//! cycle, cold ones once per major cycle. The sweep crosses the workload
//! skew θ ∈ {0, 0.4, 0.8, 1.2} with the stratification depth
//! D ∈ {1, 2, 3} for the two scan-layout schemes (flat, signature) and
//! reports measured mean access/tuning time per cell, plus the
//! repetition-schedule closed form (`bda_analytical::flat_disks`) beside
//! the flat measurements — the Fig-4-style "(S) vs (A)" overlay for
//! stratified programs.
//!
//! The experiment asserts its own headline: at θ = 1.2 every stratified
//! program (D > 1) must measure a strictly better mean access time than
//! its D = 1 flat cycle, and at θ = 0 stratification must *not* win
//! (repetition lengthens the cycle without favoring anyone). D = 1 is
//! bit-identical to the unstratified broadcast, so that column doubles as
//! the baseline.

use bda_core::{DiskConfig, DiskLayout, DynSystem, Params, Ticks};
use bda_datagen::{zipf_weights, DatasetBuilder, Popularity, Prng, QueryWorkload};

use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Workload skews swept.
pub const THETAS: [f64; 4] = [0.0, 0.4, 0.8, 1.2];
/// Stratification depths swept.
pub const DISKS: [usize; 3] = [1, 2, 3];
/// The schemes the table sweeps (both interleaved scan layouts).
const SCHEMES: [SchemeKind; 2] = [SchemeKind::Flat, SchemeKind::Signature];

/// Measured mean access/tuning time for one (scheme, θ, D) cell: keys
/// drawn Zipf(θ), tune-ins uniform over eight major cycles.
fn run_cell(
    sys: &dyn DynSystem,
    ds: &bda_core::Dataset,
    theta: f64,
    queries: usize,
    seed: u64,
) -> (f64, f64) {
    let mut workload = QueryWorkload::new(ds, Vec::new(), 1.0, Popularity::Zipf(theta), seed);
    let mut rng = Prng::new(seed ^ 0xA11);
    let span: Ticks = sys.cycle_len() * 8;
    let mut at = 0f64;
    let mut tt = 0f64;
    for _ in 0..queries {
        let out = sys.probe(workload.next_key(), rng.below(span));
        assert!(out.found, "{} lost a broadcast key", sys.scheme_name());
        at += out.access as f64;
        tt += out.tuning as f64;
    }
    (at / queries as f64, tt / queries as f64)
}

/// Run the broadcast-disk skew sweep.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 600 } else { 2_000 };
    let queries = if cli.quick { 1_500 } else { 6_000 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let progress = cli.progress();

    let headers: Vec<String> = std::iter::once("θ".to_string())
        .chain(SCHEMES.iter().flat_map(|s| {
            DISKS
                .iter()
                .flat_map(move |d| {
                    [
                        format!("{} D{d} At", s.name()),
                        format!("{} D{d} Tt", s.name()),
                    ]
                })
                .chain(std::iter::once(format!("{} D3 At(A)", s.name())))
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);

    for &theta in &THETAS {
        let weights = zipf_weights(nr, theta);
        let mut row = vec![format!("{theta}")];
        for &kind in &SCHEMES {
            let mut flat_at = f64::NAN;
            for &d in &DISKS {
                let sys = kind
                    .build_disks(&dataset, &params, d)
                    .expect("scan layouts are disk-capable")
                    .unwrap();
                let seed = cli.seed ^ (theta.to_bits().rotate_left(7)) ^ (d as u64) << 17;
                let (at, tt) = run_cell(sys.as_ref(), &dataset, theta, queries, seed);
                progress.emit(
                    bda_obs::Severity::Progress,
                    &format!("ext_disks: {} θ={theta} D={d} At={at:.0}", kind.name()),
                );
                if d == 1 {
                    flat_at = at;
                } else if (theta - 1.2).abs() < 1e-9 {
                    assert!(
                        at < flat_at,
                        "{} θ=1.2 D={d}: stratified At {at:.0} must beat flat {flat_at:.0}",
                        kind.name()
                    );
                } else if theta == 0.0 {
                    assert!(
                        at > flat_at,
                        "{} θ=0 D={d}: repetition cannot win under uniform demand \
                         ({at:.0} vs {flat_at:.0})",
                        kind.name()
                    );
                }
                row.push(format!("{at:.0}"));
                row.push(format!("{tt:.0}"));
            }
            // Closed-form D=3 access time beside the measurements.
            let layout = DiskLayout::new(nr, &DiskConfig::new(3));
            let model = match kind {
                SchemeKind::Flat => {
                    bda_analytical::flat_disks(&params, layout.schedule(), &weights).access
                }
                _ => {
                    bda_analytical::signature_disks(
                        &params,
                        bda_signature::SigParams::default().sig_bytes,
                        layout.schedule(),
                        &weights,
                    )
                    .access
                }
            };
            row.push(format!("{model:.0}"));
        }
        t.row(row);
    }

    println!(
        "# Extension — broadcast disks: skew θ × stratification D (Nr = {nr}, {queries} queries/cell)\n"
    );
    print!("{}", t.render());
    let _ = t.write_csv("ext_disks");
    println!("\n(csv: target/experiments/ext_disks.csv)");
}
