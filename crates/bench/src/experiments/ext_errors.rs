//! Extension experiment: access methods over an **error-prone channel**
//! (the setting of the paper's reference \[9\], Lo & Chen, IEEE TKDE 2000).
//!
//! Each bucket transmission is lost independently with probability `p`;
//! clients recover per scheme (index schemes restart their protocol,
//! scanning schemes rewind their cycle-coverage counter). The sweep shows
//! how each scheme's access and tuning time degrade with the loss rate —
//! pointer-chasing schemes pay a full protocol restart per lost index
//! bucket, while scanners degrade smoothly.

use bda_core::{ErrorModel, Params};
use bda_datagen::{DatasetBuilder, Prng};

use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Loss probabilities swept (percent).
pub const LOSS_PCT: [u32; 5] = [0, 2, 5, 10, 20];

/// Run the error-prone-channel sweep.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 1_000 } else { 5_000 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let queries = if cli.quick { 2_000 } else { 10_000 };

    let schemes = SchemeKind::PAPER;
    let headers: Vec<String> = std::iter::once("loss%".to_string())
        .chain(
            schemes
                .iter()
                .flat_map(|s| [format!("{} At", s.name()), format!("{} Tt", s.name())]),
        )
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);

    for &pct in &LOSS_PCT {
        let errors = ErrorModel::new(f64::from(pct) / 100.0, cli.seed ^ 0xE7);
        let mut row = vec![pct.to_string()];
        for &kind in &schemes {
            let sys = kind.build(&dataset, &params).unwrap();
            let cycle = sys.cycle_len();
            let mut rng = Prng::new(cli.seed ^ u64::from(pct) << 32 ^ kind.name().len() as u64);
            let mut at = 0f64;
            let mut tt = 0f64;
            let mut aborted = 0u64;
            for _ in 0..queries {
                let key = dataset.record(rng.below(dataset.len() as u64) as usize).key;
                let tune_in = rng.below(cycle * 8);
                let out = sys.probe_with_errors(key, tune_in, errors);
                aborted += u64::from(out.aborted);
                at += out.access as f64;
                tt += out.tuning as f64;
            }
            assert_eq!(aborted, 0, "{} aborted under {pct}% loss", kind.name());
            at /= queries as f64;
            tt /= queries as f64;
            row.push(format!("{at:.0}"));
            row.push(format!("{tt:.0}"));
        }
        t.row(row);
    }

    println!("# Extension — error-prone channel (Nr = {nr}, {queries} queries/cell)\n");
    print!("{}", t.render());
    let _ = t.write_csv("ext_errors");
    println!("\n(csv: target/experiments/ext_errors.csv)");
}
