//! Extension experiment: access methods over an **error-prone channel**
//! (the setting of the paper's reference \[9\], Lo & Chen, IEEE TKDE 2000).
//!
//! Each bucket transmission is lost independently with probability `p`;
//! clients recover per scheme (index schemes restart their protocol,
//! scanning schemes rewind their cycle-coverage counter). The sweep shows
//! how each scheme's access and tuning time degrade with the loss rate —
//! pointer-chasing schemes pay a full protocol restart per lost index
//! bucket, while scanners degrade smoothly.
//!
//! Two execution modes share the sweep grid:
//!
//! * **walker** (default) — one isolated client per query via
//!   [`bda_core::DynSystem::probe_with_errors`]; fastest, the historical
//!   mode.
//! * **engine** (`--engine`) — every cell's queries run as *concurrent
//!   clients* through the slab discrete-event engine
//!   ([`bda_sim::Engine::with_faults`]), exactly the fault-injection
//!   testbed the differential suite verifies. Outcomes are identical per
//!   request (engine ≡ walker — `engine_lossy_equiv` proves it); the
//!   engine mode additionally reports retries per query from
//!   [`bda_sim::EngineStats`].
//!
//! `--updates P` composes a **dynamic broadcast program** with the loss
//! sweep: every cell's system becomes a [`bda_sim::VersionedServer`]
//! mutating `P` % of its records per cycle, so clients ride out packet
//! loss *and* version skew in the same walk (the soak the dynamic
//! differential suite pins). With updates on, a queried key may have been
//! deleted mid-air, so the per-query assertion weakens from "found" to
//! "never aborted, never answered from a stale program".

use bda_core::{ErrorModel, Key, Params, RetryPolicy, Ticks};
use bda_datagen::{DatasetBuilder, Prng};
use bda_sim::Engine;

use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Loss probabilities swept (percent) — the Fig-4-style 0–25 % range.
pub const LOSS_PCT: [u32; 6] = [0, 2, 5, 10, 20, 25];

/// Mean access/tuning time (plus degradation counters) for one
/// (scheme, loss) cell.
struct CellResult {
    at: f64,
    tt: f64,
    retries_per_query: f64,
    restarts_per_query: f64,
}

/// The cell's query stream: keys drawn from the broadcast set, tune-ins
/// spread over eight cycles. Identical for both execution modes, so
/// `--engine` runs are directly comparable with walker runs.
fn cell_requests(
    dataset: &bda_core::Dataset,
    cycle: Ticks,
    queries: usize,
    seed: u64,
) -> Vec<(Ticks, Key)> {
    let mut rng = Prng::new(seed);
    (0..queries)
        .map(|_| {
            let key = dataset.record(rng.below(dataset.len() as u64) as usize).key;
            (rng.below(cycle * 8), key)
        })
        .collect()
}

fn run_cell_walker(
    sys: &dyn bda_core::DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    dynamic: bool,
) -> CellResult {
    let mut at = 0f64;
    let mut tt = 0f64;
    let mut retries = 0u64;
    let mut restarts = 0u64;
    for &(tune_in, key) in requests {
        let out = sys.probe_with_errors(key, tune_in, errors);
        assert!(!out.aborted, "{} aborted under loss", sys.scheme_name());
        // Under updates the key may have been deleted mid-air; not-found
        // and truthful abandonment are legitimate then.
        if !dynamic {
            assert!(out.found, "{} lost a broadcast key", sys.scheme_name());
        }
        at += out.access as f64;
        tt += out.tuning as f64;
        retries += u64::from(out.retries);
        restarts += u64::from(out.stale_restarts);
    }
    let n = requests.len() as f64;
    CellResult {
        at: at / n,
        tt: tt / n,
        retries_per_query: retries as f64 / n,
        restarts_per_query: restarts as f64 / n,
    }
}

fn run_cell_engine(
    sys: &dyn bda_core::DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    dynamic: bool,
) -> CellResult {
    let mut engine = Engine::with_faults(sys, errors, RetryPolicy::UNBOUNDED);
    let completed = engine.run_batch(requests);
    let mut at = 0f64;
    let mut tt = 0f64;
    for r in &completed {
        assert!(
            !r.outcome.aborted,
            "{} aborted under loss",
            sys.scheme_name()
        );
        if !dynamic {
            assert!(
                r.outcome.found,
                "{} lost a broadcast key",
                sys.scheme_name()
            );
        }
        at += r.outcome.access as f64;
        tt += r.outcome.tuning as f64;
    }
    let stats = engine.stats();
    if !dynamic {
        assert_eq!(stats.abandoned, 0, "unbounded retries never abandon");
    }
    let n = requests.len() as f64;
    CellResult {
        at: at / n,
        tt: tt / n,
        retries_per_query: stats.corrupt_reads as f64 / n,
        restarts_per_query: stats.stale_restarts as f64 / n,
    }
}

/// Run the error-prone-channel sweep.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 1_000 } else { 5_000 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let queries = if cli.quick { 2_000 } else { 10_000 };

    let spec = cli.update_spec();
    let dynamic = spec.is_some();

    let schemes = SchemeKind::PAPER;
    let headers: Vec<String> = std::iter::once("loss%".to_string())
        .chain(schemes.iter().flat_map(|s| {
            let mut cols = vec![
                format!("{} At", s.name()),
                format!("{} Tt", s.name()),
                format!("{} rt/q", s.name()),
            ];
            if dynamic {
                cols.push(format!("{} rs/q", s.name()));
            }
            cols
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);

    for &pct in &LOSS_PCT {
        let errors = ErrorModel::new(f64::from(pct) / 100.0, cli.seed ^ 0xE7);
        let mut row = vec![pct.to_string()];
        for &kind in &schemes {
            let sys = match spec {
                Some(s) => kind.build_versioned(&dataset, &params, s).unwrap(),
                None => kind.build(&dataset, &params).unwrap(),
            };
            let seed = cli.seed ^ u64::from(pct) << 32 ^ kind.name().len() as u64;
            let requests = cell_requests(&dataset, sys.cycle_len(), queries, seed);
            let cell = if cli.engine {
                run_cell_engine(sys.as_ref(), &requests, errors, dynamic)
            } else {
                run_cell_walker(sys.as_ref(), &requests, errors, dynamic)
            };
            row.push(format!("{:.0}", cell.at));
            row.push(format!("{:.0}", cell.tt));
            row.push(format!("{:.3}", cell.retries_per_query));
            if dynamic {
                row.push(format!("{:.3}", cell.restarts_per_query));
            }
        }
        t.row(row);
    }

    let update_note = match cli.update_pct {
        0 => String::new(),
        p => format!(", {p}% updates/cycle"),
    };
    println!(
        "# Extension — error-prone channel (Nr = {nr}, {queries} queries/cell, {} mode{update_note})\n",
        if cli.engine {
            "event-engine"
        } else {
            "direct-walker"
        }
    );
    print!("{}", t.render());
    let _ = t.write_csv("ext_errors");
    println!("\n(csv: target/experiments/ext_errors.csv)");
}
