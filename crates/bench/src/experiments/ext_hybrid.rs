//! Extension experiment: the hybrid index-tree + signature scheme (the
//! direction of the paper's references \[3\]/\[4\]) against its two parents.
//!
//! Three query mixes over the same dataset:
//!
//! * **key lookups** — hybrid vs. pure distributed indexing: the hybrid
//!   pays the signature buckets' cycle inflation on access time but keeps
//!   the `O(k)`-probe tuning;
//! * **attribute queries** — hybrid vs. pure simple-signature indexing:
//!   both scan one signature per record; the hybrid also hops over its
//!   index segments;
//! * pure schemes answering the *other* query type: distributed indexing
//!   cannot answer attribute queries at all, and the signature scheme
//!   answers key lookups only by scanning — the gap the hybrid closes.

use bda_btree::DistributedScheme;
use bda_core::{DynSystem, Params, Scheme, System};
use bda_datagen::{DatasetBuilder, Prng};
use bda_hybrid::HybridScheme;
use bda_signature::SimpleSignatureScheme;

use crate::table::Table;
use crate::Cli;

/// Run the hybrid-scheme comparison.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 1_000 } else { 5_000 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let queries = if cli.quick { 2_000 } else { 10_000 };

    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let hybrid = HybridScheme::new().build(&dataset, &params).unwrap();

    let mut rng = Prng::new(cli.seed ^ 0x4B1D);
    let mut key_cases = Vec::with_capacity(queries);
    let mut attr_cases = Vec::with_capacity(queries);
    for _ in 0..queries {
        let rec = dataset.record(rng.below(nr as u64) as usize);
        key_cases.push((rec.key, rng.below(1 << 40)));
        // Attribute 1 is unique per record in datagen's layout; querying it
        // exercises the selective path.
        attr_cases.push((rec.attrs[1], rng.below(1 << 40)));
    }

    let avg = |f: &mut dyn FnMut(usize) -> (u64, u64)| -> (f64, f64) {
        let mut at = 0u64;
        let mut tt = 0u64;
        for i in 0..queries {
            let (a, t) = f(i);
            at += a;
            tt += t;
        }
        (at as f64 / queries as f64, tt as f64 / queries as f64)
    };

    let mut t = Table::new(&["query type", "scheme", "access(B)", "tuning(B)"]);
    // Key lookups.
    let (a, tu) = avg(&mut |i| {
        let (k, t0) = key_cases[i];
        let o = DynSystem::probe(&dist, k, t0);
        assert!(o.found && !o.aborted);
        (o.access, o.tuning)
    });
    t.row(vec![
        "key".into(),
        "distributed".into(),
        format!("{a:.0}"),
        format!("{tu:.0}"),
    ]);
    let (a, tu) = avg(&mut |i| {
        let (k, t0) = key_cases[i];
        let o = DynSystem::probe(&hybrid, k, t0);
        assert!(o.found && !o.aborted);
        (o.access, o.tuning)
    });
    t.row(vec![
        "key".into(),
        "hybrid".into(),
        format!("{a:.0}"),
        format!("{tu:.0}"),
    ]);
    let (a, tu) = avg(&mut |i| {
        let (k, t0) = key_cases[i];
        let o = DynSystem::probe(&sig, k, t0);
        assert!(o.found && !o.aborted);
        (o.access, o.tuning)
    });
    t.row(vec![
        "key".into(),
        "signature".into(),
        format!("{a:.0}"),
        format!("{tu:.0}"),
    ]);

    // Attribute queries (distributed indexing cannot answer these).
    let (a, tu) = avg(&mut |i| {
        let (v, t0) = attr_cases[i];
        let o = hybrid.probe_attr(v, t0);
        assert!(o.found && !o.aborted);
        (o.access, o.tuning)
    });
    t.row(vec![
        "attribute".into(),
        "hybrid".into(),
        format!("{a:.0}"),
        format!("{tu:.0}"),
    ]);
    let (a, tu) = avg(&mut |i| {
        let (v, t0) = attr_cases[i];
        let m = sig.attr_query(v);
        let o = bda_core::machine::run_machine(sig.channel(), m, t0);
        assert!(o.found && !o.aborted);
        (o.access, o.tuning)
    });
    t.row(vec![
        "attribute".into(),
        "signature".into(),
        format!("{a:.0}"),
        format!("{tu:.0}"),
    ]);
    t.row(vec![
        "attribute".into(),
        "distributed".into(),
        "unanswerable".into(),
        "unanswerable".into(),
    ]);

    println!("# Extension — hybrid tree+signature scheme (Nr = {nr}, {queries} queries/cell)\n");
    print!("{}", t.render());
    let _ = t.write_csv("ext_hybrid");
    println!("\n(csv: target/experiments/ext_hybrid.csv)");
}
