//! Extension experiment: **multichannel broadcast** — channel groups at
//! equal aggregate bandwidth, tune-switch costs, and the air-time
//! allocator.
//!
//! Splitting one broadcast channel into `K` synchronized channels keeps
//! the aggregate bit rate fixed (every per-channel byte airs `K×` slower,
//! [`bda_core::Params::scaled`]), so channel parallelism only pays when
//! placement follows popularity: a hot slice on its own short cycle airs
//! far more often than it would inside the monolithic cycle. The sweep
//! crosses workload skew θ ∈ {0, 0.8, 1.2} × tune-switch cost
//! sw ∈ {256, 2048} × channel count K ∈ {1, 2, 4, 8} for two striping
//! schemes (flat, signature), with the allocator's closed-form predicted
//! access time beside the K = 4 measurements, plus the cross-channel
//! indexed group (even and allocator `(channel, slot)` placement) with
//! its predicted conflict rate.
//!
//! The experiment asserts its own headline, two-sided:
//!
//! * at θ = 1.2 the allocator's K = 4 partition must measure a strictly
//!   better mean access time than K = 1 **and** than naive even K = 4
//!   striping, for both schemes and every switch cost;
//! * at θ = 0 even K = 4 **flat** striping must not meaningfully beat
//!   K = 1 (the dilated slices scan just as long and add retunes), and
//!   [`bda_analytical::pick_channels`] must choose K = 1 outright.
//!
//! The θ = 0 leg is flat-only by design: signature framing is fixed-size
//! metadata (16 bytes regardless of channel rate), so under the
//! byte-dilation bandwidth model a striped signature cycle carries
//! proportionally *less* framing overhead per slice — splitting wins a
//! sliver even under uniform demand, the closed form predicts it, and
//! the allocator correctly picks K = 2 there. Flat has no unscaled
//! framing, so it pins the pure equal-bandwidth argument.

use bda_analytical::{best_striped, even_striped, indexed_even, indexed_search, pick_channels};
use bda_core::{DynSystem, GroupConfig, Params, Ticks};
use bda_datagen::{zipf_weights, DatasetBuilder, Prng};
use bda_signature::SigParams;

use crate::table::Table;
use crate::{build_indexed_group, Cli, SchemeKind};

/// Workload skews swept.
pub const THETAS: [f64; 3] = [0.0, 0.8, 1.2];
/// Tune-switch costs swept, in ticks (bytes of air time).
pub const SWITCHES: [Ticks; 2] = [256, 2048];
/// Channel counts swept.
pub const CHANNELS: [u32; 4] = [1, 2, 4, 8];
/// The striping schemes the table sweeps (both with closed-form slice
/// models for the allocator).
const SCHEMES: [SchemeKind; 2] = [SchemeKind::Flat, SchemeKind::Signature];
/// Channel count of the spotlight (asserted, predicted) column.
const SPOT_K: u32 = 4;

/// The single-channel closed form of one scheme's slice, used by the
/// allocator's dynamic program.
fn slice_model(kind: SchemeKind) -> impl Fn(&Params, usize) -> bda_analytical::Model {
    move |p, m| match kind {
        SchemeKind::Flat => bda_analytical::flat(p, m),
        _ => bda_analytical::signature(p, &SigParams::default(), 4, m),
    }
}

/// Measured mean access time for one built group, by exact weighted
/// enumeration: every dataset key is probed (weighted by its Zipf mass)
/// at `phases` evenly spaced tune-in phases starting from a per-key
/// uniformly random offset within eight group cycles. Enumerating keys
/// removes the Zipf key-sampling noise outright, and the systematic
/// phase grid (a random rotation of a regular grid is unbiased for the
/// uniform-phase mean) collapses the sawtooth-wait variance — both are
/// needed for the tight in-binary margins below.
fn run_cell(
    sys: &dyn DynSystem,
    ds: &bda_core::Dataset,
    weights: &[f64],
    phases: u64,
    seed: u64,
) -> f64 {
    let mut rng = Prng::new(seed ^ 0xA11);
    let cycle: Ticks = sys.cycle_len();
    let span = cycle * 8;
    let stride = (cycle / phases).max(1);
    let mut at = 0f64;
    for (key, &w) in ds.keys().zip(weights) {
        let base = rng.below(span);
        let mut key_at = 0f64;
        for p in 0..phases {
            let out = sys.probe(key, (base + p * stride) % span);
            assert!(out.found, "{} lost a broadcast key", sys.scheme_name());
            key_at += out.access as f64;
        }
        at += w * key_at / phases as f64;
    }
    at
}

/// Run the multichannel K × switch-cost × skew sweep.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 400 } else { 1_200 };
    let phases = if cli.quick { 32 } else { 64 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let progress = cli.progress();

    let headers: Vec<String> = ["θ".to_string(), "sw".to_string()]
        .into_iter()
        .chain(SCHEMES.iter().flat_map(|s| {
            CHANNELS
                .iter()
                .map(move |k| format!("{} K{k} At", s.name()))
                .chain([
                    format!("{} K{SPOT_K} even At", s.name()),
                    format!("{} K{SPOT_K} At(A)", s.name()),
                ])
        }))
        .chain([
            format!("idx K{SPOT_K} At"),
            format!("idx K{SPOT_K} alloc At"),
            "conflict".to_string(),
        ])
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);

    for &theta in &THETAS {
        let weights = zipf_weights(nr, theta);
        for &sw in &SWITCHES {
            let mut row = vec![format!("{theta}"), format!("{sw}")];
            for &kind in &SCHEMES {
                let model = slice_model(kind);
                let mut k1_at = f64::NAN;
                let mut spot_at = f64::NAN;
                for &k in &CHANNELS {
                    let alloc = best_striped(&params, &weights, k, sw, &model);
                    let config = GroupConfig::new(alloc.channels, sw).unwrap();
                    let sys = kind
                        .build_multichannel(&dataset, &params, config, Some(alloc.sizes.clone()))
                        .unwrap();
                    let seed = cli.seed ^ theta.to_bits().rotate_left(9) ^ (u64::from(k) << 21);
                    let at = run_cell(sys.as_ref(), &dataset, &weights, phases, seed);
                    progress.emit(
                        bda_obs::Severity::Progress,
                        &format!(
                            "ext_multichannel: {} θ={theta} sw={sw} K={k} At={at:.0}",
                            kind.name()
                        ),
                    );
                    if k == 1 {
                        k1_at = at;
                    }
                    if k == SPOT_K {
                        spot_at = at;
                        // Closed-form sanity: the allocator's prediction
                        // tracks the measurement (the tight 5 % bound is
                        // pinned by the analytical_vs_sim suite).
                        let err = (alloc.predicted.access - at).abs() / at;
                        assert!(
                            err < 0.15,
                            "{} θ={theta} sw={sw}: predicted {:.0} vs measured {at:.0} ({:.0}% off)",
                            kind.name(),
                            alloc.predicted.access,
                            err * 100.0
                        );
                    }
                    row.push(format!("{at:.0}"));
                }
                // Naive even K=4 striping beside the allocator's partition.
                let even = even_striped(&params, &weights, SPOT_K, sw, &model);
                let config = GroupConfig::new(even.channels, sw).unwrap();
                let sys = kind
                    .build_multichannel(&dataset, &params, config, Some(even.sizes.clone()))
                    .unwrap();
                let even_at = run_cell(
                    sys.as_ref(),
                    &dataset,
                    &weights,
                    phases,
                    cli.seed ^ theta.to_bits() ^ 0xE7E7,
                );
                let predicted = best_striped(&params, &weights, SPOT_K, sw, &model)
                    .predicted
                    .access;
                row.push(format!("{even_at:.0}"));
                row.push(format!("{predicted:.0}"));

                if (theta - 1.2).abs() < 1e-9 {
                    // Headline: at heavy skew, K=4 at equal aggregate
                    // bandwidth must beat the monolithic channel — and the
                    // allocator must beat naive even striping.
                    assert!(
                        spot_at < k1_at,
                        "{} θ=1.2 sw={sw}: allocated K={SPOT_K} At {spot_at:.0} must beat K=1 {k1_at:.0}",
                        kind.name()
                    );
                    assert!(
                        spot_at < even_at,
                        "{} θ=1.2 sw={sw}: allocated K={SPOT_K} At {spot_at:.0} must beat even {even_at:.0}",
                        kind.name()
                    );
                } else if theta == 0.0 && kind == SchemeKind::Flat {
                    // Two-sided (flat only — see the module docs for why
                    // signature's fixed-size framing exempts it): under
                    // uniform demand splitting cannot meaningfully win
                    // (1 % slack absorbs residual sampling noise — the
                    // dilated slices scan as long as the monolith and add
                    // retunes on top)…
                    assert!(
                        even_at > 0.99 * k1_at,
                        "{} θ=0 sw={sw}: even K={SPOT_K} At {even_at:.0} must not beat K=1 {k1_at:.0}",
                        kind.name()
                    );
                    // …and the allocator knows it: given the choice, it
                    // keeps the single channel.
                    let choice = pick_channels(&params, &weights, &CHANNELS, sw, &model);
                    assert_eq!(
                        choice.channels,
                        1,
                        "{} θ=0 sw={sw}: allocator must pick K=1 under uniform demand",
                        kind.name()
                    );
                }
            }

            // The cross-channel indexed group at K=4: even placement,
            // allocator placement, and the predicted conflict rate.
            let config = GroupConfig::new(SPOT_K, sw).unwrap();
            let even = indexed_even(&params, &weights, SPOT_K, sw);
            let sys = build_indexed_group(&dataset, &params, config, None).unwrap();
            let idx_at = run_cell(
                sys.as_ref(),
                &dataset,
                &weights,
                phases,
                cli.seed ^ theta.to_bits() ^ 0x1DD,
            );
            let alloc = indexed_search(&params, &weights, SPOT_K, sw);
            let sys = build_indexed_group(&dataset, &params, config, Some(alloc.placement.clone()))
                .unwrap();
            let idx_alloc_at = run_cell(
                sys.as_ref(),
                &dataset,
                &weights,
                phases,
                cli.seed ^ theta.to_bits() ^ 0x1DD,
            );
            // The search starts from the even placement and only accepts
            // predicted improvements, so it cannot be meaningfully worse.
            assert!(
                idx_alloc_at < idx_at * 1.02,
                "θ={theta} sw={sw}: allocator placement At {idx_alloc_at:.0} worse than even {idx_at:.0}"
            );
            assert!(
                alloc.predicted.access <= even.predicted.access + 1e-9,
                "θ={theta} sw={sw}: indexed search predicted worse than even"
            );
            row.push(format!("{idx_at:.0}"));
            row.push(format!("{idx_alloc_at:.0}"));
            row.push(format!("{:.4}", alloc.conflict_rate));
            t.row(row);
        }
    }

    println!(
        "# Extension — multichannel broadcast: skew θ × switch cost × channels K at equal \
         aggregate bandwidth (Nr = {nr}, weighted enumeration × {phases} phases/key)\n"
    );
    print!("{}", t.render());
    let _ = t.write_csv("ext_multichannel");
    println!("\n(csv: target/experiments/ext_multichannel.csv)");
}
