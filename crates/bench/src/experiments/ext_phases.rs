//! Extension experiment: phase-attributed tuning time.
//!
//! The paper reports tuning time as a single number per scheme. The
//! observability layer splits it by walk phase — initial probe, index
//! traversal, data read — and separately reports how much of the *access*
//! time each scheme spends dozing (which costs air time but zero battery).
//! The resulting table explains *why* the tuning numbers differ: indexed
//! schemes trade a little index traversal for a lot of doze time, the
//! flat broadcast burns its entire access time listening, and signature
//! schemes sit in between with filter reads dominating.
//!
//! Percentages use the exact span accounting (the per-phase ticks sum to
//! the measured totals; see the `obs_equiv` suite), so rows add to 100.

use bda_core::Params;
use bda_datagen::{DatasetBuilder, Popularity, QueryWorkload};
use bda_obs::{MetricsHub, Phase, Severity};
use bda_sim::Simulator;

use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Run one observed simulation per scheme and return `(scheme, hub)`.
pub fn collect(cli: &Cli, nr: usize) -> Vec<(&'static str, MetricsHub)> {
    let params = Params::paper();
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();
    let cfg = cli.sim_config();
    let mut out = Vec::new();
    for kind in SchemeKind::ALL {
        let system = match kind.build(&dataset, &params) {
            Ok(s) => s,
            Err(e) => {
                cli.progress().emit(
                    Severity::Error,
                    &format!("{}: build failed: {e}", kind.name()),
                );
                continue;
            }
        };
        let workload = QueryWorkload::new(
            &dataset,
            Vec::new(),
            1.0,
            Popularity::Uniform,
            cli.seed ^ 0xABCD,
        );
        let (report, hub) = Simulator::new(system.as_ref(), workload, cfg).run_observed();
        cli.progress().emit(
            Severity::Progress,
            &format!(
                "{}: {} requests observed, Tt mean {:.0}",
                kind.name(),
                report.requests,
                report.mean_tuning()
            ),
        );
        out.push((kind.name(), hub));
    }
    out
}

/// Run the phase-breakdown comparison.
pub fn run(cli: &Cli) {
    let nr = if cli.quick { 2_000 } else { 10_000 };
    let hubs = collect(cli, nr);

    let mut t = Table::new(&[
        "scheme",
        "Tt mean",
        "probe%",
        "index%",
        "data%",
        "doze(At%)",
    ]);
    for (name, hub) in &hubs {
        let tuning = hub.spans.total_tuning() as f64;
        let access = hub.spans.total_access() as f64;
        let share = |p: Phase| {
            if tuning == 0.0 {
                0.0
            } else {
                100.0 * hub.spans.get(p).tuning as f64 / tuning
            }
        };
        let doze_share = if access == 0.0 {
            0.0
        } else {
            100.0 * hub.spans.get(Phase::Doze).access as f64 / access
        };
        t.row(vec![
            (*name).to_string(),
            format!("{:.0}", tuning / hub.completed.max(1) as f64),
            format!("{:.1}", share(Phase::InitialProbe)),
            format!("{:.1}", share(Phase::IndexTraversal)),
            format!("{:.1}", share(Phase::DataRead)),
            format!("{doze_share:.1}"),
        ]);
    }

    println!("# Extension — tuning time by walk phase (Nr = {nr}, 100% availability)\n");
    print!("{}", t.render());
    let _ = t.write_csv("ext_phases");
    println!("\n(csv: target/experiments/ext_phases.csv)");
}
