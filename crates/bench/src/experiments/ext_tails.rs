//! Extension experiment: tail access latency.
//!
//! The paper reports mean access times; deployed broadcast systems also
//! care about the *tail* — a client that just missed its bucket waits for
//! the next cycle, which shows up at high percentiles. This sweep reports
//! p50 / p95 / p99 / max alongside the mean for every scheme, from the
//! testbed's streaming histogram.

use bda_core::Params;
use bda_datagen::DatasetBuilder;

use crate::sweep::{run_cells_with_progress, CellSpec};
use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Run the tail-latency comparison.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let nr = if cli.quick { 2_000 } else { 10_000 };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();

    let schemes = SchemeKind::PAPER;
    let specs: Vec<CellSpec> = schemes
        .iter()
        .map(|&kind| CellSpec {
            kind,
            dataset: &dataset,
            absent_pool: &[],
            params,
            availability: 1.0,
            config: cli.sim_config(),
        })
        .collect();
    cli.progress().emit(
        bda_obs::Severity::Progress,
        &format!("ext_tails: sweeping {} cells", specs.len()),
    );
    let reports = match run_cells_with_progress(&specs, cli.progress()) {
        Ok(reports) => reports,
        Err(err) => {
            cli.progress().emit(
                bda_obs::Severity::Error,
                &format!("tails sweep aborted: {err}"),
            );
            return;
        }
    };

    let mut t = Table::new(&["scheme", "mean", "p50", "p95", "p99", "max", "p99/mean"]);
    for r in &reports {
        let p50 = r.access_quantile(0.50);
        let p95 = r.access_quantile(0.95);
        let p99 = r.access_quantile(0.99);
        t.row(vec![
            r.scheme.to_string(),
            format!("{:.0}", r.mean_access()),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
            r.access_hist.max().to_string(),
            format!("{:.2}", p99 as f64 / r.mean_access()),
        ]);
    }

    println!("# Extension — access-time tails (bytes; Nr = {nr}, 100% availability)\n");
    print!("{}", t.render());
    let _ = t.write_csv("ext_tails");
    println!("\n(csv: target/experiments/ext_tails.csv)");
}
