//! Fig. 4 — access time and tuning time vs. number of data records, for
//! flat broadcast, distributed indexing, simple hashing and signature
//! indexing; simulated "(S)" series next to analytical "(A)" series.

use bda_analytical as model;
use bda_core::Params;
use bda_datagen::DatasetBuilder;
use bda_signature::SigParams;

use crate::sweep::{run_cells_with_progress, CellSpec};
use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Record counts swept on the x axis (the paper's 7000–34000 range).
pub const SIZES: [usize; 7] = [7_000, 10_000, 14_000, 19_000, 24_000, 29_000, 34_000];

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Flat,
    SchemeKind::Distributed,
    SchemeKind::Hashing,
    SchemeKind::Signature,
];

/// Run the Fig. 4 sweep and print both panels.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let cfg = cli.sim_config();
    let sizes: &[usize] = if cli.quick { &SIZES[..3] } else { &SIZES };

    // Datasets first (shared across schemes at each size).
    let datasets: Vec<_> = sizes
        .iter()
        .map(|&nr| {
            DatasetBuilder::new(nr, cli.seed ^ nr as u64)
                .build()
                .unwrap()
        })
        .collect();

    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|ds| {
            SCHEMES.iter().map(move |&kind| CellSpec {
                kind,
                dataset: ds,
                absent_pool: &[],
                params,
                availability: 1.0,
                config: cfg,
            })
        })
        .collect();
    cli.progress().emit(
        bda_obs::Severity::Progress,
        &format!("fig4: sweeping {} cells", specs.len()),
    );
    let reports = match run_cells_with_progress(&specs, cli.progress()) {
        Ok(reports) => reports,
        Err(err) => {
            cli.progress().emit(
                bda_obs::Severity::Error,
                &format!("fig4 sweep aborted: {err}"),
            );
            return;
        }
    };

    // Analytical counterparts. Signature strings: datagen records carry
    // 4 attributes with the key as attribute 0 → 4 distinct strings.
    let sig = SigParams::default();
    /// (flat At, flat Tt, dist At, dist Tt, hash At, hash Tt, sig At, sig Tt)
    type AnalyticRow = (f64, f64, f64, f64, f64, f64, f64, f64);
    let analytic: Vec<AnalyticRow> = sizes
        .iter()
        .map(|&nr| {
            let f = model::flat(&params, nr);
            let d = model::distributed(&params, nr, None);
            let h = model::hash_poisson(&params, nr, 1.0);
            let s = model::signature(&params, &sig, 4, nr);
            (
                f.access, f.tuning, d.access, d.tuning, h.access, h.tuning, s.access, s.tuning,
            )
        })
        .collect();

    let mut at = Table::new(&[
        "records",
        "flat(S)",
        "flat(A)",
        "distributed(S)",
        "distributed(A)",
        "hashing(S)",
        "hashing(A)",
        "signature(S)",
        "signature(A)",
    ]);
    let mut tt = Table::new(&[
        "records",
        "flat(S)",
        "flat(A)",
        "distributed(S)",
        "distributed(A)",
        "hashing(S)",
        "hashing(A)",
        "signature(S)",
        "signature(A)",
    ]);
    for (i, &nr) in sizes.iter().enumerate() {
        let row = &reports[i * SCHEMES.len()..(i + 1) * SCHEMES.len()];
        let a = analytic[i];
        at.row(vec![
            nr.to_string(),
            format!("{:.0}", row[0].mean_access()),
            format!("{:.0}", a.0),
            format!("{:.0}", row[1].mean_access()),
            format!("{:.0}", a.2),
            format!("{:.0}", row[2].mean_access()),
            format!("{:.0}", a.4),
            format!("{:.0}", row[3].mean_access()),
            format!("{:.0}", a.6),
        ]);
        tt.row(vec![
            nr.to_string(),
            format!("{:.0}", row[0].mean_tuning()),
            format!("{:.0}", a.1),
            format!("{:.0}", row[1].mean_tuning()),
            format!("{:.0}", a.3),
            format!("{:.0}", row[2].mean_tuning()),
            format!("{:.0}", a.5),
            format!("{:.0}", row[3].mean_tuning()),
            format!("{:.0}", a.7),
        ]);
    }

    println!("# Fig. 4(a) — access time (bytes) vs number of records\n");
    print!("{}", at.render());
    println!("\n# Fig. 4(b) — tuning time (bytes) vs number of records\n");
    print!("{}", tt.render());
    let _ = at.write_csv("fig4a_access_vs_records");
    let _ = tt.write_csv("fig4b_tuning_vs_records");
    println!(
        "\n(csv: target/experiments/fig4a_access_vs_records.csv, fig4b_tuning_vs_records.csv)"
    );
}
