//! Fig. 5 — access time and tuning time vs. data availability (0–100 %)
//! for plain broadcast, signature, `(1,m)`, distributed and hashing.
//!
//! The paper does not state the record count used; we fix `Nr = 10 000`
//! (documented in EXPERIMENTS.md), which reproduces the figure's shapes.

use bda_analytical::availability as model;
use bda_core::{Params, Scheme};
use bda_datagen::DatasetBuilder;
use bda_signature::SigParams;

use crate::sweep::{run_cells_with_progress, CellSpec};
use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Number of broadcast records for the availability sweep.
pub const NUM_RECORDS: usize = 10_000;

/// Availability sweep points (percent).
pub const AVAILABILITY: [u32; 6] = [0, 20, 40, 60, 80, 100];

/// Run the Fig. 5 sweep and print both panels.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let cfg = cli.sim_config();
    let nr = if cli.quick { 2_000 } else { NUM_RECORDS };
    let (dataset, pool) = DatasetBuilder::new(nr, cli.seed)
        .build_with_absent_pool(nr)
        .unwrap();

    let schemes = SchemeKind::PAPER;
    let specs: Vec<CellSpec> = AVAILABILITY
        .iter()
        .flat_map(|&pct| {
            let dataset = &dataset;
            let pool = &pool;
            schemes.iter().map(move |&kind| CellSpec {
                kind,
                dataset,
                absent_pool: pool,
                params,
                availability: f64::from(pct) / 100.0,
                config: cfg,
            })
        })
        .collect();
    cli.progress().emit(
        bda_obs::Severity::Progress,
        &format!("fig5: sweeping {} cells", specs.len()),
    );
    let reports = match run_cells_with_progress(&specs, cli.progress()) {
        Ok(reports) => reports,
        Err(err) => {
            cli.progress().emit(
                bda_obs::Severity::Error,
                &format!("fig5 sweep aborted: {err}"),
            );
            return;
        }
    };

    let headers: Vec<&str> = std::iter::once("availability%")
        .chain(schemes.iter().map(|s| s.name()))
        .collect();
    let mut at = Table::new(&headers);
    let mut tt = Table::new(&headers);
    for (i, &pct) in AVAILABILITY.iter().enumerate() {
        let row = &reports[i * schemes.len()..(i + 1) * schemes.len()];
        at.row(
            std::iter::once(pct.to_string())
                .chain(row.iter().map(|r| format!("{:.0}", r.mean_access())))
                .collect(),
        );
        tt.row(
            std::iter::once(pct.to_string())
                .chain(row.iter().map(|r| format!("{:.0}", r.mean_tuning())))
                .collect(),
        );
    }

    println!("# Fig. 5(a) — access time (bytes) vs data availability (Nr = {nr})\n");
    print!("{}", at.render());

    // Analytical overlay (extension models; the paper's Fig. 5 is purely
    // empirical). Hashing uses the realized layout statistics.
    let hash_sys = bda_hash::HashScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let mut ma = Table::new(&headers);
    let mut mt = Table::new(&headers);
    for &pct in &AVAILABILITY {
        let a = f64::from(pct) / 100.0;
        let models = [
            model::flat(&params, nr, a),
            model::one_m(&params, nr, None, a),
            model::distributed(&params, nr, None, a),
            model::hash(&params, nr, hash_sys.na(), hash_sys.num_collisions(), a),
            model::signature(&params, &SigParams::default(), 4, nr, a),
        ];
        ma.row(
            std::iter::once(pct.to_string())
                .chain(models.iter().map(|m| format!("{:.0}", m.access)))
                .collect(),
        );
        mt.row(
            std::iter::once(pct.to_string())
                .chain(models.iter().map(|m| format!("{:.0}", m.tuning)))
                .collect(),
        );
    }
    println!("\n  analytical (extension availability models):\n");
    print!("{}", ma.render());
    let _ = ma.write_csv("fig5a_access_vs_availability_analytical");
    println!(
        "\n# Fig. 5(b) — tuning time (bytes) vs data availability (Nr = {nr})\n  \
         (the paper omits flat broadcast here — \"much larger than all other schemes\")\n"
    );
    print!("{}", tt.render());
    println!("\n  analytical (extension availability models):\n");
    print!("{}", mt.render());
    let _ = at.write_csv("fig5a_access_vs_availability");
    let _ = tt.write_csv("fig5b_tuning_vs_availability");
    let _ = mt.write_csv("fig5b_tuning_vs_availability_analytical");
    println!("\n(csv: target/experiments/fig5a_access_vs_availability.csv, fig5b_tuning_vs_availability.csv)");
}
