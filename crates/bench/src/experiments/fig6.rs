//! Fig. 6 — access time and tuning time vs. record/key ratio (5–100) at
//! 100 % availability.
//!
//! The ratio is swept by shrinking the key while the record stays at 500
//! bytes (ratio 5 → 100-byte keys, ratio 100 → 5-byte keys), exactly the
//! §5.2 setup. B+-tree fanout, signature length and hashing control parts
//! all follow from [`bda_core::Params`], so the ratio's strong effect on
//! `(1,m)`/distributed — and weak effect on the others — emerges naturally.

use bda_core::Params;
use bda_datagen::DatasetBuilder;

use crate::sweep::{run_cells_with_progress, CellSpec};
use crate::table::Table;
use crate::{Cli, SchemeKind};

/// Number of broadcast records for the ratio sweep.
pub const NUM_RECORDS: usize = 10_000;

/// Record/key ratios swept on the x axis.
pub const RATIOS: [u32; 6] = [5, 10, 20, 25, 50, 100];

/// Run the Fig. 6 sweep and print both panels.
pub fn run(cli: &Cli) {
    let cfg = cli.sim_config();
    let nr = if cli.quick { 2_000 } else { NUM_RECORDS };
    let dataset = DatasetBuilder::new(nr, cli.seed).build().unwrap();

    let schemes = SchemeKind::PAPER;
    let specs: Vec<CellSpec> = RATIOS
        .iter()
        .flat_map(|&ratio| {
            let dataset = &dataset;
            let params = Params::with_record_key_ratio(ratio).unwrap();
            schemes.iter().map(move |&kind| CellSpec {
                kind,
                dataset,
                absent_pool: &[],
                params,
                availability: 1.0,
                config: cfg,
            })
        })
        .collect();
    cli.progress().emit(
        bda_obs::Severity::Progress,
        &format!("fig6: sweeping {} cells", specs.len()),
    );
    let reports = match run_cells_with_progress(&specs, cli.progress()) {
        Ok(reports) => reports,
        Err(err) => {
            cli.progress().emit(
                bda_obs::Severity::Error,
                &format!("fig6 sweep aborted: {err}"),
            );
            return;
        }
    };

    let headers: Vec<&str> = std::iter::once("record/key")
        .chain(schemes.iter().map(|s| s.name()))
        .collect();
    let mut at = Table::new(&headers);
    let mut tt = Table::new(&headers);
    for (i, &ratio) in RATIOS.iter().enumerate() {
        let row = &reports[i * schemes.len()..(i + 1) * schemes.len()];
        at.row(
            std::iter::once(ratio.to_string())
                .chain(row.iter().map(|r| format!("{:.0}", r.mean_access())))
                .collect(),
        );
        tt.row(
            std::iter::once(ratio.to_string())
                .chain(row.iter().map(|r| format!("{:.0}", r.mean_tuning())))
                .collect(),
        );
    }

    println!("# Fig. 6(a) — access time (bytes) vs record/key ratio (Nr = {nr})\n");
    print!("{}", at.render());
    println!(
        "\n# Fig. 6(b) — tuning time (bytes) vs record/key ratio (Nr = {nr})\n  \
         (the paper omits flat broadcast here)\n"
    );
    print!("{}", tt.render());
    let _ = at.write_csv("fig6a_access_vs_ratio");
    let _ = tt.write_csv("fig6b_tuning_vs_ratio");
    println!("\n(csv: target/experiments/fig6a_access_vs_ratio.csv, fig6b_tuning_vs_ratio.csv)");
}
