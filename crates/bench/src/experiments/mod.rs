//! The experiments themselves, one module per paper artifact. Each exposes
//! `run(&Cli)`; the `src/bin/*` wrappers and the `all` binary call these.

pub mod ablations;
pub mod ext_disks;
pub mod ext_errors;
pub mod ext_hybrid;
pub mod ext_multichannel;
pub mod ext_phases;
pub mod ext_tails;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
