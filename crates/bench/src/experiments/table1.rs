//! Table 1 — simulation settings.

use bda_core::Params;

use crate::table::Table;
use crate::Cli;

/// Print the reproduction's counterpart of Table 1.
pub fn run(cli: &Cli) {
    let params = Params::paper();
    let cfg = cli.sim_config();
    let mut t = Table::new(&["setting", "paper", "this reproduction"]);
    t.row(vec![
        "data type".into(),
        "text (dictionary)".into(),
        "synthetic dictionary (bda-datagen)".into(),
    ]);
    t.row(vec![
        "number of records".into(),
        "7000-34000".into(),
        "7000-34000 (fig4 sweep)".into(),
    ]);
    t.row(vec![
        "record size".into(),
        "500 bytes".into(),
        format!("{} bytes", params.record_size),
    ]);
    t.row(vec![
        "key size".into(),
        "25 bytes".into(),
        format!("{} bytes", params.key_size),
    ]);
    t.row(vec![
        "number of requests".into(),
        "> 50000".into(),
        "accuracy-controlled (see below)".into(),
    ]);
    t.row(vec![
        "confidence level".into(),
        "0.99".into(),
        format!("{}", cfg.confidence),
    ]);
    t.row(vec![
        "confidence accuracy".into(),
        "0.01".into(),
        format!("{}", cfg.accuracy),
    ]);
    t.row(vec![
        "request interval".into(),
        "exponential distribution".into(),
        format!("exponential, mean {} bytes", cfg.mean_interarrival),
    ]);
    t.row(vec![
        "requests per round".into(),
        "500".into(),
        format!("{}", cfg.round_requests),
    ]);
    println!("# Table 1 — simulation settings\n");
    print!("{}", t.render());
    if let Ok(path) = t.write_csv("table1") {
        println!("\n(csv: {})", path.display());
    }
}
