//! The golden conformance corpus.
//!
//! Driver-vs-driver equivalence (slab ≡ reference ≡ walker ≡ sharded)
//! proves the execution engines agree with *each other* — but a refactor
//! that changed every driver identically would still pass. The golden
//! corpus closes that hole: for one fixed dataset, workload and seed, the
//! exact per-request `(access, tuning, outcome)` triple of every scheme
//! is frozen into `tests/golden/*.tsv`, and the conformance test diffs
//! live runs against the checked-in bytes.
//!
//! The corpus is produced by `cargo run -p bda-bench --bin gen_golden`,
//! which overwrites `tests/golden/` from the same [`corpus`] function the
//! test replays — regenerate (and review the diff!) only when an
//! intentional protocol change moves the numbers.

use std::fmt::Write as _;

use bda_core::{
    BurstModel, ChannelModel, ErrorModel, Key, OutageSchedule, Params, RetryPolicy, Ticks,
};
use bda_datagen::{DatasetBuilder, Popularity, QueryWorkload};
use bda_sim::{run_requests_channel, run_requests_with_faults, CompletedRequest};

use crate::SchemeKind;

/// Dataset size of the pinned corpus (small enough that the files stay
/// reviewable, large enough that every scheme's index has real depth).
const RECORDS: usize = 64;
/// Dataset/workload seed of the pinned corpus.
const SEED: u64 = 0x601D;
/// Requests per scheme per variant.
const REQUESTS: usize = 64;
/// Loss probability of the corpus's error-prone variant.
const LOSS: f64 = 0.15;
/// Stratification depth of the broadcast-disk corpus files.
const DISK_DISKS: usize = 3;
/// Zipf skew of the broadcast-disk corpus workload.
const DISK_THETA: f64 = 0.8;
/// The two schemes pinned in their stratified form: one interleaved scan
/// layout and one chunked-navigation wrapper.
const DISK_KINDS: [SchemeKind; 2] = [SchemeKind::Flat, SchemeKind::Hashing];

/// The two schemes pinned under the bursty-channel variants: one pointer
/// chaser (whose index hops amplify burst damage) and one scan layout.
const BURST_KINDS: [SchemeKind; 2] = [SchemeKind::Distributed, SchemeKind::Signature];

/// The two schemes pinned in their striped multichannel form: one scan
/// layout and one hash layout.
const MULTI_KINDS: [SchemeKind; 2] = [SchemeKind::Flat, SchemeKind::Hashing];
/// Channel count of the multichannel corpus files.
const MC_CHANNELS: u32 = 4;
/// Tune-switch cost (ticks) of the multichannel corpus files.
const MC_SWITCH: Ticks = 256;

/// The two channel variants every scheme is pinned under.
fn variants() -> [(&'static str, ErrorModel, RetryPolicy); 2] {
    [
        ("lossless", ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (
            "lossy15",
            ErrorModel::new(LOSS, SEED ^ 0xFA57),
            RetryPolicy::bounded(2),
        ),
    ]
}

/// The bursty-channel variants [`BURST_KINDS`] are additionally pinned
/// under: a Gilbert–Elliott chain (~17 % stationary loss), alone and with
/// 10 % scheduled outage windows, driven by the resynchronization policy
/// (exponential back-off, seeded jitter).
fn burst_variants() -> [(&'static str, ChannelModel, RetryPolicy); 2] {
    let burst = BurstModel::new(0.04, 0.20, 0.0, 0.9, SEED ^ 0xB57);
    let policy = RetryPolicy::bounded(24)
        .with_backoff_cap(8)
        .with_jitter(SEED ^ 0x117);
    [
        ("burst", ChannelModel::burst(burst), policy),
        (
            "burst_outage",
            ChannelModel::burst(burst).with_outages(OutageSchedule::new(3_000, 300, SEED ^ 0x0A7)),
            policy,
        ),
    ]
}

/// Scheme name → filesystem-safe stem (`(1,m)` → `_1_m_`).
fn file_stem(scheme: &str) -> String {
    scheme
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The corpus's fixed request mix: arrivals scattered over 16 cycles by a
/// Weyl sequence, every sixth key drawn from the absent pool.
fn requests(ds: &bda_core::Dataset, pool: &[Key], span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..REQUESTS)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// The broadcast-disk corpus's request mix: the same Weyl-sequence
/// arrivals, keys drawn from a Zipf(`DISK_THETA`) workload at 90 % data
/// availability so absent keys exercise the disk routing too.
fn disk_requests(ds: &bda_core::Dataset, pool: &[Key], span: Ticks) -> Vec<(Ticks, Key)> {
    let mut w = QueryWorkload::new(
        ds,
        pool.to_vec(),
        0.9,
        Popularity::Zipf(DISK_THETA),
        SEED ^ 0xD15C,
    );
    (0..REQUESTS)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            (t % span.max(1), w.next_key())
        })
        .collect()
}

/// Render one corpus file: header comments, column line, one row per
/// completed request.
fn render(scheme_line: &str, completed: &[CompletedRequest]) -> String {
    let mut tsv = String::new();
    let _ = writeln!(tsv, "# golden conformance corpus — {scheme_line}");
    let _ = writeln!(
        tsv,
        "# regenerate: cargo run -p bda-bench --bin gen_golden (review the diff!)"
    );
    tsv.push_str(
        "idx\tarrival\tkey\tfound\taccess\ttuning\tprobes\tfalse_drops\tretries\tabandoned\taborted\tstale_restarts\tversion_skews\n",
    );
    for (i, r) in completed.iter().enumerate() {
        let o = &r.outcome;
        let _ = writeln!(
            tsv,
            "{i}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.arrival,
            r.key,
            u8::from(o.found),
            o.access,
            o.tuning,
            o.probes,
            o.false_drops,
            o.retries,
            u8::from(o.abandoned),
            u8::from(o.aborted),
            o.stale_restarts,
            o.version_skews,
        );
    }
    tsv
}

/// Generate the whole corpus: one `(file name, TSV contents)` pair per
/// scheme per channel variant, deterministically.
pub fn corpus() -> Vec<(String, String)> {
    let (ds, pool) = DatasetBuilder::new(RECORDS, SEED)
        .build_with_absent_pool(8)
        .expect("corpus dataset");
    let params = Params::paper();
    let mut files = Vec::new();
    for kind in SchemeKind::ALL {
        let system = kind.build(&ds, &params).expect("corpus scheme build");
        let reqs = requests(&ds, &pool, 16 * system.cycle_len());
        for (variant, errors, policy) in variants() {
            let completed = run_requests_with_faults(system.as_ref(), &reqs, errors, policy);
            let header = format!(
                "scheme={} variant={variant} records={RECORDS} seed={SEED:#x}",
                kind.name()
            );
            files.push((
                format!("{}_{variant}.tsv", file_stem(kind.name())),
                render(&header, &completed),
            ));
        }
    }
    // Broadcast-disk extension: two schemes pinned in their stratified form
    // under a skewed workload, so the disk constructor's occurrence
    // interleaving, index routing and repetition accounting are frozen
    // alongside the flat-cycle programs.
    for kind in DISK_KINDS {
        let system = kind
            .build_disks(&ds, &params, DISK_DISKS)
            .expect("disk-capable corpus kind")
            .expect("corpus disk build");
        let reqs = disk_requests(&ds, &pool, 8 * system.cycle_len());
        for (variant, errors, policy) in variants() {
            let completed = run_requests_with_faults(system.as_ref(), &reqs, errors, policy);
            let header = format!(
                "scheme={} disks={DISK_DISKS} theta={DISK_THETA} variant={variant} records={RECORDS} seed={SEED:#x}",
                kind.name()
            );
            files.push((
                format!(
                    "{}_disks{DISK_DISKS}_zipf08_{variant}.tsv",
                    file_stem(kind.name())
                ),
                render(&header, &completed),
            ));
        }
    }
    // Bursty-channel extension: the Gilbert–Elliott chain and the outage
    // schedule are pure functions of (bucket instant, seed), so these
    // files freeze the skip-ahead state resolution, the outage jitter
    // placement and the exponential-back-off resynchronization exactly.
    for kind in BURST_KINDS {
        let system = kind.build(&ds, &params).expect("corpus scheme build");
        let reqs = requests(&ds, &pool, 16 * system.cycle_len());
        for (variant, channel, policy) in burst_variants() {
            let completed = run_requests_channel(system.as_ref(), &reqs, channel, policy);
            let header = format!(
                "scheme={} variant={variant} records={RECORDS} seed={SEED:#x}",
                kind.name()
            );
            files.push((
                format!("{}_{variant}.tsv", file_stem(kind.name())),
                render(&header, &completed),
            ));
        }
    }
    // Multichannel extension: two schemes pinned striped over four
    // channels at equal aggregate bandwidth, so the routing directory,
    // the per-channel fault-seed remix and the tune-switch accounting
    // are frozen alongside the single-channel programs.
    for kind in MULTI_KINDS {
        let config = bda_core::GroupConfig::new(MC_CHANNELS, MC_SWITCH).expect("corpus group");
        let system = kind
            .build_multichannel(&ds, &params, config, None)
            .expect("corpus multichannel build");
        let reqs = requests(&ds, &pool, 16 * system.cycle_len());
        for (variant, errors, policy) in variants() {
            let completed = run_requests_with_faults(system.as_ref(), &reqs, errors, policy);
            let header = format!(
                "scheme={} channels={MC_CHANNELS} switch_cost={MC_SWITCH} variant={variant} records={RECORDS} seed={SEED:#x}",
                kind.name()
            );
            files.push((
                format!("{}_mc{MC_CHANNELS}_{variant}.tsv", file_stem(kind.name())),
                render(&header, &completed),
            ));
        }
    }
    files
}

/// The checked-in corpus directory, resolved from this crate's manifest
/// (`tests/golden/` at the repo root).
pub fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_complete() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a, b, "two generations must be byte-identical");
        // 8 schemes × 2 variants, plus 2 broadcast-disk schemes × 2,
        // plus 2 bursty-channel schemes × 2, plus 2 multichannel × 2.
        assert_eq!(
            a.len(),
            (SchemeKind::ALL.len() + DISK_KINDS.len() + BURST_KINDS.len() + MULTI_KINDS.len()) * 2
        );
        for (name, tsv) in &a {
            assert!(name.ends_with(".tsv"));
            // Header comments + column line + one row per request.
            assert_eq!(tsv.lines().count(), 3 + REQUESTS, "{name}");
            assert!(!tsv.contains("\taborted=1"), "{name}");
        }
    }

    /// `K = 1` identity over the frozen corpus: wrapping every scheme in
    /// a one-channel group (non-zero switch cost included — a lone home
    /// channel never retunes) and replaying the exact corpus requests
    /// must reproduce the single-channel TSVs byte for byte — the
    /// lossless and lossy files for all eight schemes, and the bursty
    /// files for the burst-pinned kinds. This pins the acceptance claim
    /// that a one-channel group is the single-channel program, not
    /// merely close to it.
    #[test]
    fn k1_groups_replay_the_single_channel_corpus_bit_identically() {
        let by_name: std::collections::BTreeMap<String, String> = corpus().into_iter().collect();
        let (ds, pool) = DatasetBuilder::new(RECORDS, SEED)
            .build_with_absent_pool(8)
            .expect("corpus dataset");
        let params = Params::paper();
        let config = bda_core::GroupConfig::new(1, MC_SWITCH).expect("K=1 group");
        let mut checked = 0usize;
        for kind in SchemeKind::ALL {
            let system = kind
                .build_multichannel(&ds, &params, config, None)
                .expect("K=1 multichannel build");
            let reqs = requests(&ds, &pool, 16 * system.cycle_len());
            for (variant, errors, policy) in variants() {
                let completed = run_requests_with_faults(system.as_ref(), &reqs, errors, policy);
                let header = format!(
                    "scheme={} variant={variant} records={RECORDS} seed={SEED:#x}",
                    kind.name()
                );
                let name = format!("{}_{variant}.tsv", file_stem(kind.name()));
                assert_eq!(
                    &render(&header, &completed),
                    &by_name[&name],
                    "{name}: K=1 group diverged from the single-channel program"
                );
                checked += 1;
            }
        }
        for kind in BURST_KINDS {
            let system = kind
                .build_multichannel(&ds, &params, config, None)
                .expect("K=1 multichannel build");
            let reqs = requests(&ds, &pool, 16 * system.cycle_len());
            for (variant, channel, policy) in burst_variants() {
                let completed = run_requests_channel(system.as_ref(), &reqs, channel, policy);
                let header = format!(
                    "scheme={} variant={variant} records={RECORDS} seed={SEED:#x}",
                    kind.name()
                );
                let name = format!("{}_{variant}.tsv", file_stem(kind.name()));
                assert_eq!(
                    &render(&header, &completed),
                    &by_name[&name],
                    "{name}: K=1 group diverged from the single-channel program"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, (SchemeKind::ALL.len() + BURST_KINDS.len()) * 2);
    }

    #[test]
    fn lossy_variant_actually_differs() {
        let files = corpus();
        for pair in files.chunks(2) {
            let (clean, lossy) = (&pair[0], &pair[1]);
            assert_ne!(
                clean.1, lossy.1,
                "15% loss must perturb at least one request ({} vs {})",
                clean.0, lossy.0
            );
        }
    }
}
