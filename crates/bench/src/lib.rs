//! # bda-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation, plus ablation
//! studies for the design knobs DESIGN.md calls out. Each binary prints an
//! aligned table (the same rows/series the paper plots) and writes a CSV
//! under `target/experiments/` for external plotting.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 (simulation settings) |
//! | `fig4` | Fig. 4(a)+(b): access/tuning vs number of records, simulated and analytical |
//! | `fig5` | Fig. 5(a)+(b): access/tuning vs data availability |
//! | `fig6` | Fig. 6(a)+(b): access/tuning vs record/key ratio |
//! | `ablation_r` | distributed indexing: replicated levels `r` sweep |
//! | `ablation_m` | `(1,m)` indexing: `m` sweep |
//! | `ablation_siglen` | signature length vs access/tuning tradeoff |
//! | `ablation_hash` | hash-function quality and load factor |
//! | `ext_errors` | extension: error-prone channel degradation |
//! | `ext_disks` | extension: broadcast-disk stratification vs workload skew |
//! | `ext_hybrid` | extension: hybrid tree+signature vs its parents |
//! | `ext_tails` | extension: p50/p95/p99 access-time tails |
//! | `ext_phases` | extension: tuning time attributed to walk phases |
//! | `all` | everything above, in sequence |
//!
//! Every binary accepts `--quick` (looser confidence/accuracy; an order of
//! magnitude faster), `--seed <n>`, and `--quiet` (suppress progress
//! narration on stderr; errors still print, tables still go to stdout).

pub mod experiments;
pub mod golden;
pub mod schemes;
pub mod sweep;
pub mod table;

use bda_obs::{NullProgress, ProgressSink, QuietProgress, StderrProgress};

pub use schemes::{build_indexed_group, SchemeKind};
pub use sweep::{run_cell, run_cells, run_cells_with_progress, CellError, CellSpec};
pub use table::Table;

/// Parse the common CLI flags every experiment binary supports.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Use the quick (loose-accuracy) simulation settings.
    pub quick: bool,
    /// Workload seed.
    pub seed: u64,
    /// Drive cells through the discrete-event engine (concurrent clients)
    /// instead of the direct walker, where the experiment supports it
    /// (`ext_errors`).
    pub engine: bool,
    /// Dynamic broadcast: percent of records updated per cycle
    /// (`ext_errors`; 0 = frozen program).
    pub update_pct: u32,
    /// Suppress progress narration on stderr (errors still print).
    pub quiet: bool,
}

impl Cli {
    /// Parse from `std::env::args`.
    pub fn parse() -> Cli {
        let mut quick = false;
        let mut seed = 0x0EDB_2002u64;
        let mut engine = false;
        let mut update_pct = 0u32;
        let mut quiet = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--engine" => engine = true,
                "--quiet" => quiet = true,
                "--seed" => {
                    seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    });
                }
                "--updates" => {
                    update_pct = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--updates requires an integer percent");
                        std::process::exit(2);
                    });
                    if update_pct > 100 {
                        eprintln!("--updates must be 0..=100");
                        std::process::exit(2);
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --quick      loose accuracy, fast\n       --seed N     workload seed\n       --engine     event-engine-backed cells (ext_errors)\n       --updates P  percent of records updated per cycle (ext_errors)\n       --quiet      no progress narration on stderr (errors still print)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        Cli {
            quick,
            seed,
            engine,
            update_pct,
            quiet,
        }
    }

    /// The progress sink these flags select: everything to stderr by
    /// default, errors only under `--quiet`. Tables always go to stdout —
    /// the sink carries narration, never results.
    pub fn progress(&self) -> &'static dyn ProgressSink {
        if self.quiet {
            &QuietProgress
        } else {
            &StderrProgress
        }
    }

    /// A sink that drops everything (for tests and embedding).
    pub fn null_progress() -> &'static dyn ProgressSink {
        &NullProgress
    }

    /// The dynamic-broadcast update stream these flags select (`None` =
    /// frozen program).
    pub fn update_spec(&self) -> Option<bda_sim::UpdateSpec> {
        (self.update_pct > 0).then(|| bda_sim::UpdateSpec {
            rate: f64::from(self.update_pct) / 100.0,
            seed: self.seed ^ 0x0DD,
            horizon_cycles: 64,
        })
    }

    /// The simulation settings these flags select.
    pub fn sim_config(&self) -> bda_sim::SimConfig {
        let mut cfg = if self.quick {
            bda_sim::SimConfig::quick()
        } else {
            // Paper-grade confidence (0.99) with a pragmatic 2 % accuracy
            // target so the full suite completes in minutes; the paper's
            // 1 % remains available programmatically.
            let mut c = bda_sim::SimConfig::paper();
            c.accuracy = 0.02;
            c
        };
        cfg.seed = self.seed;
        // Sweeps use the direct walker (statistically identical to the
        // event engine; see the drivers_equiv integration test).
        cfg.event_driven = false;
        cfg
    }
}
