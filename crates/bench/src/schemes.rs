//! Uniform construction of every access method under test.

use bda_btree::{DistributedScheme, OneMScheme};
use bda_core::{
    Dataset, DiskConfig, DiskScheme, DynSystem, FlatDisksScheme, GroupConfig, IndexedGroupScheme,
    Params, Result, Scheme, StripedScheme, System,
};
use bda_hash::HashScheme;
use bda_hybrid::HybridScheme;
use bda_signature::{
    IntegratedSignatureScheme, MultiLevelSignatureScheme, SimpleSignatureDisksScheme,
    SimpleSignatureScheme,
};
use bda_sim::{StripedVersionedServer, UpdateSpec, VersionedServer};

/// The access methods the paper evaluates, plus the two signature
/// extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Plain broadcast, no index.
    Flat,
    /// `(1,m)` indexing at the optimal `m`.
    OneM,
    /// Distributed indexing at the optimal `r`.
    Distributed,
    /// Simple hashing (well-mixed hash, load factor 1).
    Hashing,
    /// Simple signature indexing.
    Signature,
    /// Integrated signatures (extension).
    IntegratedSignature,
    /// Multi-level signatures (extension).
    MultiLevelSignature,
    /// Hybrid index tree + signatures (extension; key queries only here —
    /// attribute queries are exercised by the `ext_hybrid` bench).
    Hybrid,
}

impl SchemeKind {
    /// The five schemes the paper compares (Figs. 4–6).
    pub const PAPER: [SchemeKind; 5] = [
        SchemeKind::Flat,
        SchemeKind::OneM,
        SchemeKind::Distributed,
        SchemeKind::Hashing,
        SchemeKind::Signature,
    ];

    /// Everything, extensions included.
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::Flat,
        SchemeKind::OneM,
        SchemeKind::Distributed,
        SchemeKind::Hashing,
        SchemeKind::Signature,
        SchemeKind::IntegratedSignature,
        SchemeKind::MultiLevelSignature,
        SchemeKind::Hybrid,
    ];

    /// Display name (matches the systems' `scheme_name`).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Flat => "flat",
            SchemeKind::OneM => "(1,m)",
            SchemeKind::Distributed => "distributed",
            SchemeKind::Hashing => "hashing",
            SchemeKind::Signature => "signature",
            SchemeKind::IntegratedSignature => "integrated-signature",
            SchemeKind::MultiLevelSignature => "multilevel-signature",
            SchemeKind::Hybrid => "hybrid",
        }
    }

    /// Build the broadcast system for `dataset` under `params`.
    pub fn build(&self, dataset: &Dataset, params: &Params) -> Result<Box<dyn DynSystem>> {
        Ok(match self {
            SchemeKind::Flat => Box::new(bda_core::FlatScheme.build(dataset, params)?),
            SchemeKind::OneM => Box::new(OneMScheme::new().build(dataset, params)?),
            SchemeKind::Distributed => Box::new(DistributedScheme::new().build(dataset, params)?),
            SchemeKind::Hashing => Box::new(HashScheme::new().build(dataset, params)?),
            SchemeKind::Signature => Box::new(SimpleSignatureScheme::new().build(dataset, params)?),
            SchemeKind::IntegratedSignature => {
                Box::new(IntegratedSignatureScheme::default().build(dataset, params)?)
            }
            SchemeKind::MultiLevelSignature => {
                Box::new(MultiLevelSignatureScheme::default().build(dataset, params)?)
            }
            SchemeKind::Hybrid => Box::new(HybridScheme::new().build(dataset, params)?),
        })
    }

    /// The kinds with a broadcast-disk (stratified) construction: the two
    /// interleaved scan layouts plus the chunked-navigation wrapper around
    /// hashing and distributed indexing.
    pub const DISK_CAPABLE: [SchemeKind; 4] = [
        SchemeKind::Flat,
        SchemeKind::Signature,
        SchemeKind::Hashing,
        SchemeKind::Distributed,
    ];

    /// Build the stratified broadcast-disk variant of this scheme at
    /// `disks` relative-speed disks. `D = 1` is bit-identical to the flat
    /// cycle [`SchemeKind::build`] produces. Returns `None` for kinds
    /// without a disk construction.
    pub fn build_disks(
        &self,
        dataset: &Dataset,
        params: &Params,
        disks: usize,
    ) -> Option<Result<Box<dyn DynSystem>>> {
        fn boxed<S: System + 'static>(r: Result<S>) -> Result<Box<dyn DynSystem>>
        where
            S::Machine: 'static,
        {
            r.map(|s| Box::new(s) as Box<dyn DynSystem>)
        }
        let d = DiskConfig::new(disks);
        Some(match self {
            SchemeKind::Flat => boxed(FlatDisksScheme::new(d).build(dataset, params)),
            SchemeKind::Signature => {
                boxed(SimpleSignatureDisksScheme::new(d).build(dataset, params))
            }
            SchemeKind::Hashing => {
                boxed(DiskScheme::new(HashScheme::new(), d).build(dataset, params))
            }
            SchemeKind::Distributed => {
                boxed(DiskScheme::new(DistributedScheme::new(), d).build(dataset, params))
            }
            _ => return None,
        })
    }

    /// Build a **dynamic** broadcast server for this scheme: the program
    /// is rebuilt (with a bumped cycle version) after every cycle the
    /// update stream mutates the dataset. With `spec.rate == 0` the result
    /// is bit-identical to [`SchemeKind::build`].
    pub fn build_versioned(
        &self,
        dataset: &Dataset,
        params: &Params,
        spec: UpdateSpec,
    ) -> Result<Box<dyn DynSystem>> {
        fn v<Sch: Scheme>(
            scheme: Sch,
            ds: &Dataset,
            p: &Params,
            spec: UpdateSpec,
        ) -> Result<Box<dyn DynSystem>>
        where
            Sch::System: 'static,
            <Sch::System as System>::Machine: 'static,
        {
            Ok(Box::new(VersionedServer::build(&scheme, ds, p, spec)?))
        }
        match self {
            SchemeKind::Flat => v(bda_core::FlatScheme, dataset, params, spec),
            SchemeKind::OneM => v(OneMScheme::new(), dataset, params, spec),
            SchemeKind::Distributed => v(DistributedScheme::new(), dataset, params, spec),
            SchemeKind::Hashing => v(HashScheme::new(), dataset, params, spec),
            SchemeKind::Signature => v(SimpleSignatureScheme::new(), dataset, params, spec),
            SchemeKind::IntegratedSignature => {
                v(IntegratedSignatureScheme::default(), dataset, params, spec)
            }
            SchemeKind::MultiLevelSignature => {
                v(MultiLevelSignatureScheme::default(), dataset, params, spec)
            }
            SchemeKind::Hybrid => v(HybridScheme::new(), dataset, params, spec),
        }
    }
    /// The kinds the multichannel conformance sweeps exercise: one scan
    /// layout, one hash layout and one signature layout. Every kind
    /// *builds* striped ([`StripedScheme`] is generic over the inner
    /// scheme); these three are the representative subset the golden
    /// corpus, the equivalence wall and the `ext_multichannel` sweep pin.
    pub const MULTI_CAPABLE: [SchemeKind; 3] =
        [SchemeKind::Flat, SchemeKind::Hashing, SchemeKind::Signature];

    /// Build the striped multichannel variant of this scheme: the dataset
    /// is split into `config.channels` contiguous slices (even, or the
    /// given allocator `partition`), each broadcast as a self-contained
    /// inner program on its own channel at equal aggregate bandwidth.
    /// `K = 1` is bit-identical to [`SchemeKind::build`].
    pub fn build_multichannel(
        &self,
        dataset: &Dataset,
        params: &Params,
        config: GroupConfig,
        partition: Option<Vec<usize>>,
    ) -> Result<Box<dyn DynSystem>> {
        fn s<Sch: Scheme>(
            scheme: Sch,
            ds: &Dataset,
            p: &Params,
            config: GroupConfig,
            partition: Option<Vec<usize>>,
        ) -> Result<Box<dyn DynSystem>>
        where
            Sch::System: 'static,
            <Sch::System as System>::Machine: 'static,
        {
            let striped = match partition {
                Some(sizes) => StripedScheme::with_partition(scheme, config, sizes),
                None => StripedScheme::new(scheme, config),
            };
            Ok(Box::new(striped.build(ds, p)?))
        }
        match self {
            SchemeKind::Flat => s(bda_core::FlatScheme, dataset, params, config, partition),
            SchemeKind::OneM => s(OneMScheme::new(), dataset, params, config, partition),
            SchemeKind::Distributed => {
                s(DistributedScheme::new(), dataset, params, config, partition)
            }
            SchemeKind::Hashing => s(HashScheme::new(), dataset, params, config, partition),
            SchemeKind::Signature => s(
                SimpleSignatureScheme::new(),
                dataset,
                params,
                config,
                partition,
            ),
            SchemeKind::IntegratedSignature => s(
                IntegratedSignatureScheme::default(),
                dataset,
                params,
                config,
                partition,
            ),
            SchemeKind::MultiLevelSignature => s(
                MultiLevelSignatureScheme::default(),
                dataset,
                params,
                config,
                partition,
            ),
            SchemeKind::Hybrid => s(HybridScheme::new(), dataset, params, config, partition),
        }
    }

    /// Build the striped multichannel variant as a **dynamic** group: one
    /// versioned server per channel, churn streams decorrelated per
    /// channel. `spec.rate == 0` is bit-identical to the frozen group.
    pub fn build_multichannel_versioned(
        &self,
        dataset: &Dataset,
        params: &Params,
        config: GroupConfig,
        spec: UpdateSpec,
    ) -> Result<Box<dyn DynSystem>> {
        fn s<Sch: Scheme>(
            scheme: Sch,
            ds: &Dataset,
            p: &Params,
            config: GroupConfig,
            spec: UpdateSpec,
        ) -> Result<Box<dyn DynSystem>>
        where
            Sch::System: 'static,
            <Sch::System as System>::Machine: 'static,
        {
            Ok(Box::new(StripedVersionedServer::build(
                &scheme, ds, p, config, spec,
            )?))
        }
        match self {
            SchemeKind::Flat => s(bda_core::FlatScheme, dataset, params, config, spec),
            SchemeKind::OneM => s(OneMScheme::new(), dataset, params, config, spec),
            SchemeKind::Distributed => s(DistributedScheme::new(), dataset, params, config, spec),
            SchemeKind::Hashing => s(HashScheme::new(), dataset, params, config, spec),
            SchemeKind::Signature => s(SimpleSignatureScheme::new(), dataset, params, config, spec),
            SchemeKind::IntegratedSignature => s(
                IntegratedSignatureScheme::default(),
                dataset,
                params,
                config,
                spec,
            ),
            SchemeKind::MultiLevelSignature => s(
                MultiLevelSignatureScheme::default(),
                dataset,
                params,
                config,
                spec,
            ),
            SchemeKind::Hybrid => s(HybridScheme::new(), dataset, params, config, spec),
        }
    }
}

/// Build the cross-channel **indexed group**: the index (roots +
/// directory) cycles on channel 0 and points at data buckets striped over
/// channels `1..K` via `(channel, offset)` bucket references. Not a
/// [`SchemeKind`] variant — the layout is its own scheme, with an
/// optional allocator `placement` (one `(channel, slot)` per record).
pub fn build_indexed_group(
    dataset: &Dataset,
    params: &Params,
    config: GroupConfig,
    placement: Option<Vec<(u32, u32)>>,
) -> Result<Box<dyn DynSystem>> {
    let scheme = match placement {
        Some(p) => IndexedGroupScheme::with_placement(config, p),
        None => IndexedGroupScheme::new(config),
    };
    Ok(Box::new(scheme?.build(dataset, params)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_datagen::DatasetBuilder;

    #[test]
    fn every_kind_builds_and_answers() {
        let ds = DatasetBuilder::new(120, 3).build().unwrap();
        let params = Params::paper();
        for kind in SchemeKind::ALL {
            let sys = kind.build(&ds, &params).unwrap();
            assert_eq!(sys.scheme_name(), kind.name());
            let key = ds.record(17).key;
            let out = sys.probe(key, 999);
            assert!(out.found, "{}", kind.name());
            assert!(!out.aborted);
        }
    }

    #[test]
    fn disk_capable_kinds_build_stratified_and_answer() {
        let ds = DatasetBuilder::new(120, 3).build().unwrap();
        let params = Params::paper();
        for kind in SchemeKind::ALL {
            let built = kind.build_disks(&ds, &params, 3);
            if !SchemeKind::DISK_CAPABLE.contains(&kind) {
                assert!(built.is_none(), "{}", kind.name());
                continue;
            }
            let sys = built.expect("disk-capable").unwrap();
            assert_eq!(sys.scheme_name(), kind.name());
            let out = sys.probe(ds.record(17).key, 999);
            assert!(out.found, "{}", kind.name());
            assert!(!out.aborted);
        }
    }

    #[test]
    fn every_kind_builds_versioned_and_stays_truthful() {
        let ds = DatasetBuilder::new(80, 3).build().unwrap();
        let params = Params::paper();
        let spec = UpdateSpec {
            rate: 0.10,
            seed: 17,
            horizon_cycles: 8,
        };
        for kind in SchemeKind::ALL {
            let sys = kind.build_versioned(&ds, &params, spec).unwrap();
            assert_eq!(sys.scheme_name(), kind.name());
            for i in [3usize, 40, 77] {
                let out = sys.probe(ds.record(i).key, 999);
                assert!(!out.aborted, "{}", kind.name());
            }
        }
    }
}
