//! Sweep execution: one simulated cell per (scheme, workload) point, run
//! in parallel across a sweep.

use bda_core::{Dataset, Key, Params};
use bda_datagen::{Popularity, QueryWorkload};
use bda_sim::{SimConfig, SimReport, Simulator};

use crate::schemes::SchemeKind;

/// One point of a sweep: which scheme, over which dataset, at which data
/// availability.
#[derive(Clone)]
pub struct CellSpec<'a> {
    /// Scheme under test.
    pub kind: SchemeKind,
    /// The broadcast dataset.
    pub dataset: &'a Dataset,
    /// Absent-key pool (may be empty iff `availability == 1.0`).
    pub absent_pool: &'a [Key],
    /// Broadcast parameters.
    pub params: Params,
    /// Probability a query's key is broadcast.
    pub availability: f64,
    /// Simulation settings.
    pub config: SimConfig,
}

/// Build the scheme's channel, run the simulation to the configured
/// accuracy, and return the report.
pub fn run_cell(spec: &CellSpec<'_>) -> SimReport {
    let system = spec
        .kind
        .build(spec.dataset, &spec.params)
        .expect("sweep cells use valid parameters");
    let workload = QueryWorkload::new(
        spec.dataset,
        spec.absent_pool.to_vec(),
        spec.availability,
        Popularity::Uniform,
        spec.config.seed ^ (spec.kind.name().len() as u64) << 17,
    );
    let mut sim = Simulator::new(system.as_ref(), workload, spec.config);
    let report = sim.run();
    assert_eq!(report.aborted, 0, "protocol bug in {}", spec.kind.name());
    report
}

/// Run every cell, using one worker thread per available core.
pub fn run_cells(specs: &[CellSpec<'_>]) -> Vec<SimReport> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(specs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<SimReport>> = vec![None; specs.len()];
    let slots: Vec<std::sync::Mutex<&mut Option<SimReport>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let report = run_cell(&specs[i]);
                **slots[i].lock().expect("slot lock") = Some(report);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all cells completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_datagen::DatasetBuilder;

    #[test]
    fn parallel_sweep_matches_sequential() {
        let (ds, pool) = DatasetBuilder::new(100, 5)
            .build_with_absent_pool(100)
            .unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.event_driven = false;
        let specs: Vec<CellSpec> = [SchemeKind::Flat, SchemeKind::Hashing]
            .iter()
            .map(|&kind| CellSpec {
                kind,
                dataset: &ds,
                absent_pool: &pool,
                params: Params::paper(),
                availability: 0.8,
                config: cfg,
            })
            .collect();
        let par = run_cells(&specs);
        let seq: Vec<_> = specs.iter().map(run_cell).collect();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.access, b.access);
            assert_eq!(a.requests, b.requests);
        }
    }
}
