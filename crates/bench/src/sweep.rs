//! Sweep execution: one simulated cell per (scheme, workload) point, run
//! in parallel across a sweep.
//!
//! Cell failures are **data, not panics**: a worker that hits a build
//! error, a protocol abort, or even a panic inside a simulator poisons
//! only its own cell, and [`run_cells`] reports which cell and scheme
//! failed instead of tearing down the whole sweep from a scoped thread.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use bda_core::{Dataset, Key, Params};
use bda_datagen::{Popularity, QueryWorkload};
use bda_obs::{NullProgress, ProgressSink, Severity};
use bda_sim::{SimConfig, SimReport, Simulator};

use crate::schemes::SchemeKind;

/// One point of a sweep: which scheme, over which dataset, at which data
/// availability.
#[derive(Clone)]
pub struct CellSpec<'a> {
    /// Scheme under test.
    pub kind: SchemeKind,
    /// The broadcast dataset.
    pub dataset: &'a Dataset,
    /// Absent-key pool (may be empty iff `availability == 1.0`).
    pub absent_pool: &'a [Key],
    /// Broadcast parameters.
    pub params: Params,
    /// Probability a query's key is broadcast.
    pub availability: f64,
    /// Simulation settings.
    pub config: SimConfig,
}

/// A failed sweep cell, identified well enough to reproduce it.
#[derive(Debug, Clone)]
pub struct CellError {
    /// Index into the spec slice given to [`run_cells`].
    pub cell: usize,
    /// Scheme of the failing cell.
    pub scheme: &'static str,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep cell {} ({}) failed: {}",
            self.cell, self.scheme, self.message
        )
    }
}

impl std::error::Error for CellError {}

/// Per-cell workload seed: the sweep-wide base seed mixed with an FNV-1a
/// hash of the full scheme name.
///
/// Request streams are deliberately **independent across schemes** — the
/// sweep relies on each cell simulating to the configured accuracy rather
/// than on paired (common-random-number) streams, and decorrelated
/// streams keep one scheme's pathological alignment from contaminating
/// its neighbours. Hashing the whole name guarantees that schemes whose
/// names merely share a length (e.g. `"flat"` and `"(1,m)"`, which an
/// earlier length-based mix mapped to identical streams) still draw
/// distinct workloads.
fn cell_seed(base: u64, scheme: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in scheme.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base ^ h
}

/// Build the scheme's channel, run the simulation to the configured
/// accuracy, and return the report — or a description of what failed
/// (invalid build parameters, or a protocol bug surfacing as aborted
/// requests).
pub fn run_cell(spec: &CellSpec<'_>) -> Result<SimReport, String> {
    let system = spec
        .kind
        .build(spec.dataset, &spec.params)
        .map_err(|e| format!("build failed: {e}"))?;
    let workload = QueryWorkload::new(
        spec.dataset,
        spec.absent_pool.to_vec(),
        spec.availability,
        Popularity::Uniform,
        cell_seed(spec.config.seed, spec.kind.name()),
    );
    let mut sim = Simulator::new(system.as_ref(), workload, spec.config);
    let report = sim.run();
    if report.aborted > 0 {
        return Err(format!(
            "{} of {} requests aborted (protocol bug)",
            report.aborted, report.requests
        ));
    }
    Ok(report)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".into()
    }
}

/// Run every cell, using one worker thread per available core.
///
/// Fails with the first (lowest-index) poisoned cell; all other cells
/// still run to completion, so a sweep retried after a fix does not churn.
pub fn run_cells(specs: &[CellSpec<'_>]) -> Result<Vec<SimReport>, CellError> {
    run_cells_with_progress(specs, &NullProgress)
}

/// [`run_cells`] narrating per-cell completion through a [`ProgressSink`]
/// (shared across the scoped worker threads; the sink is `Sync`). Cell
/// failures are additionally emitted at [`Severity::Error`] so they reach
/// a quiet sink too.
pub fn run_cells_with_progress(
    specs: &[CellSpec<'_>],
    progress: &dyn ProgressSink,
) -> Result<Vec<SimReport>, CellError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(specs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done = std::sync::atomic::AtomicUsize::new(0);
    let mut cells: Vec<Option<Result<SimReport, String>>> = vec![None; specs.len()];
    let slots: Vec<std::sync::Mutex<&mut Option<Result<SimReport, String>>>> =
        cells.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                // A panicking simulator poisons this cell, not the sweep.
                let outcome = catch_unwind(AssertUnwindSafe(|| run_cell(&specs[i])))
                    .unwrap_or_else(|payload| Err(panic_message(payload)));
                let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                match &outcome {
                    Ok(r) => progress.emit(
                        Severity::Progress,
                        &format!(
                            "cell {finished}/{} done: {} ({} requests, {} rounds)",
                            specs.len(),
                            specs[i].kind.name(),
                            r.requests,
                            r.rounds
                        ),
                    ),
                    Err(message) => progress.emit(
                        Severity::Error,
                        &format!(
                            "cell {}/{} failed: {}: {message}",
                            i + 1,
                            specs.len(),
                            specs[i].kind.name()
                        ),
                    ),
                }
                if let Ok(mut slot) = slots[i].lock() {
                    **slot = Some(outcome);
                }
            });
        }
    });
    let mut reports = Vec::with_capacity(specs.len());
    for (cell, outcome) in cells.into_iter().enumerate() {
        let scheme = specs[cell].kind.name();
        match outcome {
            Some(Ok(report)) => reports.push(report),
            Some(Err(message)) => {
                return Err(CellError {
                    cell,
                    scheme,
                    message,
                })
            }
            None => {
                return Err(CellError {
                    cell,
                    scheme,
                    message: "worker never completed the cell".into(),
                })
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_datagen::DatasetBuilder;

    fn two_round_config() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.event_driven = false;
        cfg
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let (ds, pool) = DatasetBuilder::new(100, 5)
            .build_with_absent_pool(100)
            .unwrap();
        let cfg = two_round_config();
        let specs: Vec<CellSpec> = [SchemeKind::Flat, SchemeKind::Hashing]
            .iter()
            .map(|&kind| CellSpec {
                kind,
                dataset: &ds,
                absent_pool: &pool,
                params: Params::paper(),
                availability: 0.8,
                config: cfg,
            })
            .collect();
        let par = run_cells(&specs).unwrap();
        let seq: Vec<_> = specs.iter().map(|s| run_cell(s).unwrap()).collect();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.access, b.access);
            assert_eq!(a.requests, b.requests);
        }
    }

    #[test]
    fn same_length_scheme_names_draw_distinct_workloads() {
        // "flat" and "(1,m)" share a name length; the old length-based
        // seed mix gave them byte-identical request streams.
        assert_ne!(cell_seed(42, "flat"), cell_seed(42, "(1,m)"));
        assert_ne!(cell_seed(42, "flat"), cell_seed(42, "hash"));
        // Deterministic: same (seed, scheme) is always the same stream.
        assert_eq!(cell_seed(42, "flat"), cell_seed(42, "flat"));
    }

    #[test]
    fn bad_cell_is_reported_not_propagated_as_panic() {
        let (ds, _pool) = DatasetBuilder::new(20, 5)
            .build_with_absent_pool(4)
            .unwrap();
        // key_size 0 fails scheme build validation.
        let bad = Params {
            record_size: 500,
            key_size: 0,
            ptr_size: 4,
            header_size: 8,
        };
        let mk = |kind, params| CellSpec {
            kind,
            dataset: &ds,
            absent_pool: &[],
            params,
            availability: 1.0,
            config: two_round_config(),
        };
        let specs = vec![
            mk(SchemeKind::Flat, Params::paper()),
            mk(SchemeKind::Hashing, bad),
        ];
        let err = run_cells(&specs).unwrap_err();
        assert_eq!(err.cell, 1);
        assert_eq!(err.scheme, "hashing");
        assert!(err.to_string().contains("hashing"), "{err}");
    }
}
