//! Result formatting: aligned console tables and CSV files.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align text.
                if c.parse::<f64>().is_ok() {
                    line.push_str(&format!("{c:>w$}"));
                } else {
                    line.push_str(&format!("{c:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (numeric columns
    /// right-aligned), for pasting into EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let numeric: Vec<bool> = (0..self.headers.len())
            .map(|c| !self.rows.is_empty() && self.rows.iter().all(|r| r[c].parse::<f64>().is_ok()))
            .collect();
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push('|');
        for n in &numeric {
            out.push_str(if *n { "--:|" } else { "---|" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV under `target/experiments/<name>.csv` (relative to the
    /// workspace root) and return the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// `target/experiments/` resolved against the cargo target dir if known.
pub fn experiments_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Path::new(&dir).join("experiments");
    }
    // Fall back to ./target/experiments relative to the workspace root (or
    // cwd when run elsewhere).
    let mut p = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if p.join("Cargo.toml").exists() {
            return p.join("target").join("experiments");
        }
        if !p.pop() {
            return PathBuf::from("target/experiments");
        }
    }
}

/// Format a byte count with thousands separators for readability.
pub fn fmt_bytes(v: f64) -> String {
    format!("{:.0}", v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["scheme", "At", "Tt"]);
        t.row(vec!["flat".into(), "123456".into(), "123456".into()]);
        t.row(vec!["hashing".into(), "99".into(), "7".into()]);
        t
    }

    #[test]
    fn render_is_aligned() {
        let r = sample().render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns right-aligned: the At cells end at the same column.
        let at_end_row1 = lines[2].find("123456").unwrap() + 6;
        let at_end_row2 = lines[3].find("99").unwrap() + 2;
        assert_eq!(at_end_row1, at_end_row2);
    }

    #[test]
    fn markdown_aligns_numeric_columns() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| scheme | At | Tt |");
        // First column is text, the other two numeric.
        assert_eq!(lines[1], "|---|--:|--:|");
        assert_eq!(lines[2], "| flat | 123456 | 123456 |");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(&["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
