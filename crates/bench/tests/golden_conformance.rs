//! Conformance against the frozen golden corpus.
//!
//! Replays the corpus generation (`bda_bench::golden::corpus`) and diffs
//! every scheme × channel-variant file against the bytes checked into
//! `tests/golden/`. Driver-equivalence suites prove the engines agree
//! with each other; this suite proves they agree with *history* — an
//! engine refactor that shifted any per-request access time, tuning
//! time, retry count or verdict fails here even if every driver shifted
//! identically.
//!
//! If a failure is an **intentional** protocol change, regenerate with
//! `cargo run -p bda-bench --bin gen_golden` and review the diff like any
//! other code change.

use bda_bench::golden;

#[test]
fn live_runs_match_checked_in_corpus() {
    let dir = golden::golden_dir();
    let files = golden::corpus();
    assert!(!files.is_empty());
    for (name, expected) in &files {
        let path = dir.join(name);
        let actual = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing corpus file {} ({e}) — run `cargo run -p bda-bench --bin gen_golden`",
                path.display()
            )
        });
        assert_eq!(
            &actual, expected,
            "{name}: live run diverged from the frozen corpus — if intentional, \
             regenerate with `cargo run -p bda-bench --bin gen_golden` and review the diff"
        );
    }
}

#[test]
fn corpus_directory_has_no_orphans() {
    let dir = golden::golden_dir();
    let known: std::collections::BTreeSet<String> =
        golden::corpus().into_iter().map(|(n, _)| n).collect();
    for entry in std::fs::read_dir(&dir).expect("tests/golden must exist") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            known.contains(&name),
            "orphan file tests/golden/{name} — not produced by gen_golden"
        );
    }
}
