//! Distributed indexing: replicated top levels, non-replicated subtrees,
//! control indexes.
//!
//! From Imielinski et al. (SIGMOD'94), §2.1 of the paper: the index tree is
//! split into a *replicated part* (the top `r` levels) and a
//! *non-replicated part* (the rest). "Every replicated index bucket is
//! broadcast before the first occurrence of each of its children. … Every
//! non-replicated index node is broadcast exactly once, preceding the data
//! segment containing the corresponding data records."
//!
//! The broadcast cycle therefore consists of one *(index segment, data
//! segment)* pair per node at level `r`: the index segment holds the chain
//! of replicated ancestors due at this position, followed by the preorder
//! of the level-`r` node's subtree; the data segment holds the records that
//! subtree covers. With the paper's Fig. 1 tree (fanout 3, replicated
//! levels `I` and `a*`), the segments are exactly the example's
//! `I a1 b1 c1 c2 c3 | data …`, `a1 b2 c4 c5 c6 | data …`, ….
//!
//! Clients that tune in at the "wrong" index segment recover via the
//! control index (see [`crate::payload::ControlEntry`]).

use bda_core::{Channel, Dataset, Key, Params, Result, Scheme, System};

use crate::layout::{materialize, Slot};
use crate::machine::BTreeMachine;
use crate::optimal::optimal_r_ragged;
use crate::payload::BTreePayload;
use crate::tree::IndexTree;

/// The distributed indexing scheme.
///
/// `r = None` (the default) selects the access-time-optimal number of
/// replicated levels, which is what the paper simulates ("we use the
/// optimal value of r as defined in \[6\]"); a fixed `r` can be forced for
/// ablation studies.
/// ```
/// use bda_btree::DistributedScheme;
/// use bda_core::{Dataset, DynSystem, Params, Record, Scheme};
///
/// let dataset = Dataset::new((0..100).map(|i| Record::keyed(i * 2)).collect()).unwrap();
/// let system = DistributedScheme::new().build(&dataset, &Params::paper()).unwrap();
/// let hit = system.probe(bda_core::Key(42), 123_456);
/// assert!(hit.found);
/// assert!(hit.tuning < hit.access); // the client dozed between probes
/// assert!(!system.probe(bda_core::Key(43), 123_456).found);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedScheme {
    r: Option<usize>,
}

impl DistributedScheme {
    /// Distributed indexing with the optimal `r`.
    pub fn new() -> Self {
        DistributedScheme { r: None }
    }

    /// Distributed indexing with a fixed number of replicated levels
    /// (clamped to `k − 1` at build time).
    pub fn with_r(r: usize) -> Self {
        DistributedScheme { r: Some(r) }
    }
}

/// A built distributed-indexing broadcast.
#[derive(Debug)]
pub struct DistributedSystem {
    channel: Channel<BTreePayload>,
    num_levels: u32,
    r: usize,
    num_segments: usize,
}

impl DistributedSystem {
    /// The number of replicated levels actually used.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of (index segment, data segment) pairs per cycle.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Number of index levels `k`.
    pub fn num_levels(&self) -> usize {
        self.num_levels as usize
    }
}

impl Scheme for DistributedScheme {
    type System = DistributedSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let fanout = params.index_entries_per_bucket();
        let tree = IndexTree::build(dataset, fanout)?;
        let k = tree.num_levels();
        let r = self
            .r
            .unwrap_or_else(|| optimal_r_ragged(fanout, dataset.len()))
            .min(k - 1);

        let num_segments = tree.level(r).len();
        let mut slots = Vec::new();
        for s in 0..num_segments {
            let mut first_in_segment = true;
            let mut push_index = |slots: &mut Vec<Slot>, level: usize, node: usize| {
                slots.push(Slot::Index {
                    level,
                    node,
                    segment_start: std::mem::take(&mut first_in_segment),
                });
            };

            // Replicated ancestors: ancestor at level l is due here iff this
            // segment is the first occurrence of its child on the path,
            // i.e. iff `s` is the leftmost level-r descendant of that child.
            for l in 0..r {
                let child_on_path = tree.ancestor(r, s, l + 1);
                if tree.leftmost_descendant(l + 1, child_on_path, r) == s {
                    push_index(&mut slots, l, tree.ancestor(r, s, l));
                }
            }

            // Non-replicated part: preorder of the subtree rooted at (r, s).
            let mut stack = vec![(r, s)];
            while let Some((l, i)) = stack.pop() {
                push_index(&mut slots, l, i);
                if !tree.is_leaf_level(l) {
                    for j in (0..tree.node(l, i).num_children()).rev() {
                        stack.push((l + 1, tree.child(l, i, j)));
                    }
                }
            }

            // Data segment: the records under (r, s).
            let (lo, hi) = tree.data_range(r, s);
            for d in lo..hi {
                slots.push(Slot::Data { index: d });
            }
        }

        let channel = materialize(&tree, dataset, params, &slots, true)?;
        Ok(DistributedSystem {
            channel,
            num_levels: k as u32,
            r,
            num_segments,
        })
    }
}

impl System for DistributedSystem {
    type Payload = BTreePayload;
    type Machine = BTreeMachine;

    fn scheme_name(&self) -> &'static str {
        "distributed"
    }

    fn channel(&self) -> &Channel<BTreePayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<BTreePayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> BTreeMachine {
        BTreeMachine::new(key, self.num_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    /// Parameters giving exactly fanout 3, so we can reproduce Fig. 1.
    fn fanout3_params() -> Params {
        // data bucket = header + key + record = 8 + 25 + 75 = 108;
        // entries/bucket = (108 - 8) / (25 + 4) = 3.
        let mut p = Params::paper();
        p.record_size = 75;
        assert_eq!(p.index_entries_per_bucket(), 3);
        p
    }

    /// Extract the (level, node) sequence of index buckets per segment.
    fn segments_of(sys: &DistributedSystem) -> Vec<Vec<(u32, u32)>> {
        let mut segs: Vec<Vec<(u32, u32)>> = Vec::new();
        for b in sys.channel().buckets() {
            if let BTreePayload::Index(ib) = &b.payload {
                if ib.segment_start {
                    segs.push(Vec::new());
                }
                segs.last_mut().unwrap().push((ib.level, ib.node));
            }
        }
        segs
    }

    #[test]
    fn fig1_paper_example_layout() {
        // 81 records, fanout 3, r = 2 (levels I and a replicated) — the
        // paper's running example. First two index segments must be
        // I a1 b1 c1 c2 c3 and a1 b2 c4 c5 c6.
        let d = ds(81);
        let sys = DistributedScheme::with_r(2)
            .build(&d, &fanout3_params())
            .unwrap();
        assert_eq!(sys.r(), 2);
        assert_eq!(sys.num_segments(), 9);
        let segs = segments_of(&sys);
        assert_eq!(segs.len(), 9);
        // Levels: 0 = I, 1 = a, 2 = b, 3 = c.
        assert_eq!(
            segs[0],
            vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]
        );
        assert_eq!(segs[1], vec![(1, 0), (2, 1), (3, 3), (3, 4), (3, 5)]);
        assert_eq!(segs[2], vec![(1, 0), (2, 2), (3, 6), (3, 7), (3, 8)]);
        // Segment 4 restarts with the root: I a2 b4 ….
        assert_eq!(
            segs[3],
            vec![(0, 0), (1, 1), (2, 3), (3, 9), (3, 10), (3, 11)]
        );
    }

    #[test]
    fn replicated_node_occurrences_equal_child_counts() {
        let d = ds(81);
        let sys = DistributedScheme::with_r(2)
            .build(&d, &fanout3_params())
            .unwrap();
        let mut counts = std::collections::HashMap::new();
        for b in sys.channel().buckets() {
            if let BTreePayload::Index(ib) = &b.payload {
                *counts.entry((ib.level, ib.node)).or_insert(0u32) += 1;
            }
        }
        // Root (3 children) broadcast 3×; each a-node (3 children) 3×;
        // b and c nodes once.
        assert_eq!(counts[&(0, 0)], 3);
        for a in 0..3 {
            assert_eq!(counts[&(1, a)], 3);
        }
        for b in 0..9 {
            assert_eq!(counts[&(2, b)], 1);
        }
        for c in 0..27 {
            assert_eq!(counts[&(3, c)], 1);
        }
        // Total buckets: 3 + 9 + 9 + 27 index + 81 data = 129.
        assert_eq!(sys.channel().num_buckets(), 129);
    }

    #[test]
    fn every_key_found_from_every_segment_alignment() {
        let d = ds(81);
        let p = fanout3_params();
        let sys = DistributedScheme::with_r(2).build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        // Probe every key from a grid of tune-in times covering all
        // segments and mid-bucket offsets.
        for i in 0..81u64 {
            for s in 0..16u64 {
                let t = s * cycle / 16 + 53;
                let out = sys.probe(Key(i * 3), t);
                assert!(out.found, "key {} from t={}", i * 3, t);
                assert!(!out.aborted);
                assert!(out.access < 3 * cycle);
            }
        }
    }

    #[test]
    fn absent_keys_fail_fast() {
        let d = ds(81);
        let p = fanout3_params();
        let sys = DistributedScheme::with_r(2).build(&d, &p).unwrap();
        let k = sys.num_levels() as u64;
        for miss in [1u64, 100, 242, 9999] {
            for t in [0u64, 5000, 50_000] {
                let out = sys.probe(Key(miss), t);
                assert!(!out.found);
                assert!(!out.aborted);
                // Initial bucket + climbs (≤ r) + descent (≤ k).
                assert!(
                    u64::from(out.probes) <= k + sys.r() as u64 + 2,
                    "probes={}",
                    out.probes
                );
            }
        }
    }

    #[test]
    fn r_zero_single_segment() {
        let d = ds(30);
        let p = fanout3_params();
        let sys = DistributedScheme::with_r(0).build(&d, &p).unwrap();
        assert_eq!(sys.r(), 0);
        assert_eq!(sys.num_segments(), 1);
        for i in 0..30u64 {
            let out = sys.probe(Key(i * 3), 7777);
            assert!(out.found);
        }
    }

    #[test]
    fn default_r_is_optimal_and_works_on_paper_scale() {
        let d = ds(2000);
        let p = Params::paper();
        let sys = DistributedScheme::new().build(&d, &p).unwrap();
        assert!(sys.r() < sys.num_levels());
        for i in (0..2000u64).step_by(97) {
            let out = sys.probe(Key(i * 3), i * 977);
            assert!(out.found);
            assert!(!out.aborted);
        }
    }

    #[test]
    fn tuning_stays_near_k_probes() {
        let d = ds(729);
        let p = fanout3_params();
        let sys = DistributedScheme::with_r(2).build(&d, &p).unwrap();
        let dt = u64::from(p.data_bucket_size());
        let k = sys.num_levels() as u64;
        let cycle = sys.channel().cycle_len();
        let mut total = 0u64;
        let mut n = 0u64;
        for i in (0..729u64).step_by(11) {
            for s in 0..8u64 {
                let out = sys.probe(Key(i * 3), s * cycle / 8 + 3);
                assert!(out.found);
                total += out.tuning;
                n += 1;
            }
        }
        let avg = total / n;
        // Paper: Tt = (k + 3/2)·Dt. Climbing via the control index can add
        // a probe or two; allow (k + 3)·Dt.
        assert!(avg <= (k + 3) * dt, "avg tuning {avg}, k={k}, dt={dt}");
    }

    #[test]
    fn ragged_trees_work() {
        // Sizes that do not fill the tree exercise ragged segment layout.
        for n in [1u64, 2, 4, 10, 26, 28, 100, 250] {
            let d = ds(n);
            let p = fanout3_params();
            for r in 0..IndexTree::build(&d, 3).unwrap().num_levels() {
                let sys = DistributedScheme::with_r(r).build(&d, &p).unwrap();
                for i in 0..n {
                    let out = sys.probe(Key(i * 3), 12345);
                    assert!(out.found, "n={n} r={r} key={}", i * 3);
                    assert!(!out.aborted);
                }
                let out = sys.probe(Key(1), 12345);
                assert!(!out.found);
            }
        }
    }
}
