//! Shared channel materializer for B+-tree schemes.
//!
//! `(1,m)` and distributed indexing differ only in *which* tree nodes are
//! broadcast *where*; everything else — uniform bucket sizing, occurrence
//! bookkeeping, pointer (offset) resolution, next-segment tables — is the
//! same. Each scheme produces an abstract slot sequence ([`Slot`]) and
//! [`materialize`] turns it into a fully wired [`Channel`].
//!
//! ## Size accounting
//!
//! Both schemes use uniform buckets of [`Params::data_bucket_size`] bytes
//! (`Dt`), as the paper's analysis assumes. An index bucket's local index
//! carries at most `n =` [`Params::index_entries_per_bucket`] entries of
//! `key_size + ptr_size` bytes, which fits the bucket by construction; the
//! small control index (≤ `k−1` entries) and the next-segment pointer are
//! charged to the per-bucket header budget.

use std::collections::HashMap;

use bda_core::{BdaError, Bucket, Channel, Dataset, Params, Result, Ticks};

use crate::payload::{BTreePayload, ControlEntry, DataBucket, IndexBucket, IndexEntry};
use crate::tree::IndexTree;

/// One position in the broadcast cycle, before pointer resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// An index bucket carrying tree node `node` of level `level`.
    Index {
        /// Tree level (0 = root).
        level: usize,
        /// Node index within the level.
        node: usize,
        /// Whether this bucket opens an index segment.
        segment_start: bool,
    },
    /// A data bucket carrying record `index` of the dataset.
    Data {
        /// Record position in key order.
        index: usize,
    },
}

/// Number of whole buckets between the end of bucket `from` and the start
/// of bucket `to`, walking forward around a cycle of `n` buckets.
fn fwd_buckets(from: usize, to: usize, n: usize) -> usize {
    (to + n - from - 1) % n
}

/// Resolve a slot sequence into a broadcast channel: compute every local
/// pointer, control pointer and next-segment offset as forward byte deltas.
///
/// With `with_control = false` (used by `(1,m)`) no control indexes are
/// emitted.
pub fn materialize(
    tree: &IndexTree,
    dataset: &Dataset,
    params: &Params,
    slots: &[Slot],
    with_control: bool,
) -> Result<Channel<BTreePayload>> {
    params.validate()?;
    let n_slots = slots.len();
    if n_slots == 0 {
        return Err(BdaError::EmptyChannel);
    }
    let size = Ticks::from(params.data_bucket_size());

    // --- occurrence bookkeeping -----------------------------------------
    let mut index_occ: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut data_occ: Vec<Option<usize>> = vec![None; dataset.len()];
    let mut any_segment_start = false;
    for (pos, slot) in slots.iter().enumerate() {
        match *slot {
            Slot::Index {
                level,
                node,
                segment_start,
            } => {
                index_occ.entry((level, node)).or_default().push(pos);
                any_segment_start |= segment_start;
            }
            Slot::Data { index } => {
                if data_occ[index].replace(pos).is_some() {
                    return Err(BdaError::BuildError(format!(
                        "record {index} appears more than once in the cycle"
                    )));
                }
            }
        }
    }
    if !any_segment_start {
        return Err(BdaError::BuildError(
            "cycle has no index-segment start bucket".into(),
        ));
    }
    for (i, occ) in data_occ.iter().enumerate() {
        if occ.is_none() {
            return Err(BdaError::BuildError(format!(
                "record {i} never appears in the cycle"
            )));
        }
    }

    // --- next-segment distance table ------------------------------------
    // dist[p] = whole buckets between the end of bucket p and the start of
    // the next segment-start bucket (strictly after p, cyclically).
    let is_seg_start = |p: usize| {
        matches!(
            slots[p],
            Slot::Index {
                segment_start: true,
                ..
            }
        )
    };
    let mut dist = vec![0usize; n_slots];
    let mut last: usize = usize::MAX;
    for p in (0..2 * n_slots).rev() {
        let q = p % n_slots;
        if p < n_slots {
            debug_assert!(last != usize::MAX && last > p);
            dist[q] = last - (p + 1);
        }
        if is_seg_start(q) {
            last = p;
        }
    }

    // Smallest forward distance from `pos` to any occurrence in `occs`.
    let nearest = |pos: usize, occs: &[usize]| -> usize {
        occs.iter()
            .map(|&o| fwd_buckets(pos, o, n_slots))
            .min()
            .expect("occurrence list is non-empty")
    };

    // --- payload construction --------------------------------------------
    let leaf_level = tree.num_levels() - 1;
    let mut buckets = Vec::with_capacity(n_slots);
    for (pos, slot) in slots.iter().enumerate() {
        let next_seg_delta = dist[pos] as Ticks * size;
        let payload = match *slot {
            Slot::Data { index } => BTreePayload::Data(DataBucket {
                key: dataset.record(index).key,
                record_index: index as u32,
                next_seg_delta,
            }),
            Slot::Index {
                level,
                node,
                segment_start,
            } => {
                let tnode = tree.node(level, node);
                let entries = (0..tnode.num_children())
                    .map(|j| {
                        let target = if level == leaf_level {
                            let (start, _) = tree.data_range(level, node);
                            data_occ[start + j].expect("validated above")
                        } else {
                            let child = tree.child(level, node, j);
                            let occs = index_occ.get(&(level + 1, child)).ok_or_else(|| {
                                BdaError::BuildError(format!(
                                    "child node ({}, {child}) never broadcast",
                                    level + 1
                                ))
                            })?;
                            pos_of_nearest(pos, occs, n_slots)
                        };
                        Ok(IndexEntry {
                            max_key: tnode.child_max[j],
                            delta: fwd_buckets(pos, target, n_slots) as Ticks * size,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;

                let control = if with_control && level > 0 {
                    (0..level)
                        .map(|a| {
                            let anc = tree.ancestor(level, node, a);
                            let anode = tree.node(a, anc);
                            let occs = index_occ
                                .get(&(a, anc))
                                .expect("ancestors of broadcast nodes are broadcast");
                            ControlEntry {
                                min_key: anode.min_key,
                                max_key: anode.max_key,
                                delta: nearest(pos, occs) as Ticks * size,
                            }
                        })
                        .collect()
                } else {
                    Vec::new()
                };

                BTreePayload::Index(IndexBucket {
                    level: level as u32,
                    node: node as u32,
                    min_key: tnode.min_key,
                    max_key: tnode.max_key,
                    segment_start,
                    entries,
                    control,
                    next_seg_delta,
                })
            }
        };
        buckets.push(Bucket::new(size as u32, payload));
    }

    Channel::new(buckets)
}

/// Position (not distance) of the nearest forward occurrence.
fn pos_of_nearest(pos: usize, occs: &[usize], n: usize) -> usize {
    *occs
        .iter()
        .min_by_key(|&&o| fwd_buckets(pos, o, n))
        .expect("occurrence list is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Key, Record};

    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    fn small_params() -> Params {
        Params::paper()
    }

    #[test]
    fn fwd_buckets_geometry() {
        assert_eq!(fwd_buckets(0, 1, 10), 0); // immediately next
        assert_eq!(fwd_buckets(0, 0, 10), 9); // self, next cycle
        assert_eq!(fwd_buckets(9, 0, 10), 0); // wrap
        assert_eq!(fwd_buckets(3, 1, 10), 7);
    }

    #[test]
    fn duplicate_or_missing_records_rejected() {
        let d = ds(3);
        let tree = IndexTree::build(&d, 3).unwrap();
        let dup = vec![
            Slot::Index {
                level: 0,
                node: 0,
                segment_start: true,
            },
            Slot::Data { index: 0 },
            Slot::Data { index: 0 },
        ];
        assert!(materialize(&tree, &d, &small_params(), &dup, false).is_err());

        let missing = vec![
            Slot::Index {
                level: 0,
                node: 0,
                segment_start: true,
            },
            Slot::Data { index: 0 },
        ];
        assert!(materialize(&tree, &d, &small_params(), &missing, false).is_err());
    }

    #[test]
    fn requires_a_segment_start() {
        let d = ds(2);
        let tree = IndexTree::build(&d, 3).unwrap();
        let slots = vec![
            Slot::Index {
                level: 0,
                node: 0,
                segment_start: false,
            },
            Slot::Data { index: 0 },
            Slot::Data { index: 1 },
        ];
        assert!(materialize(&tree, &d, &small_params(), &slots, false).is_err());
    }

    #[test]
    fn single_segment_layout_pointers() {
        // Tree over 3 records with fanout 3: one (leaf) node.
        let d = ds(3);
        let tree = IndexTree::build(&d, 3).unwrap();
        let slots = vec![
            Slot::Index {
                level: 0,
                node: 0,
                segment_start: true,
            },
            Slot::Data { index: 0 },
            Slot::Data { index: 1 },
            Slot::Data { index: 2 },
        ];
        let ch = materialize(&tree, &d, &small_params(), &slots, true).unwrap();
        let size = Ticks::from(small_params().data_bucket_size());
        assert_eq!(ch.num_buckets(), 4);
        assert_eq!(ch.cycle_len(), 4 * size);

        let idx = ch.bucket(0).payload.as_index().unwrap();
        assert!(idx.segment_start);
        assert_eq!(idx.entries.len(), 3);
        // Leaf entries point straight at data buckets 1, 2, 3.
        assert_eq!(idx.entries[0].delta, 0);
        assert_eq!(idx.entries[1].delta, size);
        assert_eq!(idx.entries[2].delta, 2 * size);
        assert_eq!(idx.entries[1].max_key, Key(3));
        // Root bucket has no control index.
        assert!(idx.control.is_empty());
        // Next segment from the root bucket is the root itself, one cycle on.
        assert_eq!(idx.next_seg_delta, 3 * size);

        // Data buckets point at the next segment (= bucket 0).
        let d0 = ch.bucket(1).payload.as_data().unwrap();
        assert_eq!(d0.key, Key(0));
        assert_eq!(d0.next_seg_delta, 2 * size);
        let d2 = ch.bucket(3).payload.as_data().unwrap();
        assert_eq!(d2.next_seg_delta, 0);
    }
}
