//! # bda-btree — B+-tree air indexing: `(1,m)` and distributed indexing
//!
//! Implements the two B+-tree based air-indexing schemes the paper
//! evaluates (both originally from Imielinski, Viswanathan & Badrinath,
//! *Energy efficient indexing on air*, SIGMOD 1994):
//!
//! * **(1,m) indexing** ([`OneMScheme`]) — the complete index tree is
//!   broadcast before each of `m` equal data segments. Every index bucket
//!   is therefore broadcast `m` times per cycle.
//! * **Distributed indexing** ([`DistributedScheme`]) — only the top `r`
//!   *replicated* levels of the tree are broadcast multiple times (each
//!   replicated node once before the first occurrence of each of its
//!   children); the lower, *non-replicated* part is broadcast exactly once,
//!   in front of the data segment it indexes. Control indexes let clients
//!   that tuned in at the "wrong" segment navigate to the right one.
//!
//! Both schemes share:
//!
//! * [`tree::IndexTree`] — the B+-tree built over the dataset's keys, with
//!   fanout `n` = [`bda_core::Params::index_entries_per_bucket`];
//! * [`payload::BTreePayload`] — the on-air bucket contents (local index
//!   entries, control index entries, next-segment pointers);
//! * [`machine::BTreeMachine`] — the client access protocol (§2.1 of the
//!   paper), which orients via next-segment and control pointers, then
//!   descends the tree dozing between probes;
//! * [`optimal`] — the analytically optimal number of data segments `m`
//!   and replicated levels `r` the paper uses ("we use the optimal value
//!   of r as defined in \[6\]").

pub mod distributed;
pub mod layout;
pub mod machine;
pub mod one_m;
pub mod optimal;
pub mod payload;
pub mod tree;

pub use distributed::{DistributedScheme, DistributedSystem};
pub use machine::BTreeMachine;
pub use one_m::{OneMScheme, OneMSystem};
pub use payload::{BTreePayload, ControlEntry, DataBucket, IndexBucket, IndexEntry};
pub use tree::IndexTree;
