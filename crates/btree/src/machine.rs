//! The client access protocol shared by `(1,m)` and distributed indexing.
//!
//! Mirrors the paper's §2.1 protocol:
//!
//! ```text
//! tune into the broadcast channel
//! keep listening until the first complete bucket arrives
//! read the first complete bucket
//! go to the next index segment according to the offset value in the bucket
//! (1) read the index bucket
//!     … follow control index / local index, dozing between probes …
//!     read the time offset to the actual data record, doze, download
//! ```
//!
//! The machine has four states:
//!
//! * **Init** — just tuned in; the first complete bucket only supplies the
//!   offset to the next index segment (unless it happens to *be* a segment
//!   start, in which case it is used directly).
//! * **Orient** — reading an index bucket we navigated to laterally (a
//!   segment start or a control-index target). If the bucket's subtree does
//!   not cover the key, the control index redirects to the deepest ancestor
//!   that does; if no known range covers the key, the key is not broadcast.
//! * **Descend** — walking down the tree via local index entries. The
//!   descent invariant (the key is ≤ the chosen child's max and greater
//!   than the previous child's max) means a non-covering bucket here proves
//!   the key is absent.
//! * **Fetch** — dozing toward the data bucket; reading it completes the
//!   query.

use bda_core::{
    Action, BucketMeta, Key, ProtocolFault, ProtocolMachine, StaleResponse, Ticks, Verdict,
};

use crate::payload::{BTreePayload, IndexBucket};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Init,
    Orient,
    Descend,
    Fetch,
}

/// Client protocol machine for both B+-tree schemes.
#[derive(Debug, Clone)]
pub struct BTreeMachine {
    key: Key,
    num_levels: u32,
    state: State,
}

impl BTreeMachine {
    /// A query for `key` over a tree of `num_levels` index levels.
    pub fn new(key: Key, num_levels: u32) -> Self {
        BTreeMachine {
            key,
            num_levels,
            state: State::Init,
        }
    }

    fn visit_index(&mut self, ib: &IndexBucket, meta: BucketMeta, lateral: bool) -> Action {
        if ib.covers(self.key) {
            // covers(key) implies a child entry exists; a bucket violating
            // that is malformed and surfaces as a typed fault, not a panic.
            let entry = match ib.select_entry(self.key) {
                Some(e) => e,
                None => return Action::Fail(ProtocolFault::DanglingPointer),
            };
            if ib.level + 1 == self.num_levels {
                // Leaf index bucket: entries carry exact record keys.
                if entry.max_key == self.key {
                    self.state = State::Fetch;
                    Action::DozeTo(meta.end + entry.delta)
                } else {
                    Action::Finish(Verdict::not_found())
                }
            } else {
                self.state = State::Descend;
                Action::DozeTo(meta.end + entry.delta)
            }
        } else if lateral {
            // Wrong subtree: follow the control index to the deepest
            // ancestor covering the key (distributed indexing). An empty or
            // non-covering control index means no broadcast subtree contains
            // the key.
            match ib.select_control(self.key) {
                Some(c) => {
                    self.state = State::Orient;
                    Action::DozeTo(meta.end + c.delta)
                }
                None => Action::Finish(Verdict::not_found()),
            }
        } else {
            // Descent invariant violated ⇒ the key falls in a gap between
            // records: it is not broadcast.
            Action::Finish(Verdict::not_found())
        }
    }
}

impl ProtocolMachine<BTreePayload> for BTreeMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.state = State::Init;
        Action::ReadNext
    }

    fn bucket_kind(&self, payload: &BTreePayload) -> bda_core::BucketKind {
        match payload {
            BTreePayload::Index(_) => bda_core::BucketKind::Index,
            BTreePayload::Data(_) => bda_core::BucketKind::Data,
        }
    }

    fn on_bucket(&mut self, payload: &BTreePayload, meta: BucketMeta) -> Action {
        match self.state {
            State::Init => {
                if let BTreePayload::Index(ib) = payload {
                    if ib.segment_start {
                        // Lucky tune-in: we are already at a segment start.
                        return self.visit_index(ib, meta, true);
                    }
                }
                self.state = State::Orient;
                Action::DozeTo(meta.end + payload.next_seg_delta())
            }
            State::Orient | State::Descend => match payload {
                BTreePayload::Index(ib) => {
                    let lateral = self.state == State::Orient;
                    self.visit_index(ib, meta, lateral)
                }
                BTreePayload::Data(_) => {
                    // An index pointer led to a data bucket: builder bug.
                    Action::Fail(ProtocolFault::IndexToData)
                }
            },
            State::Fetch => match payload {
                BTreePayload::Data(db) if db.key == self.key => Action::Finish(Verdict::found()),
                _ => Action::Fail(ProtocolFault::WrongDataBucket),
            },
        }
    }

    /// Every pointer the descent holds — segment offsets, child deltas,
    /// the final data delta — was computed against the build-time cycle
    /// layout. A version change re-shuffles all of them, so the only sound
    /// recovery is a fresh machine re-orienting via the new program's
    /// index segments.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }
}

#[cfg(test)]
mod tests {
    //! Unit tests drive the machine against hand-built payloads; end-to-end
    //! behaviour over real channels is covered in `one_m.rs`,
    //! `distributed.rs` and the integration suite.

    use super::*;
    use crate::payload::{ControlEntry, DataBucket, IndexEntry};

    fn meta(end: Ticks) -> BucketMeta {
        BucketMeta {
            index: 0,
            start: end - 10,
            end,
            size: 10,
            version: 0,
        }
    }

    fn leaf(keys: &[u64], segment_start: bool) -> BTreePayload {
        BTreePayload::Index(IndexBucket {
            level: 0,
            node: 0,
            min_key: Key(keys[0]),
            max_key: Key(*keys.last().unwrap()),
            segment_start,
            entries: keys
                .iter()
                .enumerate()
                .map(|(i, &k)| IndexEntry {
                    max_key: Key(k),
                    delta: 100 * i as Ticks,
                })
                .collect(),
            control: vec![],
            next_seg_delta: 777,
        })
    }

    #[test]
    fn init_uses_lucky_segment_start() {
        let mut m = BTreeMachine::new(Key(20), 1);
        assert_eq!(m.start(0), Action::ReadNext);
        // Tune straight into a segment-start leaf: descend immediately.
        let act = m.on_bucket(&leaf(&[10, 20, 30], true), meta(10));
        assert_eq!(act, Action::DozeTo(10 + 100));
        // Next bucket is the data bucket.
        let act = m.on_bucket(
            &BTreePayload::Data(DataBucket {
                key: Key(20),
                record_index: 1,
                next_seg_delta: 0,
            }),
            meta(110),
        );
        assert_eq!(act, Action::Finish(Verdict::found()));
    }

    #[test]
    fn init_dozes_to_next_segment_otherwise() {
        let mut m = BTreeMachine::new(Key(20), 1);
        m.start(0);
        let act = m.on_bucket(&leaf(&[10, 20, 30], false), meta(10));
        assert_eq!(act, Action::DozeTo(10 + 777));
    }

    #[test]
    fn init_data_bucket_supplies_next_segment() {
        let mut m = BTreeMachine::new(Key(20), 1);
        m.start(0);
        let act = m.on_bucket(
            &BTreePayload::Data(DataBucket {
                key: Key(99),
                record_index: 0,
                next_seg_delta: 555,
            }),
            meta(10),
        );
        assert_eq!(act, Action::DozeTo(10 + 555));
    }

    #[test]
    fn absent_key_detected_at_leaf() {
        let mut m = BTreeMachine::new(Key(25), 1);
        m.start(0);
        let act = m.on_bucket(&leaf(&[10, 20, 30], true), meta(10));
        assert_eq!(act, Action::Finish(Verdict::not_found()));
    }

    #[test]
    fn out_of_range_without_control_is_not_found() {
        let mut m = BTreeMachine::new(Key(500), 1);
        m.start(0);
        let act = m.on_bucket(&leaf(&[10, 20, 30], true), meta(10));
        assert_eq!(act, Action::Finish(Verdict::not_found()));
    }

    #[test]
    fn malformed_buckets_fail_typed_not_panic() {
        // An index bucket that claims to cover the key but has no entries.
        let hollow = BTreePayload::Index(IndexBucket {
            level: 0,
            node: 0,
            min_key: Key(0),
            max_key: Key(100),
            segment_start: true,
            entries: vec![],
            control: vec![],
            next_seg_delta: 0,
        });
        let mut m = BTreeMachine::new(Key(20), 1);
        m.start(0);
        assert_eq!(
            m.on_bucket(&hollow, meta(10)),
            Action::Fail(ProtocolFault::DanglingPointer)
        );

        // A data pointer that resolves to the wrong data bucket.
        let mut m = BTreeMachine::new(Key(20), 1);
        m.start(0);
        assert_eq!(
            m.on_bucket(&leaf(&[10, 20, 30], true), meta(10)),
            Action::DozeTo(10 + 100)
        );
        let act = m.on_bucket(
            &BTreePayload::Data(DataBucket {
                key: Key(999),
                record_index: 0,
                next_seg_delta: 0,
            }),
            meta(110),
        );
        assert_eq!(act, Action::Fail(ProtocolFault::WrongDataBucket));
    }

    #[test]
    fn control_climb_targets_deepest_cover() {
        // A non-root bucket covering 100..200, with control entries for the
        // root (0..1000) and a mid ancestor (50..400).
        let bucket = BTreePayload::Index(IndexBucket {
            level: 2,
            node: 5,
            min_key: Key(100),
            max_key: Key(200),
            segment_start: true,
            entries: vec![IndexEntry {
                max_key: Key(200),
                delta: 0,
            }],
            control: vec![
                ControlEntry {
                    min_key: Key(0),
                    max_key: Key(1000),
                    delta: 9000,
                },
                ControlEntry {
                    min_key: Key(50),
                    max_key: Key(400),
                    delta: 300,
                },
            ],
            next_seg_delta: 0,
        });
        // Key 350: mid ancestor covers → jump 300.
        let mut m = BTreeMachine::new(Key(350), 3);
        m.start(0);
        assert_eq!(m.on_bucket(&bucket, meta(10)), Action::DozeTo(10 + 300));
        // Key 900: only root covers → jump 9000.
        let mut m = BTreeMachine::new(Key(900), 3);
        m.start(0);
        assert_eq!(m.on_bucket(&bucket, meta(10)), Action::DozeTo(10 + 9000));
        // Key 5000: nothing covers → not broadcast.
        let mut m = BTreeMachine::new(Key(5000), 3);
        m.start(0);
        assert_eq!(
            m.on_bucket(&bucket, meta(10)),
            Action::Finish(Verdict::not_found())
        );
    }
}
