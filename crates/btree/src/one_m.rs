//! `(1,m)` indexing: the whole index tree before each of `m` data segments.
//!
//! From Imielinski et al. (SIGMOD'94), summarized in §2.1 of the paper: "the
//! whole index tree precedes each data segment in the broadcast. Each index
//! bucket is broadcast a number of times equal to the number of data
//! segments." Clients reach an index copy within `cycle/m` bytes on
//! average, pay no control-index machinery, and every index copy points at
//! the next occurrence of each data bucket (wrapping into the next cycle
//! where needed).

use bda_core::{Channel, Dataset, Key, Params, Result, Scheme, System};

use crate::layout::{materialize, Slot};
use crate::machine::BTreeMachine;
use crate::optimal::optimal_m;
use crate::payload::BTreePayload;
use crate::tree::IndexTree;

/// The `(1,m)` indexing scheme.
///
/// `m = None` (the default) selects the access-time-optimal
/// `m* = √(Nr / I)`; a fixed `m` can be forced for ablation studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneMScheme {
    m: Option<usize>,
}

impl OneMScheme {
    /// `(1,m)` with the analytically optimal `m`.
    pub fn new() -> Self {
        OneMScheme { m: None }
    }

    /// `(1,m)` with a fixed `m ≥ 1` (clamped to the record count at build
    /// time).
    pub fn with_m(m: usize) -> Self {
        OneMScheme { m: Some(m.max(1)) }
    }
}

/// A built `(1,m)` broadcast.
#[derive(Debug)]
pub struct OneMSystem {
    channel: Channel<BTreePayload>,
    num_levels: u32,
    m: usize,
    index_buckets_per_copy: usize,
}

impl OneMSystem {
    /// The number of data segments actually used.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Index buckets in one tree copy (`I`).
    pub fn index_buckets_per_copy(&self) -> usize {
        self.index_buckets_per_copy
    }

    /// Number of index levels `k`.
    pub fn num_levels(&self) -> usize {
        self.num_levels as usize
    }
}

/// Depth-first preorder of the whole tree: parents always precede their
/// children, so within one index copy every local pointer points forward.
fn preorder(tree: &IndexTree) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(tree.total_nodes());
    let mut stack = vec![(0usize, 0usize)];
    while let Some((l, i)) = stack.pop() {
        out.push((l, i));
        if !tree.is_leaf_level(l) {
            // Push children in reverse so they pop in key order.
            for j in (0..tree.node(l, i).num_children()).rev() {
                stack.push((l + 1, tree.child(l, i, j)));
            }
        }
    }
    out
}

/// Split `n` records into `m` contiguous segments of near-equal size;
/// returns `m + 1` boundary positions.
fn segment_bounds(n: usize, m: usize) -> Vec<usize> {
    let base = n / m;
    let rem = n % m;
    let mut bounds = Vec::with_capacity(m + 1);
    let mut at = 0;
    bounds.push(0);
    for s in 0..m {
        at += base + usize::from(s < rem);
        bounds.push(at);
    }
    bounds
}

impl Scheme for OneMScheme {
    type System = OneMSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let fanout = params.index_entries_per_bucket();
        let tree = IndexTree::build(dataset, fanout)?;
        let index_buckets = tree.total_nodes();
        let m = self
            .m
            .unwrap_or_else(|| optimal_m(dataset.len(), index_buckets))
            .clamp(1, dataset.len());

        let pre = preorder(&tree);
        let bounds = segment_bounds(dataset.len(), m);
        let mut slots = Vec::with_capacity(m * pre.len() + dataset.len());
        for s in 0..m {
            for (i, &(level, node)) in pre.iter().enumerate() {
                slots.push(Slot::Index {
                    level,
                    node,
                    segment_start: i == 0,
                });
            }
            for d in bounds[s]..bounds[s + 1] {
                slots.push(Slot::Data { index: d });
            }
        }
        let channel = materialize(&tree, dataset, params, &slots, false)?;
        Ok(OneMSystem {
            channel,
            num_levels: tree.num_levels() as u32,
            m,
            index_buckets_per_copy: index_buckets,
        })
    }
}

impl System for OneMSystem {
    type Payload = BTreePayload;
    type Machine = BTreeMachine;

    fn scheme_name(&self) -> &'static str {
        "(1,m)"
    }

    fn channel(&self) -> &Channel<BTreePayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<BTreePayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> BTreeMachine {
        BTreeMachine::new(key, self.num_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    #[test]
    fn segment_bounds_cover_everything() {
        assert_eq!(segment_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(segment_bounds(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(segment_bounds(2, 2), vec![0, 1, 2]);
        assert_eq!(segment_bounds(5, 1), vec![0, 5]);
    }

    #[test]
    fn preorder_starts_at_root_parents_first() {
        let tree = IndexTree::build(&ds(81), 3).unwrap();
        let pre = preorder(&tree);
        assert_eq!(pre.len(), tree.total_nodes());
        assert_eq!(pre[0], (0, 0));
        // Every node appears after its parent.
        let mut seen = std::collections::HashSet::new();
        for &(l, i) in &pre {
            if l > 0 {
                assert!(seen.contains(&(l - 1, tree.parent(l, i))));
            }
            seen.insert((l, i));
        }
    }

    #[test]
    fn cycle_contains_m_tree_copies_plus_data() {
        let d = ds(100);
        let p = Params::paper();
        let sys = OneMScheme::with_m(4).build(&d, &p).unwrap();
        assert_eq!(sys.m(), 4);
        let expect = 4 * sys.index_buckets_per_copy() + 100;
        assert_eq!(sys.channel().num_buckets(), expect);
    }

    #[test]
    fn every_key_found_from_many_alignments() {
        let d = ds(60);
        let p = Params::paper();
        let sys = OneMScheme::with_m(3).build(&d, &p).unwrap();
        let dt = u64::from(p.data_bucket_size());
        let cycle = sys.channel().cycle_len();
        for i in 0..60u64 {
            for t in [0, dt / 2, cycle / 3 + 7, cycle - 1, 3 * cycle + 13] {
                let out = sys.probe(Key(i * 3), t);
                assert!(out.found, "key {} from t={}", i * 3, t);
                assert!(!out.aborted);
                assert!(out.tuning <= out.access);
                assert_eq!(out.false_drops, 0);
            }
        }
    }

    #[test]
    fn absent_keys_reported_without_scanning_data() {
        let d = ds(60);
        let p = Params::paper();
        let sys = OneMScheme::with_m(3).build(&d, &p).unwrap();
        let levels = sys.num_levels() as u64;
        for miss in [1u64, 44, 179, 100_000] {
            let out = sys.probe(Key(miss), 17);
            assert!(!out.found);
            assert!(!out.aborted);
            // Initial bucket + at most one probe per level.
            assert!(
                u64::from(out.probes) <= levels + 1,
                "probes={} levels={levels}",
                out.probes
            );
        }
    }

    #[test]
    fn tuning_time_is_k_plus_constant_buckets() {
        let d = ds(1000);
        let p = Params::paper();
        let sys = OneMScheme::new().build(&d, &p).unwrap();
        let dt = u64::from(p.data_bucket_size());
        let k = sys.num_levels() as u64;
        let mut worst = 0;
        for i in (0..1000u64).step_by(37) {
            let out = sys.probe(Key(i * 3), i * 31);
            assert!(out.found);
            worst = worst.max(out.tuning);
        }
        // Tuning ≤ (k + 3) buckets: initial read, ≤ k index probes, data.
        assert!(worst <= (k + 3) * dt, "worst={worst} k={k} dt={dt}");
    }

    #[test]
    fn optimal_m_reduces_access_time_vs_extremes() {
        let d = ds(600);
        let p = Params::paper();
        let opt = OneMScheme::new().build(&d, &p).unwrap();
        let m1 = OneMScheme::with_m(1).build(&d, &p).unwrap();
        let avg = |sys: &OneMSystem| {
            let cycle = sys.channel().cycle_len();
            let mut total = 0u64;
            let mut n = 0u64;
            for i in (0..600u64).step_by(7) {
                for s in 0..16u64 {
                    total += sys.probe(Key(i * 3), s * cycle / 16 + 11).access;
                    n += 1;
                }
            }
            total / n
        };
        assert!(
            avg(&opt) < avg(&m1),
            "optimal m must beat m=1 on access time"
        );
    }
}
