//! Analytically optimal scheme parameters.
//!
//! The paper evaluates `(1,m)` indexing at the optimal `m` and distributed
//! indexing at "the optimal value of r as defined in \[6\]" (§4.2). Both
//! optima minimize expected **access time**; tuning time is essentially
//! independent of `m`/`r` (it is `(k + 3/2)·Dt` for both schemes).

/// Optimal number of data segments `m` for `(1,m)` indexing.
///
/// With `Nr` data buckets and `I` index buckets per tree copy, the cycle is
/// `(Nr + m·I)·Dt` and the expected access time is
///
/// ```text
/// At(m)/Dt = ½·(cycle/m)  (reach next index segment)
///          + ½·cycle      (broadcast wait)
///          + O(1)
///        ∝ Nr/m + I·m + const,
/// ```
///
/// minimized at `m* = √(Nr / I)` — Imielinski et al.'s classic result. We
/// evaluate the two neighbouring integers and keep the better.
pub fn optimal_m(num_records: usize, index_buckets_per_copy: usize) -> usize {
    let nr = num_records.max(1) as f64;
    let i = index_buckets_per_copy.max(1) as f64;
    let m_star = (nr / i).sqrt();
    let lo = (m_star.floor() as usize).max(1);
    let cost = |m: usize| nr / m as f64 + i * m as f64;
    let mut best = lo;
    for cand in [lo, lo + 1] {
        if cand <= num_records.max(1) && cost(cand) < cost(best) {
            best = cand;
        }
    }
    best
}

/// Expected access time of distributed indexing, in **buckets** (multiples
/// of `Dt`), per §2.1 of the paper:
///
/// ```text
/// At/Dt = ½·( (n^(k−r) − 1)/(n − 1)            — avg index-segment length
///           + (n^(r+1) − n)/(n^(r+1) − n^r)    — correction term
///           + Nr/n^r                            — avg data-segment length
///           + N + 1 )                           — broadcast wait
/// ```
///
/// where `N` is the total bucket count: `n·(n^r − 1)/(n − 1)` replicated
/// copies plus `(n^k − n^r)/(n − 1)` non-replicated buckets plus `Nr` data
/// buckets.
///
/// The paper takes `k = log_n(Nr)` ("it is obvious that k = logn(Nr)"),
/// i.e. the formula treats the tree as full with `n^k = Nr`; substituting
/// `n^k → Nr` keeps it meaningful for the ragged trees real record counts
/// produce, so that is how it is evaluated here.
pub fn distributed_access_buckets(n: usize, _k: usize, r: usize, num_records: usize) -> f64 {
    let nf = n as f64;
    let nr = num_records as f64;
    let n_pow = |e: usize| nf.powi(e as i32);

    let replicated_buckets = nf * (n_pow(r) - 1.0) / (nf - 1.0);
    // n^k − n^r with n^k = Nr (full-tree identification).
    let non_replicated = (nr - n_pow(r)).max(0.0) / (nf - 1.0);
    let total = replicated_buckets + non_replicated + nr;

    // n^(k−r) = Nr / n^r under the same identification.
    let index_seg = (nr / n_pow(r) - 1.0).max(0.0) / (nf - 1.0);
    let correction = if r == 0 {
        0.0
    } else {
        (n_pow(r + 1) - nf) / (n_pow(r + 1) - n_pow(r))
    };
    let data_seg = nr / n_pow(r);

    0.5 * (index_seg + correction + data_seg + total + 1.0)
}

/// Optimal number of replicated levels `r ∈ [0, k−1]` for distributed
/// indexing under the paper's full-tree formula: the argmin of
/// [`distributed_access_buckets`].
pub fn optimal_r(fanout: usize, num_levels: usize, num_records: usize) -> usize {
    let k = num_levels.max(1);
    (0..k)
        .min_by(|&a, &b| {
            distributed_access_buckets(fanout, k, a, num_records)
                .total_cmp(&distributed_access_buckets(fanout, k, b, num_records))
        })
        .unwrap_or(0)
}

/// Per-level node counts of the tree [`crate::IndexTree::build`] would
/// produce (root first), without materializing it.
pub fn level_sizes(fanout: usize, num_records: usize) -> Vec<usize> {
    assert!(fanout >= 2 && num_records >= 1);
    let mut sizes = vec![num_records.div_ceil(fanout)];
    while *sizes.last().expect("non-empty") > 1 {
        let next = sizes.last().expect("non-empty").div_ceil(fanout);
        sizes.push(next);
    }
    sizes.reverse();
    sizes
}

/// Expected access time of distributed indexing in **buckets**, modelled on
/// the *actual* (possibly ragged) tree shape rather than the paper's
/// full-tree idealization:
///
/// ```text
/// At/Dt ≈ 3/2                  (initial wait + first bucket)
///       + N / (2·S)            (reach the next index segment; S segments)
///       + N/2 + 1              (broadcast wait + download)
/// ```
///
/// where `N` counts replicated copies (each level-`l < r` node appears once
/// per child, i.e. `level_sizes[l+1]` copies in total), non-replicated
/// nodes, and data buckets; `S = level_sizes[r]`.
///
/// Real record counts produce very ragged top levels (e.g. a root with 4
/// children at fanout 56), where the full-tree formula misjudges the
/// segment count badly — and with it the optimal `r` (DESIGN.md ◆4).
pub fn distributed_access_buckets_ragged(fanout: usize, r: usize, num_records: usize) -> f64 {
    let sizes = level_sizes(fanout, num_records);
    let k = sizes.len();
    let r = r.min(k - 1);
    let replicated: usize = sizes[1..=r].iter().sum();
    let non_replicated: usize = sizes[r..].iter().sum();
    let n_total = (replicated + non_replicated + num_records) as f64;
    let segments = sizes[r] as f64;
    1.5 + n_total / (2.0 * segments) + n_total / 2.0 + 1.0
}

/// Optimal `r` under the ragged-tree model — what
/// [`crate::DistributedScheme`] uses by default.
pub fn optimal_r_ragged(fanout: usize, num_records: usize) -> usize {
    let k = level_sizes(fanout, num_records).len();
    (0..k)
        .min_by(|&a, &b| {
            distributed_access_buckets_ragged(fanout, a, num_records)
                .total_cmp(&distributed_access_buckets_ragged(fanout, b, num_records))
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_m_matches_square_root_rule() {
        // Nr = 10_000, I = 100 → m* = √100 = 10.
        assert_eq!(optimal_m(10_000, 100), 10);
        // Nr = I → m* = 1.
        assert_eq!(optimal_m(50, 50), 1);
        // Tiny index → large m.
        let m = optimal_m(40_000, 10);
        assert!((60..=64).contains(&m), "m={m}");
    }

    #[test]
    fn optimal_m_degenerate_inputs() {
        assert_eq!(optimal_m(1, 1), 1);
        assert_eq!(optimal_m(0, 0), 1);
    }

    #[test]
    fn optimal_m_is_argmin_of_cost() {
        // Exhaustive check against brute force.
        for (nr, i) in [(1000usize, 7usize), (5000, 40), (123, 5)] {
            let cost = |m: usize| nr as f64 / m as f64 + (i * m) as f64;
            let brute = (1..=nr)
                .min_by(|&a, &b| cost(a).total_cmp(&cost(b)))
                .unwrap();
            assert_eq!(cost(optimal_m(nr, i)), cost(brute), "nr={nr} i={i}");
        }
    }

    #[test]
    fn distributed_cost_has_interior_optimum() {
        // Full tree: n = 17, Nr = 17^3 → k = 3.
        let n = 17;
        let k = 3;
        let nr = 17usize.pow(3);
        let costs: Vec<f64> = (0..k)
            .map(|r| distributed_access_buckets(n, k, r, nr))
            .collect();
        // r = 0 broadcasts the whole tree once: long initial probe.
        // r = k−1 replicates everything: long cycle. The optimum for this
        // shape sits in between or at an end — but never NaN/inf.
        for c in &costs {
            assert!(c.is_finite() && *c > 0.0);
        }
        let r = optimal_r(n, k, nr);
        assert!(r < k);
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(distributed_access_buckets(n, k, r, nr), best);
    }

    #[test]
    fn replication_shortens_the_initial_probe() {
        // The index-segment component must shrink as r grows.
        let n = 10;
        let k = 4;
        let nr = 10_000;
        let seg = |r: usize| (n as f64).powi((k - r) as i32); // sanity shape only
        assert!(seg(0) > seg(2));
        // And total cost at r = optimal ≤ cost at both extremes.
        let r = optimal_r(n, k, nr);
        let c = |r| distributed_access_buckets(n, k, r, nr);
        assert!(c(r) <= c(0) + 1e-9);
        assert!(c(r) <= c(k - 1) + 1e-9);
    }

    #[test]
    fn optimal_r_single_level_tree() {
        assert_eq!(optimal_r(5, 1, 4), 0);
    }
}
