//! On-air bucket contents for B+-tree indexing schemes.
//!
//! Everything a client learns, it learns from these payloads: all offsets
//! are **forward byte deltas measured from the end of the bucket that
//! carries them** (a delta of 0 points at the immediately following
//! bucket), exactly like the arrival-time offsets the paper describes.

use bda_core::{Key, Ticks};

/// One local-index entry: "keys up to `max_key` live under the child
/// bucket starting `delta` bytes after this bucket ends".
///
/// In a leaf index bucket the children are data buckets and `max_key` is
/// the exact record key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Largest key in the child's subtree (exact key at the leaf level).
    pub max_key: Key,
    /// Forward byte delta from the end of this bucket to the child's next
    /// occurrence.
    pub delta: Ticks,
}

/// One control-index entry (distributed indexing only): the key range of an
/// ancestor node and the forward delta to that ancestor's next on-air
/// occurrence.
///
/// The paper: "The control index consists of pointers that point at the
/// next occurrence of the buckets containing the parent nodes in its index
/// path" (§2.1). Carrying the ancestor's key range lets the client pick the
/// deepest ancestor that covers the requested key and jump straight to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEntry {
    /// Smallest key under the ancestor.
    pub min_key: Key,
    /// Largest key under the ancestor.
    pub max_key: Key,
    /// Forward byte delta to the ancestor's next occurrence.
    pub delta: Ticks,
}

/// An index bucket: one B+-tree node on the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexBucket {
    /// Tree level (0 = root).
    pub level: u32,
    /// Node index within the level (diagnostics).
    pub node: u32,
    /// Smallest key in this node's subtree.
    pub min_key: Key,
    /// Largest key in this node's subtree.
    pub max_key: Key,
    /// Whether this bucket opens an index segment (the bucket that
    /// "offset to next index segment" pointers land on).
    pub segment_start: bool,
    /// Local index: one entry per child, in key order.
    pub entries: Vec<IndexEntry>,
    /// Control index: ancestors ordered root-first; empty for `(1,m)`
    /// indexing and for the root bucket.
    pub control: Vec<ControlEntry>,
    /// Forward delta to the start of the next index segment.
    pub next_seg_delta: Ticks,
}

/// A data bucket: one record on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataBucket {
    /// The record's primary key.
    pub key: Key,
    /// Position of the record in the dataset (diagnostics).
    pub record_index: u32,
    /// Forward delta to the start of the next index segment (data buckets
    /// carry it too — Fig. 2 of the paper).
    pub next_seg_delta: Ticks,
}

/// Bucket payload for both B+-tree schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreePayload {
    /// An index (tree node) bucket.
    Index(IndexBucket),
    /// A data (record) bucket.
    Data(DataBucket),
}

impl BTreePayload {
    /// The next-index-segment delta every bucket carries.
    pub fn next_seg_delta(&self) -> Ticks {
        match self {
            BTreePayload::Index(b) => b.next_seg_delta,
            BTreePayload::Data(b) => b.next_seg_delta,
        }
    }

    /// Whether this bucket opens an index segment.
    pub fn is_segment_start(&self) -> bool {
        matches!(self, BTreePayload::Index(b) if b.segment_start)
    }

    /// The index bucket, if this is one.
    pub fn as_index(&self) -> Option<&IndexBucket> {
        match self {
            BTreePayload::Index(b) => Some(b),
            BTreePayload::Data(_) => None,
        }
    }

    /// The data bucket, if this is one.
    pub fn as_data(&self) -> Option<&DataBucket> {
        match self {
            BTreePayload::Data(b) => Some(b),
            BTreePayload::Index(_) => None,
        }
    }
}

impl IndexBucket {
    /// Whether `key` falls inside this node's subtree range.
    pub fn covers(&self, key: Key) -> bool {
        self.min_key <= key && key <= self.max_key
    }

    /// Local-index lookup: the entry whose child subtree would contain
    /// `key` (first entry with `max_key ≥ key`).
    pub fn select_entry(&self, key: Key) -> Option<&IndexEntry> {
        let j = self.entries.partition_point(|e| e.max_key < key);
        self.entries.get(j)
    }

    /// Control-index lookup: the deepest ancestor whose range covers
    /// `key`. Entries are stored root-first, so the *last* covering entry
    /// is the deepest.
    pub fn select_control(&self, key: Key) -> Option<&ControlEntry> {
        self.control
            .iter()
            .rev()
            .find(|c| c.min_key <= key && key <= c.max_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket() -> IndexBucket {
        IndexBucket {
            level: 1,
            node: 2,
            min_key: Key(10),
            max_key: Key(60),
            segment_start: true,
            entries: vec![
                IndexEntry {
                    max_key: Key(20),
                    delta: 0,
                },
                IndexEntry {
                    max_key: Key(40),
                    delta: 512,
                },
                IndexEntry {
                    max_key: Key(60),
                    delta: 1024,
                },
            ],
            control: vec![
                ControlEntry {
                    min_key: Key(0),
                    max_key: Key(100),
                    delta: 9000,
                },
                ControlEntry {
                    min_key: Key(10),
                    max_key: Key(80),
                    delta: 3000,
                },
            ],
            next_seg_delta: 2048,
        }
    }

    #[test]
    fn select_entry_picks_covering_child() {
        let b = bucket();
        assert_eq!(b.select_entry(Key(10)).unwrap().max_key, Key(20));
        assert_eq!(b.select_entry(Key(20)).unwrap().max_key, Key(20));
        assert_eq!(b.select_entry(Key(21)).unwrap().max_key, Key(40));
        assert_eq!(b.select_entry(Key(60)).unwrap().max_key, Key(60));
        assert!(b.select_entry(Key(61)).is_none());
    }

    #[test]
    fn select_control_prefers_deepest_cover() {
        let b = bucket();
        // Key 90: only the root entry (0..100) covers it.
        assert_eq!(b.select_control(Key(90)).unwrap().delta, 9000);
        // Key 50: both cover; deepest (10..80) wins.
        assert_eq!(b.select_control(Key(50)).unwrap().delta, 3000);
        // Key 200: nobody covers.
        assert!(b.select_control(Key(200)).is_none());
    }

    #[test]
    fn payload_accessors() {
        let idx = BTreePayload::Index(bucket());
        assert!(idx.is_segment_start());
        assert_eq!(idx.next_seg_delta(), 2048);
        assert!(idx.as_index().is_some());
        assert!(idx.as_data().is_none());

        let data = BTreePayload::Data(DataBucket {
            key: Key(5),
            record_index: 0,
            next_seg_delta: 7,
        });
        assert!(!data.is_segment_start());
        assert_eq!(data.next_seg_delta(), 7);
        assert!(data.as_data().is_some());
        assert!(data.as_index().is_none());
    }
}
