//! The broadcast B+-tree.
//!
//! A compact B+-tree over the dataset's keys, built bottom-up with a fixed
//! fanout `n` (the number of `(key, pointer)` entries an index bucket can
//! carry). Nodes are grouped in uniform chunks, so structural relations are
//! pure index arithmetic: the parent of node `i` at level `l` is `i / n`,
//! its `j`-th child is `i·n + j`, and its leftmost descendant at a deeper
//! level `t` is `i · n^(t-l)`. The paper's Fig. 1 tree (81 records, fanout
//! 3, 4 index levels) is reproduced in the tests below.

use bda_core::{BdaError, Dataset, Key, Result};

/// One index node: the maximum key of each child's subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Max key of each child subtree; `child_max.len()` = number of
    /// children. For leaf index nodes the children are data records and
    /// these are the exact record keys.
    pub child_max: Vec<Key>,
    /// Smallest key in this node's subtree.
    pub min_key: Key,
    /// Largest key in this node's subtree.
    pub max_key: Key,
}

impl TreeNode {
    /// Number of children.
    pub fn num_children(&self) -> usize {
        self.child_max.len()
    }

    /// Whether `key` falls within this node's subtree range.
    pub fn covers(&self, key: Key) -> bool {
        self.min_key <= key && key <= self.max_key
    }

    /// Index of the child whose subtree would contain `key`, i.e. the
    /// first child with `child_max ≥ key`. `None` if `key` is greater than
    /// every child's max.
    pub fn select_child(&self, key: Key) -> Option<usize> {
        let j = self.child_max.partition_point(|&m| m < key);
        (j < self.child_max.len()).then_some(j)
    }
}

/// A B+-tree over a dataset's keys, in breadth-first storage.
#[derive(Debug, Clone)]
pub struct IndexTree {
    fanout: usize,
    /// `levels\[0\]` is the root level (exactly one node); the last level is
    /// the leaf index level whose children are data records.
    levels: Vec<Vec<TreeNode>>,
    num_data: usize,
}

impl IndexTree {
    /// Build the tree for `dataset` with the given fanout (≥ 2).
    pub fn build(dataset: &Dataset, fanout: usize) -> Result<IndexTree> {
        if fanout < 2 {
            return Err(BdaError::BuildError(format!(
                "B+-tree fanout must be at least 2, got {fanout}"
            )));
        }
        let n = dataset.len();

        // Leaf index level: group records in chunks of `fanout`.
        let mut level: Vec<TreeNode> = dataset
            .records()
            .chunks(fanout)
            .map(|chunk| TreeNode {
                child_max: chunk.iter().map(|r| r.key).collect(),
                min_key: chunk.first().expect("chunks are non-empty").key,
                max_key: chunk.last().expect("chunks are non-empty").key,
            })
            .collect();

        let mut levels = vec![level.clone()];
        while level.len() > 1 {
            level = level
                .chunks(fanout)
                .map(|chunk| TreeNode {
                    child_max: chunk.iter().map(|c| c.max_key).collect(),
                    min_key: chunk.first().expect("chunks are non-empty").min_key,
                    max_key: chunk.last().expect("chunks are non-empty").max_key,
                })
                .collect();
            levels.push(level.clone());
        }
        levels.reverse(); // root first
        Ok(IndexTree {
            fanout,
            levels,
            num_data: n,
        })
    }

    /// Fanout `n`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of index levels `k` (root inclusive, data level exclusive).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of data records indexed.
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// Nodes at level `l` (0 = root).
    pub fn level(&self, l: usize) -> &[TreeNode] {
        &self.levels[l]
    }

    /// Node `i` at level `l`.
    pub fn node(&self, l: usize, i: usize) -> &TreeNode {
        &self.levels[l][i]
    }

    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.levels[0][0]
    }

    /// Whether `l` is the leaf index level (its children are data records).
    pub fn is_leaf_level(&self, l: usize) -> bool {
        l + 1 == self.levels.len()
    }

    /// Total number of index nodes across all levels.
    pub fn total_nodes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Parent node index (at level `l-1`) of node `i` at level `l ≥ 1`.
    pub fn parent(&self, _l: usize, i: usize) -> usize {
        i / self.fanout
    }

    /// Ancestor node index at level `a ≤ l` of node `i` at level `l`.
    pub fn ancestor(&self, l: usize, i: usize, a: usize) -> usize {
        debug_assert!(a <= l);
        i / self.fanout.pow((l - a) as u32)
    }

    /// Leftmost descendant of node `i` (level `l`) at deeper level `t ≥ l`.
    pub fn leftmost_descendant(&self, l: usize, i: usize, t: usize) -> usize {
        debug_assert!(t >= l);
        i * self.fanout.pow((t - l) as u32)
    }

    /// Child node index (at level `l+1`) of child slot `j` of node `i`.
    pub fn child(&self, _l: usize, i: usize, j: usize) -> usize {
        i * self.fanout + j
    }

    /// Half-open range of data record positions covered by node `i` at
    /// level `l`.
    pub fn data_range(&self, l: usize, i: usize) -> (usize, usize) {
        let span = self.fanout.pow((self.levels.len() - l) as u32);
        let start = i * span;
        let end = ((i + 1) * span).min(self.num_data);
        (start, end)
    }

    /// Reference search (not a broadcast protocol): position of `key` in
    /// the dataset, if present. Used to validate channel layouts.
    pub fn search(&self, key: Key) -> Option<usize> {
        let mut idx = 0usize;
        for l in 0..self.levels.len() {
            let node = self.node(l, idx);
            let j = node.select_child(key)?;
            if self.is_leaf_level(l) {
                return (node.child_max[j] == key).then(|| idx * self.fanout + j);
            }
            idx = self.child(l, idx, j);
        }
        unreachable!("descent always terminates at the leaf level")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::Record;

    /// Dataset of `n` records with keys 0, 3, 6, … (the paper's Fig. 1
    /// uses 81 records keyed in steps of 3).
    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    #[test]
    fn fig1_tree_shape() {
        // 81 records, fanout 3 → levels: 1 root, 3, 9, 27 leaf nodes.
        let t = IndexTree::build(&ds(81), 3).unwrap();
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.level(0).len(), 1);
        assert_eq!(t.level(1).len(), 3);
        assert_eq!(t.level(2).len(), 9);
        assert_eq!(t.level(3).len(), 27);
        assert_eq!(t.total_nodes(), 40);
        assert_eq!(t.root().min_key, Key(0));
        assert_eq!(t.root().max_key, Key(240));
        // Node a2 (level 1, index 1) covers data items 27..54 → keys 81..159.
        let a2 = t.node(1, 1);
        assert_eq!(a2.min_key, Key(81));
        assert_eq!(a2.max_key, Key(159));
        assert_eq!(t.data_range(1, 1), (27, 54));
    }

    #[test]
    fn ragged_tree_shape() {
        // 10 records, fanout 3 → leaf level has 4 nodes (3,3,3,1), then 2, then root.
        let t = IndexTree::build(&ds(10), 3).unwrap();
        assert_eq!(t.num_levels(), 3);
        assert_eq!(t.level(2).len(), 4);
        assert_eq!(t.level(1).len(), 2);
        assert_eq!(t.level(0).len(), 1);
        assert_eq!(t.node(2, 3).num_children(), 1);
        assert_eq!(t.data_range(1, 1), (9, 10));
        assert_eq!(t.data_range(0, 0), (0, 10));
    }

    #[test]
    fn single_level_tree() {
        let t = IndexTree::build(&ds(3), 4).unwrap();
        assert_eq!(t.num_levels(), 1);
        assert!(t.is_leaf_level(0));
        assert_eq!(t.root().num_children(), 3);
    }

    #[test]
    fn fanout_below_two_rejected() {
        assert!(IndexTree::build(&ds(5), 1).is_err());
        assert!(IndexTree::build(&ds(5), 0).is_err());
    }

    #[test]
    fn structural_arithmetic() {
        let t = IndexTree::build(&ds(81), 3).unwrap();
        assert_eq!(t.parent(2, 7), 2);
        assert_eq!(t.child(1, 2, 1), 7);
        assert_eq!(t.ancestor(3, 26, 0), 0);
        assert_eq!(t.ancestor(3, 26, 1), 2);
        assert_eq!(t.ancestor(3, 26, 3), 26);
        assert_eq!(t.leftmost_descendant(1, 1, 3), 9);
        assert_eq!(t.leftmost_descendant(0, 0, 2), 0);
        // parent/child are inverses.
        for i in 0..9 {
            for j in 0..3 {
                assert_eq!(t.parent(3, t.child(2, i, j)), i);
            }
        }
    }

    #[test]
    fn search_finds_every_key_and_rejects_absent() {
        for n in [1u64, 2, 5, 27, 80, 81, 100] {
            let d = ds(n);
            let t = IndexTree::build(&d, 3).unwrap();
            for i in 0..n {
                assert_eq!(t.search(Key(i * 3)), Some(i as usize), "n={n} i={i}");
                assert_eq!(t.search(Key(i * 3 + 1)), None);
            }
            assert_eq!(t.search(Key(n * 3 + 10)), None);
        }
    }

    #[test]
    fn select_child_boundaries() {
        let node = TreeNode {
            child_max: vec![Key(10), Key(20), Key(30)],
            min_key: Key(1),
            max_key: Key(30),
        };
        assert_eq!(node.select_child(Key(1)), Some(0));
        assert_eq!(node.select_child(Key(10)), Some(0));
        assert_eq!(node.select_child(Key(11)), Some(1));
        assert_eq!(node.select_child(Key(30)), Some(2));
        assert_eq!(node.select_child(Key(31)), None);
        assert!(node.covers(Key(15)));
        assert!(!node.covers(Key(0)));
    }
}
