//! Broadcast-disk wrapping of distributed B⁺-tree indexing: minor cycles
//! are complete self-contained index programs over their chunk's records,
//! so tree navigation never crosses a chunk boundary. The wrapper must be
//! exact at every alignment, reduce to the plain program at D = 1, and
//! recover from corrupted reads by re-routing.

use bda_btree::DistributedScheme;
use bda_core::{
    Dataset, DiskConfig, DiskScheme, DynSystem, ErrorModel, Key, Params, Record, RetryPolicy,
    Scheme, System,
};

fn dataset(n: u64) -> Dataset {
    Dataset::new((0..n).map(|i| Record::keyed(i * 5 + 2)).collect()).unwrap()
}

#[test]
fn d1_wrapper_is_bit_identical_to_plain_distributed() {
    let ds = dataset(81);
    let p = Params::paper();
    let plain = DistributedScheme::new().build(&ds, &p).unwrap();
    let disks = DiskScheme::new(DistributedScheme::new(), DiskConfig::new(1))
        .build(&ds, &p)
        .unwrap();
    assert_eq!(plain.channel().num_buckets(), disks.channel().num_buckets());
    assert_eq!(plain.channel().cycle_len(), disks.channel().cycle_len());
    let cycle = plain.channel().cycle_len();
    for k in 0..81u64 {
        for s in 0..9u64 {
            let t = s * cycle / 9 + 7;
            assert_eq!(
                plain.probe(Key(k * 5 + 2), t),
                disks.probe(Key(k * 5 + 2), t),
                "key {k} t={t}"
            );
        }
    }
    for k in [0u64, 3, 404, 1000] {
        assert_eq!(plain.probe(Key(k), 19), disks.probe(Key(k), 19));
    }
}

#[test]
fn every_key_found_from_every_alignment_at_d3() {
    let ds = dataset(90);
    let p = Params::paper();
    let sys = DiskScheme::new(DistributedScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    for k in 0..90u64 {
        for s in 0..11u64 {
            let out = sys.probe(Key(k * 5 + 2), s * cycle / 11 + 1);
            assert!(out.found, "key {k} slot {s}");
            assert!(!out.aborted);
            assert!(out.tuning <= out.access);
        }
    }
}

#[test]
fn absent_keys_are_rejected_at_d3() {
    let ds = dataset(90);
    let p = Params::paper();
    let sys = DiskScheme::new(DistributedScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    for k in [0u64, 1, 3, 10, 448, 450, 999_999] {
        for s in 0..7u64 {
            let out = sys.probe(Key(k), s * cycle / 7 + 2);
            assert!(!out.found, "phantom key {k} slot {s}");
            assert!(!out.aborted);
        }
    }
}

#[test]
fn index_navigation_keeps_tuning_sublinear_at_d3() {
    let ds = dataset(200);
    let p = Params::paper();
    let sys = DiskScheme::new(DistributedScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    let mut acc = 0u64;
    let mut tun = 0u64;
    for k in (0..200u64).step_by(3) {
        let out = sys.probe(Key(k * 5 + 2), k * 131 % cycle);
        assert!(out.found);
        acc += out.access;
        tun += out.tuning;
    }
    // Clients doze through routing and tree descent: tuning ≪ access.
    assert!(tun * 5 < acc, "tuning {tun} vs access {acc}");
}

#[test]
fn lossy_channel_recovery_reroutes_correctly() {
    let ds = dataset(60);
    let p = Params::paper();
    let sys = DiskScheme::new(DistributedScheme::new(), DiskConfig::new(2))
        .build(&ds, &p)
        .unwrap();
    let errors = ErrorModel::new(0.15, 0xB7EE);
    for k in 0..60u64 {
        let out = sys.probe_with_errors(Key(k * 5 + 2), 23 * k, errors);
        assert!(out.found, "key {k} lost under 15% loss");
        assert!(!out.aborted);
    }
    for k in [0u64, 4, 777] {
        let out = sys.probe_with_policy(Key(k), 29, errors, RetryPolicy::bounded(4));
        assert!(!out.found, "phantom key {k} under loss");
    }
}
