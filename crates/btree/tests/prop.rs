//! Property tests for B+-tree layouts: structural invariants of the
//! `(1,m)` and distributed broadcast cycles over arbitrary datasets.

use bda_btree::{BTreePayload, DistributedScheme, OneMScheme};
use bda_core::{Dataset, DynSystem, Key, Params, Record, Scheme, System};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::btree_set(0u64..1 << 48, 1..250)
        .prop_map(|keys| Dataset::new(keys.into_iter().map(Record::keyed).collect()).unwrap())
}

fn arb_params() -> impl Strategy<Value = Params> {
    (5u32..=100).prop_map(|r| Params::with_record_key_ratio(r).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distributed layout: replicated node occurrence counts equal child
    /// counts; non-replicated nodes and records appear exactly once; every
    /// local pointer lands on the bucket it names.
    #[test]
    fn distributed_layout_invariants(ds in arb_dataset(), params in arb_params(), r in 0usize..4) {
        let sys = DistributedScheme::with_r(r).build(&ds, &params).unwrap();
        let ch = sys.channel();
        let tree = bda_btree::IndexTree::build(&ds, params.index_entries_per_bucket()).unwrap();
        let r = sys.r();

        // Occurrence counts.
        let mut idx_counts = std::collections::HashMap::new();
        let mut rec_counts = vec![0u32; ds.len()];
        for b in ch.buckets() {
            match &b.payload {
                BTreePayload::Index(ib) => {
                    *idx_counts.entry((ib.level as usize, ib.node as usize)).or_insert(0u32) += 1;
                }
                BTreePayload::Data(db) => rec_counts[db.record_index as usize] += 1,
            }
        }
        for c in rec_counts {
            prop_assert_eq!(c, 1, "each record broadcast exactly once");
        }
        for l in 0..tree.num_levels() {
            for i in 0..tree.level(l).len() {
                let want = if l < r {
                    tree.node(l, i).num_children() as u32
                } else {
                    1
                };
                prop_assert_eq!(
                    idx_counts.get(&(l, i)).copied().unwrap_or(0),
                    want,
                    "node ({},{}) occurrences", l, i
                );
            }
        }

        // Pointer integrity: every local entry's delta lands on the bucket
        // holding the named child (or record).
        for (bi, b) in ch.buckets().iter().enumerate() {
            if let BTreePayload::Index(ib) = &b.payload {
                let end = ch.end_of(bi);
                for (j, e) in ib.entries.iter().enumerate() {
                    let target_pos = ch.pos(end + e.delta);
                    let (ti, ts) = ch.first_complete_at(target_pos);
                    prop_assert_eq!(ch.pos(ts), target_pos, "pointer bucket-aligned");
                    let _ = ti;
                    match &ch.bucket(ti).payload {
                        BTreePayload::Index(child) => {
                            prop_assert_eq!(child.level, ib.level + 1);
                            prop_assert_eq!(child.max_key, e.max_key);
                        }
                        BTreePayload::Data(db) => {
                            prop_assert_eq!(db.key, e.max_key, "leaf entry j={}", j);
                        }
                    }
                }
            }
        }
    }

    /// `(1,m)`: index copies equal m, every key findable, absent keys fail
    /// within k+1 probes.
    #[test]
    fn one_m_layout_invariants(
        ds in arb_dataset(),
        params in arb_params(),
        m in 1usize..12,
        t in 0u64..1 << 40,
    ) {
        let sys = OneMScheme::with_m(m).build(&ds, &params).unwrap();
        let m_eff = sys.m();
        prop_assert_eq!(
            bda_core::DynSystem::num_buckets(&sys),
            m_eff * sys.index_buckets_per_copy() + ds.len()
        );
        let key = ds.record(ds.len() / 2).key;
        prop_assert!(sys.probe(key, t).found);
        let miss = sys.probe(Key(key.value() ^ 1), t);
        prop_assert!(!miss.found);
        prop_assert!(miss.probes as usize <= sys.num_levels() + 2);
    }
}
