//! Flag parsing for `bda-cli` (std-only, no dependencies).

/// Usage text.
pub const USAGE: &str = "\
bda-cli — explore wireless broadcast data access

USAGE:
    bda-cli <command> [flags]

COMMANDS:
    inspect    print a scheme's broadcast-cycle layout statistics
    trace      print the bucket-by-bucket timeline of one client query
    compare    run a quick simulation of every scheme side by side
    simulate   run the full testbed for one scheme to convergence

FLAGS:
    --scheme NAME        flat | one-m | distributed | hashing | signature |
                         integrated-signature | multilevel-signature
                         (default distributed)
    --records N          dataset size (default 1000)
    --ratio R            record/key ratio 5..=100 (default 20, paper Table 1)
    --seed S             dataset/workload seed (default 2002)
    --key-index I        which record to query, by key order (trace; default N/2)
    --key K              query this raw key value instead (trace)
    --tune-in T          absolute tune-in time in bytes (trace; default 12345)
    --availability P     percent of queries answerable (compare/simulate; default 100)
    --loss P             bucket loss percent on an error-prone channel
                         (trace/compare/simulate; default 0)
    --burst P,Q[,LG,LB]  bursty Gilbert–Elliott channel instead of i.i.d.
                         loss: per-bucket good→bad percent P, bad→good
                         percent Q, loss percent LG in good state (default
                         0) and LB in bad state (default 100); mutually
                         exclusive with --loss (trace/compare/simulate)
    --outage RATE,LEN    periodic outage windows: RATE percent of air time
                         is unusable, in spans of LEN bytes at a
                         seed-jittered position per frame; composes with
                         --loss or --burst (trace/compare/simulate)
    --retry N            give up a query after N corrupted reads
                         (trace/compare/simulate; default: retry forever)
    --update-rate P      percent of records inserted/deleted/updated per
                         broadcast cycle — dynamic broadcast program with
                         versioned cycles (compare/simulate; default 0 =
                         frozen program)
    --disks D            broadcast disks: stratify the program over D
                         popularity-ranked disks with relative spin speeds;
                         hot records repeat every minor cycle (flat |
                         signature | hashing | distributed; default 1 =
                         unstratified, bit-identical to the flat cycle)
    --channels K         multichannel broadcast: stripe the program over K
                         synchronized channels at equal aggregate bandwidth
                         — every per-channel byte airs K× slower, clients
                         retune to the channel that carries their key
                         (inspect/compare/simulate; default 1 = the single
                         channel, bit-identical to no flag)
    --switch-cost S      air time one channel retune costs the client, in
                         bytes (with --channels; default 0)
    --accuracy A         confidence accuracy target (simulate; default 0.02)
    --shards N           worker shards for the event-driven testbed: each
                         round is partitioned across N per-core engines
                         and merged deterministically — reports are
                         bit-identical for every N (simulate; default 1)
    --json               machine-readable output: one bda-trace/v1 JSON
                         document instead of the human timeline (trace)
    --metrics-out PATH   run with the observability layer on and write the
                         run's metrics (compare/simulate): PATH ending in
                         .prom gets Prometheus text, anything else the
                         bda-obs/v1 JSON document (compare always writes
                         Prometheus text, one family set per scheme)
    --timeline-out PATH  write a bda-obs/trace/v1 Perfetto/Chrome trace of
                         the run: windowed counter lanes plus span
                         timelines for a seed-sampled subset of requests
                         (simulate: one process; compare: one process per
                         scheme) — open in ui.perfetto.dev or about:tracing
    --perfetto           render the query timeline as a bda-obs/trace/v1
                         Perfetto/Chrome JSON document instead of the
                         human rendering or bda-trace/v1 (trace)
";

/// Parsed flags with defaults.
#[derive(Debug, Clone)]
pub struct Options {
    /// Scheme name.
    pub scheme: String,
    /// Dataset size.
    pub records: usize,
    /// Record/key ratio.
    pub ratio: u32,
    /// Seed.
    pub seed: u64,
    /// Record index to query.
    pub key_index: Option<usize>,
    /// Raw key to query.
    pub key: Option<u64>,
    /// Tune-in time.
    pub tune_in: u64,
    /// Availability percentage.
    pub availability: f64,
    /// Bucket loss percentage.
    pub loss: f64,
    /// Gilbert–Elliott burst channel `(p_good_to_bad, p_bad_to_good,
    /// loss_good, loss_bad)`, all in percent (None = i.i.d. `--loss`).
    pub burst: Option<(f64, f64, f64, f64)>,
    /// Periodic outage windows `(rate_percent, len_bytes)` (None = no
    /// outages).
    pub outage: Option<(f64, u64)>,
    /// Max corrupted reads tolerated before abandoning (None = forever).
    pub retry: Option<u32>,
    /// Percent of records updated per broadcast cycle (0 = frozen).
    pub update_rate: f64,
    /// Broadcast-disk stratification depth (1 = unstratified).
    pub disks: usize,
    /// Multichannel group width (1 = single channel).
    pub channels: u32,
    /// Air time one channel retune costs the client, in bytes.
    pub switch_cost: u64,
    /// Accuracy target.
    pub accuracy: f64,
    /// Worker shards for the event-driven testbed (simulate).
    pub shards: usize,
    /// Emit machine-readable JSON instead of the human rendering (trace).
    pub json: bool,
    /// Where to write run metrics (compare/simulate; None = don't observe).
    pub metrics_out: Option<String>,
    /// Where to write a Perfetto/Chrome trace of the run
    /// (compare/simulate; None = don't trace).
    pub timeline_out: Option<String>,
    /// Emit the query timeline as a Perfetto/Chrome JSON document (trace).
    pub perfetto: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scheme: "distributed".into(),
            records: 1_000,
            ratio: 20,
            seed: 2002,
            key_index: None,
            key: None,
            tune_in: 12_345,
            availability: 100.0,
            loss: 0.0,
            burst: None,
            outage: None,
            retry: None,
            update_rate: 0.0,
            disks: 1,
            channels: 1,
            switch_cost: 0,
            accuracy: 0.02,
            shards: 1,
            json: false,
            metrics_out: None,
            timeline_out: None,
            perfetto: false,
        }
    }
}

impl Options {
    /// Parse `--flag value` pairs.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut o = Options::default();
        let mut loss_set = false;
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut val = || -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--scheme" => o.scheme = val()?.clone(),
                "--records" => o.records = parse_num(flag, val()?)?,
                "--ratio" => o.ratio = parse_num(flag, val()?)?,
                "--seed" => o.seed = parse_num(flag, val()?)?,
                "--key-index" => o.key_index = Some(parse_num(flag, val()?)?),
                "--key" => o.key = Some(parse_num(flag, val()?)?),
                "--tune-in" => o.tune_in = parse_num(flag, val()?)?,
                "--availability" => o.availability = parse_num(flag, val()?)?,
                "--loss" => {
                    o.loss = parse_num(flag, val()?)?;
                    loss_set = true;
                }
                "--burst" => {
                    let parts = parse_list(flag, val()?)?;
                    o.burst = Some(match parts.as_slice() {
                        [p, q] => (*p, *q, 0.0, 100.0),
                        [p, q, lg] => (*p, *q, *lg, 100.0),
                        [p, q, lg, lb] => (*p, *q, *lg, *lb),
                        _ => return Err("--burst wants P,Q[,LG,LB]".into()),
                    });
                }
                "--outage" => {
                    let parts = parse_list(flag, val()?)?;
                    match parts.as_slice() {
                        [rate, len] if *len >= 1.0 && len.fract() == 0.0 => {
                            o.outage = Some((*rate, *len as u64));
                        }
                        _ => return Err("--outage wants RATE,LEN (LEN whole bytes >= 1)".into()),
                    }
                }
                "--retry" => o.retry = Some(parse_num(flag, val()?)?),
                "--update-rate" => o.update_rate = parse_num(flag, val()?)?,
                "--disks" => o.disks = parse_num(flag, val()?)?,
                "--channels" => o.channels = parse_num(flag, val()?)?,
                "--switch-cost" => o.switch_cost = parse_num(flag, val()?)?,
                "--accuracy" => o.accuracy = parse_num(flag, val()?)?,
                "--shards" => o.shards = parse_num(flag, val()?)?,
                "--json" => o.json = true,
                "--metrics-out" => o.metrics_out = Some(val()?.clone()),
                "--timeline-out" => o.timeline_out = Some(val()?.clone()),
                "--perfetto" => o.perfetto = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.records == 0 {
            return Err("--records must be positive".into());
        }
        if !(0.0..=100.0).contains(&o.availability) {
            return Err("--availability must be 0..=100".into());
        }
        if !(0.0..=100.0).contains(&o.loss) {
            return Err("--loss must be 0..=100".into());
        }
        if loss_set && o.burst.is_some() {
            return Err("--loss and --burst are mutually exclusive: pick one loss model".into());
        }
        if let Some((p, q, lg, lb)) = o.burst {
            for (name, v) in [("P", p), ("Q", q), ("LG", lg), ("LB", lb)] {
                if !(0.0..=100.0).contains(&v) {
                    return Err(format!("--burst {name} must be 0..=100"));
                }
            }
        }
        if let Some((rate, _len)) = o.outage {
            if !(0.0 < rate && rate <= 100.0) {
                return Err("--outage RATE must be in (0, 100]".into());
            }
        }
        if !(0.0..=100.0).contains(&o.update_rate) {
            return Err("--update-rate must be 0..=100".into());
        }
        if o.shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        if o.disks == 0 || o.disks > 8 {
            return Err("--disks must be 1..=8".into());
        }
        if o.channels == 0 || o.channels > 64 {
            return Err("--channels must be 1..=64".into());
        }
        if o.channels > 1 && o.disks > 1 {
            return Err(
                "--channels and --disks are mutually exclusive: stripe or stratify, not both"
                    .into(),
            );
        }
        if o.json && o.perfetto {
            return Err("--json and --perfetto are mutually exclusive: pick one rendering".into());
        }
        Ok(o)
    }

    /// The error model these flags select.
    pub fn error_model(&self) -> bda_core::ErrorModel {
        bda_core::ErrorModel::new(self.loss / 100.0, self.seed ^ 0xE7)
    }

    /// The full channel model these flags select: `--burst` picks a
    /// Gilbert–Elliott loss process (else the i.i.d. `--loss` model), and
    /// `--outage RATE,LEN` composes periodic unusable windows on top.
    /// With neither flag this is bit-identical to the i.i.d. path.
    pub fn channel_model(&self) -> bda_core::ChannelModel {
        let mut ch = match self.burst {
            Some((p, q, lg, lb)) => bda_core::ChannelModel::burst(bda_core::BurstModel::new(
                p / 100.0,
                q / 100.0,
                lg / 100.0,
                lb / 100.0,
                self.seed ^ 0xB5,
            )),
            None => bda_core::ChannelModel::iid(self.error_model()),
        };
        if let Some((rate, len)) = self.outage {
            // RATE percent of air time down in spans of `len` bytes: one
            // span per frame of `len * 100 / RATE` bytes.
            let every = ((len as f64) * 100.0 / rate).round() as u64;
            ch = ch.with_outages(bda_core::OutageSchedule::new(
                every.max(len),
                len,
                self.seed ^ 0x0A7,
            ));
        }
        ch
    }

    /// The client retry policy these flags select.
    pub fn retry_policy(&self) -> bda_core::RetryPolicy {
        match self.retry {
            Some(n) => bda_core::RetryPolicy::bounded(n),
            None => bda_core::RetryPolicy::UNBOUNDED,
        }
    }

    /// The broadcast-disk stratification these flags select (`None` =
    /// unstratified flat cycle; `--disks 1` is the same program
    /// bit for bit, so it also maps to `None`).
    pub fn disk_config(&self) -> Option<bda_core::DiskConfig> {
        (self.disks > 1).then(|| bda_core::DiskConfig::new(self.disks))
    }

    /// The multichannel group these flags select (`None` = single
    /// channel; `--channels 1` is the same program bit for bit — a lone
    /// home channel never retunes — so it also maps to `None`).
    pub fn group_config(&self) -> Option<bda_core::GroupConfig> {
        (self.channels > 1).then(|| {
            bda_core::GroupConfig::new(self.channels, self.switch_cost)
                .expect("range-checked by parse")
        })
    }

    /// The dynamic-broadcast update stream these flags select (`None` =
    /// frozen program, the paper's static broadcast).
    pub fn update_spec(&self) -> Option<bda_sim::UpdateSpec> {
        (self.update_rate > 0.0).then(|| bda_sim::UpdateSpec {
            rate: self.update_rate / 100.0,
            seed: self.seed ^ 0x0DD,
            horizon_cycles: 64,
        })
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

fn parse_list(flag: &str, s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|part| parse_num(flag, part.trim()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scheme, "distributed");
        assert_eq!(o.records, 1_000);
        assert_eq!(o.ratio, 20);
    }

    #[test]
    fn flags_override() {
        let o = parse(&[
            "--scheme",
            "hashing",
            "--records",
            "42",
            "--tune-in",
            "9",
            "--loss",
            "2.5",
        ])
        .unwrap();
        assert_eq!(o.scheme, "hashing");
        assert_eq!(o.records, 42);
        assert_eq!(o.tune_in, 9);
        assert!((o.loss - 2.5).abs() < 1e-12);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--records"]).is_err());
        assert!(parse(&["--records", "zero"]).is_err());
        assert!(parse(&["--records", "0"]).is_err());
        assert!(parse(&["--availability", "150"]).is_err());
        assert!(parse(&["--loss", "120"]).is_err());
        assert!(parse(&["--update-rate", "101"]).is_err());
        assert!(parse(&["--update-rate", "-1"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--bogus", "1"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let o = parse(&["--json", "--metrics-out", "run.prom"]).unwrap();
        assert!(o.json);
        assert_eq!(o.metrics_out.as_deref(), Some("run.prom"));
        let d = parse(&[]).unwrap();
        assert!(!d.json);
        assert!(d.metrics_out.is_none());
        assert!(parse(&["--metrics-out"]).is_err());
    }

    #[test]
    fn timeline_flags_parse() {
        let o = parse(&["--timeline-out", "run.trace.json", "--perfetto"]).unwrap();
        assert_eq!(o.timeline_out.as_deref(), Some("run.trace.json"));
        assert!(o.perfetto);
        let d = parse(&[]).unwrap();
        assert!(d.timeline_out.is_none());
        assert!(!d.perfetto);
        assert!(parse(&["--timeline-out"]).is_err());
        // One rendering per trace: the two machine formats conflict.
        assert!(parse(&["--json", "--perfetto"]).is_err());
    }

    #[test]
    fn shards_flag_parses() {
        assert_eq!(parse(&[]).unwrap().shards, 1);
        assert_eq!(parse(&["--shards", "8"]).unwrap().shards, 8);
        assert!(parse(&["--shards"]).is_err());
    }

    #[test]
    fn disks_flag_parses_and_maps() {
        assert_eq!(parse(&[]).unwrap().disks, 1);
        assert!(parse(&[]).unwrap().disk_config().is_none());
        let o = parse(&["--disks", "3"]).unwrap();
        assert_eq!(o.disks, 3);
        assert_eq!(o.disk_config().map(|d| d.disks()), Some(3));
        // D=1 is the unstratified program — no wrapper needed.
        assert!(parse(&["--disks", "1"]).unwrap().disk_config().is_none());
        assert!(parse(&["--disks", "0"]).is_err());
        assert!(parse(&["--disks", "9"]).is_err());
        assert!(parse(&["--disks"]).is_err());
    }

    #[test]
    fn channels_flags_parse_and_map() {
        assert_eq!(parse(&[]).unwrap().channels, 1);
        assert!(parse(&[]).unwrap().group_config().is_none());
        let o = parse(&["--channels", "4", "--switch-cost", "256"]).unwrap();
        assert_eq!((o.channels, o.switch_cost), (4, 256));
        let g = o.group_config().expect("K=4 is grouped");
        assert_eq!((g.channels, g.switch_cost), (4, 256));
        // K=1 is the single-channel program — no wrapper needed, and a
        // switch cost is moot on a lone home channel.
        let one = parse(&["--channels", "1", "--switch-cost", "999"]).unwrap();
        assert!(one.group_config().is_none());
        assert!(parse(&["--channels", "0"]).is_err());
        assert!(parse(&["--channels", "65"]).is_err());
        assert!(parse(&["--channels"]).is_err());
        assert!(parse(&["--switch-cost"]).is_err());
        // Striping a stratified program is not a thing: pick one axis.
        assert!(parse(&["--channels", "2", "--disks", "3"]).is_err());
        assert!(parse(&["--channels", "1", "--disks", "3"]).is_ok());
    }

    #[test]
    fn update_rate_maps_to_spec() {
        let o = parse(&["--update-rate", "5", "--seed", "9"]).unwrap();
        let spec = o.update_spec().expect("5% is dynamic");
        assert!((spec.rate - 0.05).abs() < 1e-12);
        assert_eq!(spec.seed, 9 ^ 0x0DD);
        assert_eq!(spec.horizon_cycles, 64);
        // Default: frozen program.
        assert!(parse(&[]).unwrap().update_spec().is_none());
    }

    #[test]
    fn burst_flag_parses_and_maps() {
        let o = parse(&["--burst", "2,10", "--seed", "7"]).unwrap();
        assert_eq!(o.burst, Some((2.0, 10.0, 0.0, 100.0)));
        let ch = o.channel_model();
        // A burst channel is not reducible to the i.i.d. model.
        assert!(ch.as_iid().is_none());
        assert!(!ch.has_outages());
        // Defaults: LG=0, LB=100 — the classic Gilbert channel.
        let full = parse(&["--burst", "2,10,1,80"]).unwrap();
        assert_eq!(full.burst, Some((2.0, 10.0, 1.0, 80.0)));
        // Malformed tuples are rejected.
        assert!(parse(&["--burst", "2"]).is_err());
        assert!(parse(&["--burst", "2,10,1,80,9"]).is_err());
        assert!(parse(&["--burst", "2,nope"]).is_err());
        assert!(parse(&["--burst", "2,101"]).is_err());
        assert!(parse(&["--burst"]).is_err());
    }

    #[test]
    fn loss_and_burst_are_mutually_exclusive() {
        assert!(parse(&["--loss", "10", "--burst", "2,10"]).is_err());
        assert!(parse(&["--burst", "2,10", "--loss", "10"]).is_err());
        // Even an explicit zero loss conflicts: the user picked two models.
        assert!(parse(&["--loss", "0", "--burst", "2,10"]).is_err());
        // Each alone is fine.
        assert!(parse(&["--loss", "10"]).is_ok());
        assert!(parse(&["--burst", "2,10"]).is_ok());
    }

    #[test]
    fn outage_flag_parses_and_maps() {
        let o = parse(&["--outage", "5,200", "--seed", "3"]).unwrap();
        assert_eq!(o.outage, Some((5.0, 200)));
        let ch = o.channel_model();
        assert!(ch.has_outages());
        // RATE=5%, LEN=200 → one 200-byte span per 4000-byte frame.
        assert!((ch.outages.fraction() - 0.05).abs() < 1e-9);
        // Composes with burst loss.
        let both = parse(&["--burst", "2,10", "--outage", "5,200"]).unwrap();
        let ch = both.channel_model();
        assert!(ch.has_outages());
        assert!(ch.as_iid().is_none());
        // Malformed tuples are rejected.
        assert!(parse(&["--outage", "5"]).is_err());
        assert!(parse(&["--outage", "0,200"]).is_err());
        assert!(parse(&["--outage", "101,200"]).is_err());
        assert!(parse(&["--outage", "5,0"]).is_err());
        assert!(parse(&["--outage", "5,2.5"]).is_err());
        assert!(parse(&["--outage"]).is_err());
    }

    #[test]
    fn default_channel_is_degenerate_iid() {
        let o = parse(&["--loss", "10", "--seed", "1"]).unwrap();
        // Without --burst/--outage the channel reduces to the exact
        // i.i.d. model — same seed, same draws, bit-identical walks.
        assert_eq!(o.channel_model().as_iid(), Some(o.error_model()));
        let d = parse(&[]).unwrap();
        assert_eq!(d.channel_model().as_iid(), Some(d.error_model()));
    }

    #[test]
    fn fault_flags_map_to_model_and_policy() {
        let o = parse(&["--loss", "10", "--retry", "3", "--seed", "1"]).unwrap();
        assert!((o.error_model().loss_prob - 0.10).abs() < 1e-12);
        assert_eq!(o.retry_policy(), bda_core::RetryPolicy::bounded(3));
        // Default: lossless, retry forever.
        let d = parse(&[]).unwrap();
        assert_eq!(
            d.error_model(),
            bda_core::ErrorModel::new(0.0, d.seed ^ 0xE7)
        );
        assert_eq!(d.retry_policy(), bda_core::RetryPolicy::UNBOUNDED);
    }
}
