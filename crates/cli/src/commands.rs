//! The four `bda-cli` commands.

use bda_btree::{DistributedScheme, OneMScheme};
use bda_core::{
    Dataset, DiskConfig, DiskScheme, DynSystem, FlatDisksScheme, GroupConfig, Key, Params, Scheme,
    StripedScheme, System,
};
use bda_datagen::{DatasetBuilder, Popularity, QueryWorkload};
use bda_hash::HashScheme;
use bda_hybrid::HybridScheme;
use bda_obs::{export, MetricsHub, TraceBuilder};
use bda_signature::{
    IntegratedSignatureScheme, MultiLevelSignatureScheme, SimpleSignatureDisksScheme,
    SimpleSignatureScheme,
};
use bda_sim::{SimConfig, Simulator, StripedVersionedServer, UpdateSpec, VersionedServer};

use crate::args::Options;
use crate::trace::{describe, trace_query_channel, Trace};

const SCHEMES: [&str; 8] = [
    "flat",
    "one-m",
    "distributed",
    "hashing",
    "signature",
    "integrated-signature",
    "multilevel-signature",
    "hybrid",
];

/// The schemes with a broadcast-disk (stratified) construction.
const DISK_SCHEMES: [&str; 4] = ["flat", "signature", "hashing", "distributed"];

/// Trace sampling for `--timeline-out`: XOR'd into `--seed` to pick which
/// requests get replayed span timelines (see [`bda_obs::sample_indices`]),
/// and how many per scheme.
const TRACE_SAMPLE_SEED: u64 = 0x7ACE;
const TRACE_SAMPLE_K: usize = 8;

fn params(o: &Options) -> Result<Params, String> {
    Params::with_record_key_ratio(o.ratio).map_err(|e| e.to_string())
}

fn dataset(o: &Options) -> Result<(Dataset, Vec<Key>), String> {
    DatasetBuilder::new(o.records, o.seed)
        .build_with_absent_pool(o.records)
        .map_err(|e| e.to_string())
}

/// Build the stratified (broadcast-disk) variant of a scheme, or explain
/// which schemes support stratification.
fn build_disks(
    name: &str,
    ds: &Dataset,
    p: &Params,
    d: DiskConfig,
) -> Result<Box<dyn DynSystem>, String> {
    let sys: Box<dyn DynSystem> = match name {
        "flat" => Box::new(
            FlatDisksScheme::new(d)
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "signature" => Box::new(
            SimpleSignatureDisksScheme::new(d)
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "hashing" => Box::new(
            DiskScheme::new(HashScheme::new(), d)
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "distributed" => Box::new(
            DiskScheme::new(DistributedScheme::new(), d)
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        other => {
            return Err(format!(
                "scheme {other:?} has no broadcast-disk construction (try: {})",
                DISK_SCHEMES.join(", ")
            ))
        }
    };
    Ok(sys)
}

/// Build the striped multichannel variant of a scheme: the dataset is
/// split into `config.channels` contiguous slices, each broadcast as a
/// self-contained inner program on its own channel at equal aggregate
/// bandwidth, with the routing directory on channel 0.
fn build_striped(
    name: &str,
    ds: &Dataset,
    p: &Params,
    config: GroupConfig,
) -> Result<Box<dyn DynSystem>, String> {
    fn s<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        config: GroupConfig,
    ) -> Result<Box<dyn DynSystem>, String>
    where
        Sch::System: 'static,
        <Sch::System as System>::Machine: 'static,
    {
        Ok(Box::new(
            StripedScheme::new(scheme, config)
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ))
    }
    match name {
        "flat" => s(bda_core::FlatScheme, ds, p, config),
        "one-m" | "(1,m)" => s(OneMScheme::new(), ds, p, config),
        "distributed" => s(DistributedScheme::new(), ds, p, config),
        "hashing" => s(HashScheme::new(), ds, p, config),
        "signature" => s(SimpleSignatureScheme::new(), ds, p, config),
        "integrated-signature" => s(IntegratedSignatureScheme::default(), ds, p, config),
        "multilevel-signature" => s(MultiLevelSignatureScheme::default(), ds, p, config),
        "hybrid" => s(HybridScheme::new(), ds, p, config),
        other => Err(format!(
            "unknown scheme {other:?} (try: {})",
            SCHEMES.join(", ")
        )),
    }
}

fn build_dyn(
    name: &str,
    ds: &Dataset,
    p: &Params,
    disks: Option<DiskConfig>,
    group: Option<GroupConfig>,
) -> Result<Box<dyn DynSystem>, String> {
    if let Some(g) = group {
        return build_striped(name, ds, p, g);
    }
    if let Some(d) = disks {
        return build_disks(name, ds, p, d);
    }
    let sys: Box<dyn DynSystem> = match name {
        "flat" => Box::new(
            bda_core::FlatScheme
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "one-m" | "(1,m)" => Box::new(OneMScheme::new().build(ds, p).map_err(|e| e.to_string())?),
        "distributed" => Box::new(
            DistributedScheme::new()
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "hashing" => Box::new(HashScheme::new().build(ds, p).map_err(|e| e.to_string())?),
        "signature" => Box::new(
            SimpleSignatureScheme::new()
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "integrated-signature" => Box::new(
            IntegratedSignatureScheme::default()
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "multilevel-signature" => Box::new(
            MultiLevelSignatureScheme::default()
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        "hybrid" => Box::new(
            HybridScheme::new()
                .build(ds, p)
                .map_err(|e| e.to_string())?,
        ),
        other => {
            return Err(format!(
                "unknown scheme {other:?} (try: {})",
                SCHEMES.join(", ")
            ))
        }
    };
    Ok(sys)
}

/// Build a dynamic broadcast server for `name`: the scheme's program is
/// rebuilt (with a bumped cycle version) after every cycle the update
/// stream changes the dataset.
fn build_versioned(
    name: &str,
    ds: &Dataset,
    p: &Params,
    spec: UpdateSpec,
    disks: Option<DiskConfig>,
    group: Option<GroupConfig>,
) -> Result<Box<dyn DynSystem>, String> {
    fn vs<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        config: GroupConfig,
        spec: UpdateSpec,
    ) -> Result<Box<dyn DynSystem>, String>
    where
        Sch::System: 'static,
        <Sch::System as System>::Machine: 'static,
    {
        Ok(Box::new(
            StripedVersionedServer::build(&scheme, ds, p, config, spec)
                .map_err(|e| e.to_string())?,
        ))
    }
    if let Some(g) = group {
        // A churning multichannel group: one versioned server per
        // channel, churn streams decorrelated per channel.
        return match name {
            "flat" => vs(bda_core::FlatScheme, ds, p, g, spec),
            "one-m" | "(1,m)" => vs(OneMScheme::new(), ds, p, g, spec),
            "distributed" => vs(DistributedScheme::new(), ds, p, g, spec),
            "hashing" => vs(HashScheme::new(), ds, p, g, spec),
            "signature" => vs(SimpleSignatureScheme::new(), ds, p, g, spec),
            "integrated-signature" => vs(IntegratedSignatureScheme::default(), ds, p, g, spec),
            "multilevel-signature" => vs(MultiLevelSignatureScheme::default(), ds, p, g, spec),
            "hybrid" => vs(HybridScheme::new(), ds, p, g, spec),
            other => Err(format!(
                "unknown scheme {other:?} (try: {})",
                SCHEMES.join(", ")
            )),
        };
    }
    fn v<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        spec: UpdateSpec,
    ) -> Result<Box<dyn DynSystem>, String>
    where
        Sch::System: 'static,
        <Sch::System as System>::Machine: 'static,
    {
        Ok(Box::new(
            VersionedServer::build(&scheme, ds, p, spec).map_err(|e| e.to_string())?,
        ))
    }
    if let Some(d) = disks {
        return match name {
            "flat" => v(FlatDisksScheme::new(d), ds, p, spec),
            "signature" => v(SimpleSignatureDisksScheme::new(d), ds, p, spec),
            "hashing" => v(DiskScheme::new(HashScheme::new(), d), ds, p, spec),
            "distributed" => v(DiskScheme::new(DistributedScheme::new(), d), ds, p, spec),
            other => Err(format!(
                "scheme {other:?} has no broadcast-disk construction (try: {})",
                DISK_SCHEMES.join(", ")
            )),
        };
    }
    match name {
        "flat" => v(bda_core::FlatScheme, ds, p, spec),
        "one-m" | "(1,m)" => v(OneMScheme::new(), ds, p, spec),
        "distributed" => v(DistributedScheme::new(), ds, p, spec),
        "hashing" => v(HashScheme::new(), ds, p, spec),
        "signature" => v(SimpleSignatureScheme::new(), ds, p, spec),
        "integrated-signature" => v(IntegratedSignatureScheme::default(), ds, p, spec),
        "multilevel-signature" => v(MultiLevelSignatureScheme::default(), ds, p, spec),
        "hybrid" => v(HybridScheme::new(), ds, p, spec),
        other => Err(format!(
            "unknown scheme {other:?} (try: {})",
            SCHEMES.join(", ")
        )),
    }
}

/// Frozen system or dynamic server, per the `--update-rate` flag.
fn build_system(
    o: &Options,
    name: &str,
    ds: &Dataset,
    p: &Params,
) -> Result<Box<dyn DynSystem>, String> {
    match o.update_spec() {
        Some(spec) => build_versioned(name, ds, p, spec, o.disk_config(), o.group_config()),
        None => build_dyn(name, ds, p, o.disk_config(), o.group_config()),
    }
}

/// `bda-cli inspect` — layout statistics for one scheme.
pub fn inspect(o: &Options) -> Result<(), String> {
    let p = params(o)?;
    let (ds, _) = dataset(o)?;
    let sys = build_dyn(&o.scheme, &ds, &p, o.disk_config(), o.group_config())?;
    let cycle = sys.cycle_len();
    let buckets = sys.num_buckets();
    let data_bytes = ds.len() as u64 * u64::from(p.data_bucket_size());
    println!("scheme            : {}", sys.scheme_name());
    println!("records           : {}", ds.len());
    println!(
        "record/key ratio  : {} ({}B / {}B)",
        p.record_key_ratio(),
        p.record_size,
        p.key_size
    );
    println!("buckets per cycle : {buckets}");
    println!("cycle length      : {cycle} bytes");
    println!(
        "index overhead    : {:.2}% ({} bytes beyond raw data)",
        100.0 * (cycle.saturating_sub(data_bytes)) as f64 / cycle as f64,
        cycle.saturating_sub(data_bytes),
    );

    if let Some(g) = o.group_config() {
        println!(
            "channels          : {} (per-channel bytes air {}× slower — equal aggregate bandwidth)",
            g.channels, g.channels
        );
        println!("switch cost       : {} bytes per retune", g.switch_cost);
        // The typed per-scheme stats below describe the single-channel
        // build; skip them for a channel group.
        return Ok(());
    }
    if let Some(d) = o.disk_config() {
        let layout = bda_core::DiskLayout::new(ds.len(), &d);
        println!(
            "broadcast disks   : {} requested, {} effective",
            d.disks(),
            layout.effective_disks()
        );
        println!(
            "minor cycles      : {}",
            layout.schedule().num_minor_cycles()
        );
        println!(
            "occurrences/cycle : {} ({} records, hot ones repeated)",
            layout.schedule().num_occurrences(),
            ds.len()
        );
        // The typed per-scheme stats below describe the unstratified
        // build; skip them for a stratified program.
        return Ok(());
    }
    // Scheme-specific details where the typed system exposes them.
    match o.scheme.as_str() {
        "distributed" => {
            let sys = DistributedScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            println!("tree levels (k)   : {}", sys.num_levels());
            println!("replicated levels : {} (optimal)", sys.r());
            println!("index segments    : {}", sys.num_segments());
        }
        "one-m" | "(1,m)" => {
            let sys = OneMScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            println!("tree levels (k)   : {}", sys.num_levels());
            println!("data segments (m) : {} (optimal)", sys.m());
            println!("index buckets/copy: {}", sys.index_buckets_per_copy());
        }
        "hashing" => {
            let sys = HashScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            println!("allocated (Na)    : {}", sys.na());
            println!("collisions (Nc)   : {}", sys.num_collisions());
            println!("empty slots       : {}", sys.num_empty());
        }
        _ => {}
    }
    Ok(())
}

/// The channel-fault fragment of a report header: i.i.d. loss, burst
/// parameters, and outage windows, whichever the flags selected.
fn fault_note(o: &Options) -> String {
    let mut note = String::new();
    if let Some((p, q, lg, lb)) = o.burst {
        note.push_str(&format!(" · burst loss {p}%→bad/{q}%→good ({lg}%/{lb}%)"));
    } else if o.loss > 0.0 {
        note.push_str(&format!(" · {}% bucket loss", o.loss));
    }
    if let Some((rate, len)) = o.outage {
        note.push_str(&format!(" · {rate}% outage in {len}B windows"));
    }
    note
}

/// `bda-cli trace` — bucket-by-bucket timeline of one query.
pub fn trace(o: &Options) -> Result<(), String> {
    if o.group_config().is_some() {
        return Err(
            "trace renders a single broadcast channel — drop --channels \
             (inspect, compare and simulate support channel groups)"
                .into(),
        );
    }
    let p = params(o)?;
    let (ds, _) = dataset(o)?;
    let key = match (o.key, o.key_index) {
        (Some(k), _) => Key(k),
        (None, Some(i)) => {
            ds.records()
                .get(i)
                .ok_or_else(|| format!("--key-index {i} out of range (0..{})", ds.len()))?
                .key
        }
        (None, None) => ds.record(ds.len() / 2).key,
    };
    let faults = o.channel_model();
    let policy = o.retry_policy();
    if !o.json && !o.perfetto {
        println!(
            "# {} · {} records · query {} · tune-in {}{}{}\n",
            o.scheme,
            ds.len(),
            key,
            o.tune_in,
            fault_note(o),
            match o.retry {
                Some(n) => format!(" · give up after {n} retries"),
                None => String::new(),
            }
        );
    }
    if let Some(d) = o.disk_config() {
        let t: Trace = match o.scheme.as_str() {
            "flat" => {
                let sys = FlatDisksScheme::new(d)
                    .build(&ds, &p)
                    .map_err(|e| e.to_string())?;
                trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::flat)
            }
            "signature" => {
                let sys = SimpleSignatureDisksScheme::new(d)
                    .build(&ds, &p)
                    .map_err(|e| e.to_string())?;
                trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::sig)
            }
            "hashing" => {
                let sys = DiskScheme::new(HashScheme::new(), d)
                    .build(&ds, &p)
                    .map_err(|e| e.to_string())?;
                trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::hash)
            }
            "distributed" => {
                let sys = DiskScheme::new(DistributedScheme::new(), d)
                    .build(&ds, &p)
                    .map_err(|e| e.to_string())?;
                trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::btree)
            }
            other => {
                return Err(format!(
                    "scheme {other:?} has no broadcast-disk construction (try: {})",
                    DISK_SCHEMES.join(", ")
                ))
            }
        };
        return finish_trace(o, t, key);
    }
    let t: Trace = match o.scheme.as_str() {
        "flat" => {
            let sys = bda_core::FlatScheme
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::flat)
        }
        "one-m" | "(1,m)" => {
            let sys = OneMScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::btree)
        }
        "distributed" => {
            let sys = DistributedScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::btree)
        }
        "hashing" => {
            let sys = HashScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::hash)
        }
        "signature" => {
            let sys = SimpleSignatureScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::sig)
        }
        "integrated-signature" => {
            let sys = IntegratedSignatureScheme::default()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::sig)
        }
        "multilevel-signature" => {
            let sys = MultiLevelSignatureScheme::default()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::sig)
        }
        "hybrid" => {
            let sys = HybridScheme::new()
                .build(&ds, &p)
                .map_err(|e| e.to_string())?;
            trace_query_channel(&sys, key, o.tune_in, faults, policy, describe::hybrid)
        }
        other => {
            return Err(format!(
                "unknown scheme {other:?} (try: {})",
                SCHEMES.join(", ")
            ))
        }
    };
    finish_trace(o, t, key)
}

/// Render a finished trace (shared by the flat-cycle and broadcast-disk
/// paths) and surface protocol aborts as errors.
fn finish_trace(o: &Options, t: Trace, key: Key) -> Result<(), String> {
    if o.perfetto {
        // The same observed walk as `--json`, rendered as a
        // `bda-obs/trace/v1` Perfetto document: one enclosing query span
        // and one nested span per protocol step (phase-named, with its
        // byte deltas and corruption cause as args).
        let mut trace = TraceBuilder::new();
        trace.process_name(1, &o.scheme);
        trace.thread_name(1, 0, &format!("query key {}", key.0));
        trace.span(
            1,
            0,
            "query",
            o.tune_in,
            t.outcome.access,
            &[
                ("key", key.0),
                ("tuning", t.outcome.tuning),
                ("retries", u64::from(t.outcome.retries)),
                ("found", u64::from(t.outcome.found)),
            ],
        );
        for e in &t.events {
            trace.span(
                1,
                0,
                e.phase.name(),
                e.t - e.access,
                e.access,
                &[
                    ("tuning", e.tuning),
                    ("corrupt", u64::from(e.corrupt)),
                    ("outage", u64::from(e.outage)),
                ],
            );
        }
        let doc = trace.finish();
        debug_assert!(bda_obs::validate_trace(&doc).is_ok());
        println!("{doc}");
    } else if o.json {
        // One machine-readable document: every event (no elision), the
        // per-phase span totals, and the outcome.
        print!("{}", t.to_json(&o.scheme, key, o.tune_in));
    } else {
        // Long scans are elided in the middle to keep traces readable.
        const HEAD: usize = 30;
        const TAIL: usize = 10;
        if t.lines.len() <= HEAD + TAIL + 1 {
            for l in &t.lines {
                println!("{l}");
            }
        } else {
            for l in &t.lines[..HEAD] {
                println!("{l}");
            }
            println!("… {} steps elided …", t.lines.len() - HEAD - TAIL);
            for l in &t.lines[t.lines.len() - TAIL..] {
                println!("{l}");
            }
        }
    }
    if t.outcome.aborted {
        return Err("protocol aborted — this is a bug, please report the flags used".into());
    }
    Ok(())
}

/// `bda-cli compare` — quick side-by-side simulation of every scheme.
pub fn compare(o: &Options) -> Result<(), String> {
    let p = params(o)?;
    let (ds, pool) = dataset(o)?;
    let availability = o.availability / 100.0;
    let dynamic = o.update_spec().is_some();
    println!(
        "# {} records · {:.0}% availability · ratio {}{}{}{}\n",
        ds.len(),
        o.availability,
        o.ratio,
        fault_note(o),
        if dynamic {
            format!(" · {}% updates/cycle", o.update_rate)
        } else {
            String::new()
        },
        if o.disks > 1 {
            format!(" · {} broadcast disks", o.disks)
        } else if o.channels > 1 {
            format!(" · {} channels (switch {}B)", o.channels, o.switch_cost)
        } else {
            String::new()
        }
    );
    print!(
        "{:<22} {:>12} {:>12} {:>9} {:>8} {:>7}",
        "scheme", "access(B)", "tuning(B)", "requests", "retry/q", "found%"
    );
    println!("{}", if dynamic { "  restart/q" } else { "" });
    let mut hubs: Vec<(&str, MetricsHub)> = Vec::new();
    // One Perfetto document for the whole comparison: one process lane
    // per scheme, appended as each simulation finishes.
    let mut trace = o.timeline_out.as_ref().map(|_| TraceBuilder::new());
    // Under stratification only the disk-capable schemes compete.
    let schemes: &[&str] = if o.disks > 1 { &DISK_SCHEMES } else { &SCHEMES };
    for (i, &name) in schemes.iter().enumerate() {
        let sys = build_system(o, name, &ds, &p)?;
        let workload = QueryWorkload::new(
            &ds,
            pool.clone(),
            availability,
            Popularity::Uniform,
            o.seed ^ 0x17,
        );
        let mut cfg = SimConfig::quick();
        cfg.event_driven = false;
        cfg.errors = o.error_model();
        cfg.channel = Some(o.channel_model());
        cfg.retry = o.retry_policy();
        cfg.updates = o.update_spec();
        if o.timeline_out.is_some() {
            cfg.window = Some(sys.cycle_len());
        }
        let mut sim = Simulator::new(sys.as_ref(), workload, cfg);
        let r = if let Some(trace) = trace.as_mut() {
            let (r, hub, requests) = sim.run_observed_logged();
            let series = hub
                .windows
                .as_ref()
                .expect("timeline runs collect a windowed series");
            bda_sim::append_scheme_timeline(
                trace,
                i as u64 + 1,
                name,
                sys.as_ref(),
                &requests,
                o.channel_model(),
                o.retry_policy(),
                &[series],
                o.seed ^ TRACE_SAMPLE_SEED,
                TRACE_SAMPLE_K,
            );
            if o.metrics_out.is_some() {
                hubs.push((name, hub));
            }
            r
        } else if o.metrics_out.is_some() {
            let (r, hub) = sim.run_observed();
            hubs.push((name, hub));
            r
        } else {
            sim.run()
        };
        print!(
            "{:<22} {:>12.0} {:>12.0} {:>9} {:>8.3} {:>6.1}%",
            r.scheme,
            r.mean_access(),
            r.mean_tuning(),
            r.requests,
            r.mean_retries(),
            100.0 * r.found as f64 / r.requests as f64,
        );
        if dynamic {
            print!("  {:>9.4}", r.restart_rate());
        }
        println!();
    }
    if let Some(path) = &o.metrics_out {
        let labelled: Vec<(&str, &MetricsHub)> = hubs.iter().map(|(s, h)| (*s, h)).collect();
        std::fs::write(path, export::to_prometheus(&labelled))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "\nwrote Prometheus metrics for {} schemes to {path}",
            hubs.len()
        );
    }
    if let (Some(path), Some(trace)) = (&o.timeline_out, trace) {
        let doc = trace.finish();
        debug_assert!(bda_obs::validate_trace(&doc).is_ok());
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "\nwrote Perfetto timeline for {} schemes to {path} (open in ui.perfetto.dev)",
            schemes.len()
        );
    }
    Ok(())
}

/// `bda-cli simulate` — full testbed run for one scheme.
pub fn simulate(o: &Options) -> Result<(), String> {
    let p = params(o)?;
    let (ds, pool) = dataset(o)?;
    let sys = build_system(o, &o.scheme, &ds, &p)?;
    let workload = QueryWorkload::new(
        &ds,
        pool,
        o.availability / 100.0,
        Popularity::Uniform,
        o.seed ^ 0x17,
    );
    let mut cfg = SimConfig::paper();
    cfg.accuracy = o.accuracy;
    cfg.errors = o.error_model();
    cfg.channel = Some(o.channel_model());
    cfg.retry = o.retry_policy();
    cfg.updates = o.update_spec();
    cfg.shards = o.shards;
    if o.timeline_out.is_some() {
        // One window per broadcast cycle keeps the counter lanes legible.
        cfg.window = Some(sys.cycle_len());
    }
    let mut sim = Simulator::new(sys.as_ref(), workload, cfg);
    let (r, hub, requests) = if o.timeline_out.is_some() {
        let (r, hub, requests) = sim.run_observed_logged();
        (r, Some(hub), requests)
    } else if o.metrics_out.is_some() {
        let (r, hub) = sim.run_observed();
        (r, Some(hub), Vec::new())
    } else {
        (sim.run(), None, Vec::new())
    };
    println!("scheme        : {}", r.scheme);
    println!(
        "requests      : {} ({} rounds{})",
        r.requests,
        r.rounds,
        if r.converged { "" } else { ", NOT converged" }
    );
    println!(
        "access time   : {:.0} ± {:.0} bytes (99% CI)",
        r.access.mean, r.access.ci_half_width
    );
    println!(
        "tuning time   : {:.0} ± {:.0} bytes (99% CI)",
        r.tuning.mean, r.tuning.ci_half_width
    );
    println!("found         : {} / {}", r.found, r.requests);
    println!("false drops   : {}", r.false_drops);
    if o.loss > 0.0 || o.burst.is_some() || o.outage.is_some() {
        println!(
            "corrupt reads : {} ({:.3} retries/query)",
            r.retries,
            r.mean_retries()
        );
        println!(
            "abandoned     : {} ({:.2}% of requests)",
            r.abandoned,
            100.0 * r.abandonment_rate()
        );
    }
    if o.update_rate > 0.0 {
        println!(
            "version skews : {} ({:.4} stale restarts/query)",
            r.version_skews,
            r.restart_rate()
        );
        println!("stale restarts: {}", r.stale_restarts);
    }
    println!("cycle length  : {} bytes", r.cycle_len);
    if o.channels > 1 {
        println!(
            "channels      : {} at equal aggregate bandwidth ({} bytes/retune)",
            o.channels, o.switch_cost
        );
    }
    if o.shards > 1 {
        println!(
            "shards        : {} (deterministic merge — identical to 1)",
            o.shards
        );
    }
    if let (Some(path), Some(hub)) = (&o.metrics_out, &hub) {
        let doc = if path.ends_with(".prom") {
            export::to_prometheus(&[(r.scheme, hub)])
        } else {
            let doc = export::to_json(r.scheme, hub);
            debug_assert!(export::validate(&doc).is_ok());
            doc
        };
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics       : wrote {path}");
    }
    if let (Some(path), Some(hub)) = (&o.timeline_out, &hub) {
        let series = hub
            .windows
            .as_ref()
            .expect("timeline runs collect a windowed series");
        let doc = bda_sim::perfetto_trace(
            r.scheme,
            sys.as_ref(),
            &requests,
            o.channel_model(),
            o.retry_policy(),
            &[series],
            o.seed ^ TRACE_SAMPLE_SEED,
            TRACE_SAMPLE_K,
        );
        debug_assert!(bda_obs::validate_trace(&doc).is_ok());
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("timeline      : wrote {path} (open in ui.perfetto.dev)");
    }
    Ok(())
}
