//! `bda-cli` — explore wireless broadcast data access from the terminal.
//!
//! ```text
//! bda-cli inspect  --scheme distributed --records 1000
//! bda-cli trace    --scheme hashing --records 200 --key-index 37 --tune-in 54321
//! bda-cli compare  --records 2000 --availability 60
//! bda-cli simulate --scheme signature --records 5000
//! ```

mod args;
mod commands;
mod trace;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", args::USAGE);
        std::process::exit(2);
    }
    let cmd = argv[0].as_str();
    let opts = match args::Options::parse(&argv[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    };
    let result = match cmd {
        "inspect" => commands::inspect(&opts),
        "trace" => commands::trace(&opts),
        "compare" => commands::compare(&opts),
        "simulate" => commands::simulate(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
