//! Typed walk tracing: run one query and render each protocol step with a
//! human-readable description of the bucket it touched.

use bda_core::{
    Channel, ErrorModel, Key, ProtocolMachine, RetryPolicy, System, Ticks, Walk, WalkStep,
};

/// One rendered trace plus the query outcome.
pub struct Trace {
    /// Rendered timeline lines.
    pub lines: Vec<String>,
    /// The query outcome.
    pub outcome: bda_core::AccessOutcome,
}

/// Drive `machine` against `channel`, describing every bucket read with
/// `describe`.
pub fn trace_walk<P, M: ProtocolMachine<P>>(
    channel: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
    describe: impl Fn(&P) -> String,
) -> Trace {
    let mut walk = Walk::with_policy(channel, machine, tune_in, errors, policy);
    let mut lines = vec![format!("t={tune_in:<12} TUNE-IN")];
    let outcome = loop {
        match walk.step() {
            WalkStep::Read {
                bucket,
                from,
                until,
            } => {
                let wait = until - from - Ticks::from(channel.bucket(bucket).size);
                let wait_note = if wait > 0 {
                    format!(" (+{wait}B boundary wait)")
                } else {
                    String::new()
                };
                let corrupt = if errors.corrupted(until - Ticks::from(channel.bucket(bucket).size))
                {
                    " ×CORRUPT"
                } else {
                    ""
                };
                lines.push(format!(
                    "t={until:<12} READ  #{bucket:<6} {}{wait_note}{corrupt}",
                    describe(&channel.bucket(bucket).payload),
                ));
            }
            WalkStep::Doze { until } => {
                lines.push(format!("t={until:<12} WAKE  (dozed)"));
            }
            WalkStep::Done(out) => break out,
        }
    };
    lines.push(format!(
        "t={:<12} DONE  {} — access {}B, tuning {}B, {} probes{}{}",
        tune_in + outcome.access,
        if outcome.found {
            "FOUND"
        } else if outcome.abandoned {
            "ABANDONED (retry policy gave up)"
        } else {
            "NOT FOUND"
        },
        outcome.access,
        outcome.tuning,
        outcome.probes,
        if outcome.false_drops > 0 {
            format!(", {} false drops", outcome.false_drops)
        } else {
            String::new()
        },
        if outcome.retries > 0 {
            format!(", {} corrupted reads", outcome.retries)
        } else {
            String::new()
        },
    ));
    Trace { lines, outcome }
}

/// Trace a key query on any typed system, with per-payload description.
pub fn trace_query<S: System>(
    sys: &S,
    key: Key,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
    describe: impl Fn(&S::Payload) -> String,
) -> Trace {
    trace_walk(
        sys.channel(),
        sys.query(key),
        tune_in,
        errors,
        policy,
        describe,
    )
}

/// Compact per-scheme payload descriptions.
pub mod describe {
    use bda_btree::BTreePayload;
    use bda_core::FlatPayload;
    use bda_hash::HashPayload;
    use bda_signature::SigPayload;

    /// Flat-broadcast bucket.
    pub fn flat(p: &FlatPayload) -> String {
        format!("data  key={} rec#{}", p.key, p.record_index)
    }

    /// B+-tree bucket (index or data).
    pub fn btree(p: &BTreePayload) -> String {
        match p {
            BTreePayload::Index(ib) => format!(
                "index L{} n{} [{}..{}] {} entries{}{}",
                ib.level,
                ib.node,
                ib.min_key,
                ib.max_key,
                ib.entries.len(),
                if ib.control.is_empty() {
                    String::new()
                } else {
                    format!(", {} control", ib.control.len())
                },
                if ib.segment_start { ", SEG-START" } else { "" },
            ),
            BTreePayload::Data(db) => format!("data  key={} rec#{}", db.key, db.record_index),
        }
    }

    /// Hashing bucket.
    pub fn hash(p: &HashPayload) -> String {
        let body = match &p.entry {
            Some(e) => format!("key={} h={}", e.key, e.hash),
            None => "EMPTY".to_string(),
        };
        match p.shift_buckets {
            Some(s) => format!("slot  #{} shift+{s} {body}", p.phys),
            None => format!("ovfl  #{} {body}", p.phys),
        }
    }

    /// Hybrid tree+signature bucket.
    pub fn hybrid(p: &bda_hybrid::HybridPayload) -> String {
        use bda_hybrid::HybridPayload as H;
        match p {
            H::Index { node, .. } => btree(&bda_btree::BTreePayload::Index(node.clone())),
            H::Sig {
                sig, record_index, ..
            } => {
                format!("sig   rec#{record_index} weight={}", sig.weight())
            }
            H::Data {
                key, record_index, ..
            } => {
                format!("data  key={key} rec#{record_index}")
            }
        }
    }

    /// Signature-scheme bucket.
    pub fn sig(p: &SigPayload) -> String {
        match p {
            SigPayload::RecordSig { sig, record_index } => {
                format!("sig   rec#{record_index} weight={}", sig.weight())
            }
            SigPayload::GroupSig { sig, group_len, .. } => {
                format!("gsig  frame of {group_len} weight={}", sig.weight())
            }
            SigPayload::Data {
                key, record_index, ..
            } => {
                format!("data  key={key} rec#{record_index}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, DynSystem, FlatScheme, Params, Record, Scheme};

    #[test]
    fn trace_lines_cover_the_walk() {
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(6),
            100,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        assert!(t.outcome.found);
        assert!(t.lines.first().unwrap().contains("TUNE-IN"));
        assert!(t.lines.last().unwrap().contains("FOUND"));
        // One READ line per probe, plus tune-in and done.
        assert_eq!(t.lines.len(), t.outcome.probes as usize + 2);
        // Trace agrees with the plain probe.
        assert_eq!(t.outcome, sys.probe(bda_core::Key(6), 100));
    }

    #[test]
    fn abandoned_traces_say_so() {
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(6),
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(1),
            describe::flat,
        );
        assert!(t.outcome.abandoned);
        assert!(!t.outcome.aborted);
        assert!(t.lines.last().unwrap().contains("ABANDONED"));
    }
}
