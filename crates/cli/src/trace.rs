//! Typed walk tracing: run one query and render each protocol step with a
//! human-readable description of the bucket it touched.
//!
//! Every trace runs the walk with the observability layer's
//! [`SpanRecorder`] attached and diffs the accumulated [`PhaseSpans`]
//! after each step, so each event carries the exact phase and byte deltas
//! the metrics pipeline would attribute to it — the human timeline and
//! the `--json` document are two renderings of the same observed walk.

use bda_core::{
    Channel, ChannelModel, Key, Phase, PhaseSpans, ProtocolMachine, RetryPolicy, SpanRecorder,
    System, Ticks, Walk, WalkStep,
};

/// One protocol step in machine-readable form.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Absolute time (bytes) at which the step finished.
    pub t: Ticks,
    /// `"read"` or `"doze"`.
    pub kind: &'static str,
    /// Bucket index on the cycle, for reads.
    pub bucket: Option<usize>,
    /// Phase the observability layer attributed the step to.
    pub phase: Phase,
    /// Access bytes the step paid (includes boundary waits and doze air).
    pub access: u64,
    /// Tuning bytes the step paid (0 while dozing).
    pub tuning: u64,
    /// Boundary-wait bytes folded into `access`, for reads.
    pub wait: Ticks,
    /// Whether the read arrived corrupted.
    pub corrupt: bool,
    /// Whether the corruption came from a scheduled carrier outage.
    pub outage: bool,
    /// Human description of the bucket payload, for reads.
    pub detail: String,
}

/// One rendered trace plus the query outcome.
pub struct Trace {
    /// Rendered timeline lines.
    pub lines: Vec<String>,
    /// Machine-readable events, one per protocol step.
    pub events: Vec<TraceEvent>,
    /// Per-phase span totals for the whole walk (telescopes to the
    /// outcome's access and tuning time exactly).
    pub spans: PhaseSpans,
    /// The query outcome.
    pub outcome: bda_core::AccessOutcome,
}

/// The phase whose step count grew between two span snapshots, with its
/// byte deltas. Each walk step records exactly one span, so the diff is
/// unambiguous.
fn span_delta(before: &PhaseSpans, after: &PhaseSpans) -> (Phase, u64, u64) {
    for phase in Phase::ALL {
        let (b, a) = (before.get(phase), after.get(phase));
        if a.count > b.count {
            return (phase, a.access - b.access, a.tuning - b.tuning);
        }
    }
    unreachable!("every walk step records exactly one phase span");
}

/// Drive `machine` against `channel`, describing every bucket read with
/// `describe`. Burst loss and scheduled outages are rendered with their
/// cause (`×CORRUPT` vs `×OUTAGE`); a degenerate [`ChannelModel`] traces
/// bit-identically to the i.i.d. [`ErrorModel`] it wraps.
pub fn trace_walk_channel<P, M: ProtocolMachine<P>>(
    channel: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    faults: ChannelModel,
    policy: RetryPolicy,
    describe: impl Fn(&P) -> String,
) -> Trace {
    let mut walk = Walk::with_channel_recorder(
        channel,
        machine,
        tune_in,
        faults,
        policy,
        SpanRecorder::new(),
    );
    let mut lines = vec![format!("t={tune_in:<12} TUNE-IN")];
    let mut events = Vec::new();
    let mut snapshot = walk.recorder().spans;
    let outcome = loop {
        let step = walk.step();
        let spans_now = walk.recorder().spans;
        match step {
            WalkStep::Read {
                bucket,
                from,
                until,
            } => {
                let (phase, access, tuning) = span_delta(&snapshot, &spans_now);
                let wait = until - from - Ticks::from(channel.bucket(bucket).size);
                let wait_note = if wait > 0 {
                    format!(" (+{wait}B boundary wait)")
                } else {
                    String::new()
                };
                let start = until - Ticks::from(channel.bucket(bucket).size);
                let corrupt = faults.corrupted(start);
                let outage = faults.in_outage(start);
                let detail = describe(&channel.bucket(bucket).payload);
                lines.push(format!(
                    "t={until:<12} READ  #{bucket:<6} {detail}{wait_note}{}  [{}]",
                    if outage {
                        " ×OUTAGE"
                    } else if corrupt {
                        " ×CORRUPT"
                    } else {
                        ""
                    },
                    phase.name(),
                ));
                events.push(TraceEvent {
                    t: until,
                    kind: "read",
                    bucket: Some(bucket),
                    phase,
                    access,
                    tuning,
                    wait,
                    corrupt,
                    outage,
                    detail,
                });
            }
            WalkStep::Doze { until } => {
                let (phase, access, tuning) = span_delta(&snapshot, &spans_now);
                lines.push(format!("t={until:<12} WAKE  (dozed {access}B of air)"));
                events.push(TraceEvent {
                    t: until,
                    kind: "doze",
                    bucket: None,
                    phase,
                    access,
                    tuning,
                    wait: 0,
                    corrupt: false,
                    outage: false,
                    detail: String::new(),
                });
            }
            WalkStep::Done(out) => break out,
        }
        snapshot = spans_now;
    };
    let spans = walk.recorder().spans;
    lines.push(format!(
        "t={:<12} DONE  {} — access {}B, tuning {}B, {} probes{}{}",
        tune_in + outcome.access,
        if outcome.found {
            "FOUND"
        } else if outcome.abandoned {
            "ABANDONED (retry policy gave up)"
        } else {
            "NOT FOUND"
        },
        outcome.access,
        outcome.tuning,
        outcome.probes,
        if outcome.false_drops > 0 {
            format!(", {} false drops", outcome.false_drops)
        } else {
            String::new()
        },
        if outcome.retries > 0 {
            format!(", {} corrupted reads", outcome.retries)
        } else {
            String::new()
        },
    ));
    Trace {
        lines,
        events,
        spans,
        outcome,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Trace {
    /// Render the trace as a single `bda-trace/v1` JSON document: one
    /// event object per protocol step (phase-attributed byte deltas,
    /// bucket ids, corruption flags), the outcome, and the per-phase span
    /// totals. The events' access/tuning deltas telescope to the
    /// outcome's access/tuning time exactly.
    pub fn to_json(&self, scheme: &str, key: Key, tune_in: Ticks) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"bda-trace/v1\",\n");
        let _ = writeln!(out, "  \"scheme\": \"{}\",", json_escape(scheme));
        let _ = writeln!(out, "  \"key\": {},", key.0);
        let _ = writeln!(out, "  \"tune_in\": {tune_in},");
        out.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"type\": \"{}\", \"t\": {}, \"bucket\": {}, \"phase\": \"{}\", \
                 \"access\": {}, \"tuning\": {}, \"wait\": {}, \"corrupt\": {}, \
                 \"outage\": {}, \"detail\": \"{}\"}}",
                e.kind,
                e.t,
                e.bucket.map_or("null".into(), |b| b.to_string()),
                e.phase.name(),
                e.access,
                e.tuning,
                e.wait,
                e.corrupt,
                e.outage,
                json_escape(&e.detail),
            );
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"phases\": {\n");
        for (i, (phase, t)) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    \"{}\": {{\"access\": {}, \"tuning\": {}, \"count\": {}}}",
                phase.name(),
                t.access,
                t.tuning,
                t.count
            );
            out.push_str(if i + 1 < bda_core::Phase::COUNT {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n");
        let o = &self.outcome;
        let _ = writeln!(
            out,
            "  \"outcome\": {{\"found\": {}, \"access\": {}, \"tuning\": {}, \
             \"probes\": {}, \"false_drops\": {}, \"retries\": {}, \"abandoned\": {}, \
             \"aborted\": {}, \"stale_restarts\": {}, \"version_skews\": {}}}",
            o.found,
            o.access,
            o.tuning,
            o.probes,
            o.false_drops,
            o.retries,
            o.abandoned,
            o.aborted,
            o.stale_restarts,
            o.version_skews,
        );
        out.push_str("}\n");
        out
    }
}

/// Trace a key query on any typed system, with per-payload description,
/// over a full [`ChannelModel`] (i.i.d. or burst loss, plus outages).
pub fn trace_query_channel<S: System>(
    sys: &S,
    key: Key,
    tune_in: Ticks,
    faults: ChannelModel,
    policy: RetryPolicy,
    describe: impl Fn(&S::Payload) -> String,
) -> Trace {
    trace_walk_channel(
        sys.channel(),
        sys.query(key),
        tune_in,
        faults,
        policy,
        describe,
    )
}

/// Compact per-scheme payload descriptions.
pub mod describe {
    use bda_btree::BTreePayload;
    use bda_core::FlatPayload;
    use bda_hash::HashPayload;
    use bda_signature::SigPayload;

    /// Flat-broadcast bucket.
    pub fn flat(p: &FlatPayload) -> String {
        format!("data  key={} rec#{}", p.key, p.record_index)
    }

    /// B+-tree bucket (index or data).
    pub fn btree(p: &BTreePayload) -> String {
        match p {
            BTreePayload::Index(ib) => format!(
                "index L{} n{} [{}..{}] {} entries{}{}",
                ib.level,
                ib.node,
                ib.min_key,
                ib.max_key,
                ib.entries.len(),
                if ib.control.is_empty() {
                    String::new()
                } else {
                    format!(", {} control", ib.control.len())
                },
                if ib.segment_start { ", SEG-START" } else { "" },
            ),
            BTreePayload::Data(db) => format!("data  key={} rec#{}", db.key, db.record_index),
        }
    }

    /// Hashing bucket.
    pub fn hash(p: &HashPayload) -> String {
        let body = match &p.entry {
            Some(e) => format!("key={} h={}", e.key, e.hash),
            None => "EMPTY".to_string(),
        };
        match p.shift_buckets {
            Some(s) => format!("slot  #{} shift+{s} {body}", p.phys),
            None => format!("ovfl  #{} {body}", p.phys),
        }
    }

    /// Hybrid tree+signature bucket.
    pub fn hybrid(p: &bda_hybrid::HybridPayload) -> String {
        use bda_hybrid::HybridPayload as H;
        match p {
            H::Index { node, .. } => btree(&bda_btree::BTreePayload::Index(node.clone())),
            H::Sig {
                sig, record_index, ..
            } => {
                format!("sig   rec#{record_index} weight={}", sig.weight())
            }
            H::Data {
                key, record_index, ..
            } => {
                format!("data  key={key} rec#{record_index}")
            }
        }
    }

    /// Signature-scheme bucket.
    pub fn sig(p: &SigPayload) -> String {
        match p {
            SigPayload::RecordSig { sig, record_index } => {
                format!("sig   rec#{record_index} weight={}", sig.weight())
            }
            SigPayload::GroupSig { sig, group_len, .. } => {
                format!("gsig  frame of {group_len} weight={}", sig.weight())
            }
            SigPayload::Data {
                key, record_index, ..
            } => {
                format!("data  key={key} rec#{record_index}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, DynSystem, ErrorModel, FlatScheme, Params, Record, Scheme};

    /// The legacy i.i.d. entry point: delegates through the channel path,
    /// which the degenerate-equality test below shows is loss-for-loss
    /// identical.
    fn trace_query<S: System>(
        sys: &S,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
        describe: impl Fn(&S::Payload) -> String,
    ) -> Trace {
        trace_query_channel(sys, key, tune_in, errors.into(), policy, describe)
    }

    #[test]
    fn trace_lines_cover_the_walk() {
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(6),
            100,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        assert!(t.outcome.found);
        assert!(t.lines.first().unwrap().contains("TUNE-IN"));
        assert!(t.lines.last().unwrap().contains("FOUND"));
        // One READ line per probe, plus tune-in and done.
        assert_eq!(t.lines.len(), t.outcome.probes as usize + 2);
        // Trace agrees with the plain probe.
        assert_eq!(t.outcome, sys.probe(bda_core::Key(6), 100));
    }

    #[test]
    fn events_account_every_tick_and_render_as_json() {
        let ds = Dataset::new((0..64).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = bda_btree::DistributedScheme::new()
            .build(&ds, &Params::paper())
            .unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(40),
            1_000,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
            describe::btree,
        );
        assert!(t.outcome.found);
        // One event per protocol step; the byte deltas telescope exactly.
        assert_eq!(
            t.events.iter().filter(|e| e.kind == "read").count(),
            t.outcome.probes as usize
        );
        let access: u64 = t.events.iter().map(|e| e.access).sum();
        let tuning: u64 = t.events.iter().map(|e| e.tuning).sum();
        assert_eq!(access, t.outcome.access);
        assert_eq!(tuning, t.outcome.tuning);
        assert_eq!(t.spans.total_access(), t.outcome.access);
        assert_eq!(t.spans.total_tuning(), t.outcome.tuning);
        // An indexed walk shows the full phase vocabulary in play.
        assert!(t.events.iter().any(|e| e.phase == Phase::InitialProbe));
        assert!(t.events.iter().any(|e| e.phase == Phase::IndexTraversal));
        assert!(t.events.iter().any(|e| e.phase == Phase::DataRead));
        assert!(t
            .events
            .iter()
            .any(|e| e.kind == "doze" && e.phase == Phase::Doze));
        // Dozing costs air time but no tuning.
        assert!(t
            .events
            .iter()
            .filter(|e| e.kind == "doze")
            .all(|e| e.tuning == 0));
        // JSON rendering carries the schema marker, every event, and the
        // phase table.
        let json = t.to_json("distributed", bda_core::Key(40), 1_000);
        assert!(json.contains("\"schema\": \"bda-trace/v1\""));
        assert!(json.contains("\"scheme\": \"distributed\""));
        assert_eq!(
            json.matches("{\"type\": ").count(),
            t.events.len(),
            "one JSON object per event"
        );
        assert!(json.contains("\"initial_probe\""));
        assert!(json.contains("\"found\": true"));
    }

    #[test]
    fn corrupt_reads_are_flagged_in_events() {
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(6),
            0,
            ErrorModel::new(0.5, 7),
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        assert!(t.outcome.found);
        assert_eq!(
            t.events.iter().filter(|e| e.corrupt).count(),
            t.outcome.retries as usize,
            "corrupt flags tie to the outcome's retry count"
        );
        assert_eq!(
            t.events.iter().filter(|e| e.phase == Phase::Retry).count(),
            t.outcome.retries as usize,
            "corrupt reads are attributed to the retry phase"
        );
    }

    #[test]
    fn burst_and_outage_traces_flag_their_cause() {
        use bda_core::{BurstModel, ChannelModel, OutageSchedule};
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        // A degenerate channel traces bit-identically to the i.i.d. path.
        let errors = ErrorModel::new(0.5, 7);
        let iid = trace_query(
            &sys,
            bda_core::Key(6),
            0,
            errors,
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        let chan = trace_query_channel(
            &sys,
            bda_core::Key(6),
            0,
            ChannelModel::iid(errors),
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        assert_eq!(iid.lines, chan.lines);
        assert_eq!(iid.outcome, chan.outcome);
        // An outage-only channel marks dead reads ×OUTAGE, not ×CORRUPT.
        let faults = ChannelModel::burst(BurstModel::new(0.3, 0.3, 0.0, 1.0, 5))
            .with_outages(OutageSchedule::new(400, 120, 9));
        let t = trace_query_channel(
            &sys,
            bda_core::Key(6),
            0,
            faults,
            RetryPolicy::UNBOUNDED,
            describe::flat,
        );
        assert!(t.outcome.found);
        assert_eq!(
            t.events.iter().filter(|e| e.corrupt).count(),
            t.outcome.retries as usize,
            "outage and burst corruption both tie to the retry count"
        );
        for e in t.events.iter().filter(|e| e.outage) {
            assert!(e.corrupt, "an outage read is always corrupt");
        }
        let json = t.to_json("flat", bda_core::Key(6), 0);
        assert!(json.contains("\"outage\": "));
    }

    #[test]
    fn abandoned_traces_say_so() {
        let ds = Dataset::new((0..8).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let t = trace_query(
            &sys,
            bda_core::Key(6),
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(1),
            describe::flat,
        );
        assert!(t.outcome.abandoned);
        assert!(!t.outcome.aborted);
        assert!(t.lines.last().unwrap().contains("ABANDONED"));
    }
}
