//! Buckets — the atomic unit of broadcast.

use crate::Ticks;

/// One bucket on the broadcast channel.
///
/// A bucket is the smallest unit a client can tune in to and read; its
/// `size` is how many bytes (= ticks) the server needs to broadcast it.
/// The scheme-specific contents — index entries, hash control parts,
/// signatures, record references — live in the `payload`, whose type is
/// chosen by each access method. Payloads carry *logical* content; the
/// byte cost of that content is accounted for in `size` by the channel
/// builder, which is what the access/tuning-time metrics see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket<P> {
    /// On-air size of this bucket in bytes.
    pub size: u32,
    /// Scheme-specific contents.
    pub payload: P,
    /// Broadcast-program version this bucket belongs to. Every bucket of a
    /// cycle carries the cycle's monotonically increasing `cycle_version`
    /// in its header, so a client can detect mid-walk that the program
    /// changed under it (see [`crate::dynamic`]). Frozen channels stay at
    /// version 0.
    pub version: u64,
}

impl<P> Bucket<P> {
    /// Construct a bucket of `size` bytes carrying `payload` (version 0;
    /// [`crate::Channel::set_version`] stamps whole cycles).
    pub fn new(size: u32, payload: P) -> Self {
        Bucket {
            size,
            payload,
            version: 0,
        }
    }
}

/// Position metadata handed to a protocol machine together with a bucket's
/// payload.
///
/// `start`/`end` are absolute [`Ticks`] (bytes since simulation start), so a
/// machine can convert the *relative* pointers stored in payloads (forward
/// byte deltas) into absolute doze targets: a pointer `d` read from this
/// bucket means "the target bucket starts at `end + d`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketMeta {
    /// Index of the bucket within the broadcast cycle.
    pub index: usize,
    /// Absolute time at which this bucket's first byte was broadcast.
    pub start: Ticks,
    /// Absolute time just after this bucket's last byte (`start + size`).
    pub end: Ticks,
    /// On-air size in bytes.
    pub size: u32,
    /// Broadcast-program version stamped in the bucket header.
    pub version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_a_plain_carrier() {
        let b = Bucket::new(512, "payload");
        assert_eq!(b.size, 512);
        assert_eq!(b.payload, "payload");
    }

    #[test]
    fn meta_spans_are_consistent() {
        let m = BucketMeta {
            index: 3,
            start: 1000,
            end: 1512,
            size: 512,
            version: 0,
        };
        assert_eq!(m.end - m.start, m.size as Ticks);
    }
}
