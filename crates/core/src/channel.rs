//! The cyclic broadcast channel.

use crate::bucket::Bucket;
use crate::error::{BdaError, Result};
use crate::Ticks;

/// A broadcast cycle: a fixed sequence of buckets the server repeats
/// forever.
///
/// The channel owns the buckets and a prefix-sum table of their start
/// offsets, so that "what is on the air at time `t`?" and "when does bucket
/// `i` next start after time `t`?" are `O(log B)` / `O(1)` queries. All
/// times are absolute [`Ticks`]; the cycle length (`Bt` in the paper's
/// notation) is the sum of all bucket sizes.
///
/// ```
/// use bda_core::{Bucket, Channel};
///
/// let ch = Channel::new(vec![
///     Bucket::new(10, "a"),
///     Bucket::new(20, "b"),
/// ]).unwrap();
/// assert_eq!(ch.cycle_len(), 30);
/// // A client tuning in mid-bucket sees the *next* complete bucket:
/// assert_eq!(ch.first_complete_at(5), (1, 10));
/// // …wrapping to the start of the next cycle after the last bucket:
/// assert_eq!(ch.first_complete_at(25), (0, 30));
/// ```
#[derive(Debug, Clone)]
pub struct Channel<P> {
    buckets: Vec<Bucket<P>>,
    /// `starts[i]` = offset of bucket `i` within the cycle; `starts\[0\] == 0`.
    starts: Vec<Ticks>,
    /// Total cycle length in bytes.
    cycle: Ticks,
    /// Broadcast-program version stamped into every bucket header
    /// (0 for frozen channels; see [`Channel::set_version`]).
    version: u64,
}

impl<P> Channel<P> {
    /// Assemble a channel from buckets. Fails on an empty sequence or any
    /// zero-sized bucket (a bucket must occupy air time to be readable).
    pub fn new(buckets: Vec<Bucket<P>>) -> Result<Self> {
        if buckets.is_empty() {
            return Err(BdaError::EmptyChannel);
        }
        let mut starts = Vec::with_capacity(buckets.len());
        let mut at: Ticks = 0;
        for (index, b) in buckets.iter().enumerate() {
            if b.size == 0 {
                return Err(BdaError::ZeroSizeBucket { index });
            }
            starts.push(at);
            at += Ticks::from(b.size);
        }
        Ok(Channel {
            buckets,
            starts,
            cycle: at,
            version: 0,
        })
    }

    /// The broadcast-program version every bucket of this cycle carries.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp the whole cycle — the channel and every bucket header — with
    /// program version `v`. A dynamic broadcast server bumps this each
    /// time it rebuilds the program, so clients can detect mid-walk that
    /// the buckets they are chasing belong to a different cycle layout.
    pub fn set_version(&mut self, v: u64) {
        self.version = v;
        for b in &mut self.buckets {
            b.version = v;
        }
    }

    /// Number of buckets per cycle (`N` in the paper when buckets are
    /// uniform).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Cycle length in bytes (`Bt`).
    pub fn cycle_len(&self) -> Ticks {
        self.cycle
    }

    /// Bucket `i` of the cycle.
    pub fn bucket(&self, i: usize) -> &Bucket<P> {
        &self.buckets[i]
    }

    /// All buckets in cycle order.
    pub fn buckets(&self) -> &[Bucket<P>] {
        &self.buckets
    }

    /// Start offset of bucket `i` within the cycle.
    pub fn start_of(&self, i: usize) -> Ticks {
        self.starts[i]
    }

    /// End offset of bucket `i` within the cycle (may equal the cycle
    /// length for the last bucket).
    pub fn end_of(&self, i: usize) -> Ticks {
        self.starts[i] + Ticks::from(self.buckets[i].size)
    }

    /// Position within the cycle of absolute time `t`.
    pub fn pos(&self, t: Ticks) -> Ticks {
        t % self.cycle
    }

    /// The first bucket that **starts at or after** absolute time `t` —
    /// i.e. the first *complete* bucket a client tuning in at `t` can read.
    ///
    /// Returns `(bucket index, absolute start time)`. If `t` falls inside a
    /// bucket, the answer is the next one (wrapping to bucket 0 of the next
    /// cycle after the last bucket). Near `Ticks::MAX` the start time
    /// saturates instead of overflowing (the simulation clock has run out
    /// of representable bytes; callers observe a start pinned at the
    /// maximum rather than a wrapped-around past instant).
    pub fn first_complete_at(&self, t: Ticks) -> (usize, Ticks) {
        let pos = self.pos(t);
        // partition_point: first index with starts[i] >= pos.
        let idx = self.starts.partition_point(|&s| s < pos);
        if idx == self.starts.len() {
            // Wrap to the start of the next cycle.
            (0, t.saturating_add(self.cycle - pos))
        } else {
            (idx, t.saturating_add(self.starts[idx] - pos))
        }
    }

    /// Absolute start time of the first occurrence of bucket `idx` at or
    /// after absolute time `t` (saturating near `Ticks::MAX`, like
    /// [`Channel::first_complete_at`]).
    pub fn occurrence_at_or_after(&self, idx: usize, t: Ticks) -> Ticks {
        let pos = self.pos(t);
        let s = self.starts[idx];
        if s >= pos {
            t.saturating_add(s - pos)
        } else {
            t.saturating_add(self.cycle - pos).saturating_add(s)
        }
    }

    /// Forward byte delta from cycle position `from_pos` to the start of
    /// bucket `idx` — the value a channel builder stores in an on-air
    /// pointer. A delta of 0 means "the very next byte begins the target".
    ///
    /// `from_pos` is typically the *end* offset of the bucket containing the
    /// pointer, which for the last bucket equals the cycle length; the
    /// modulo folds that case back to position 0.
    pub fn delta_from(&self, from_pos: Ticks, idx: usize) -> Ticks {
        let from = from_pos % self.cycle;
        let s = self.starts[idx];
        if s >= from {
            s - from
        } else {
            (self.cycle - from).saturating_add(s)
        }
    }

    /// Map a payload-transforming function over every bucket, preserving
    /// sizes, offsets and version stamps. Useful for building derived
    /// channels in tests.
    pub fn map_payload<Q>(self, mut f: impl FnMut(P) -> Q) -> Channel<Q> {
        let buckets = self
            .buckets
            .into_iter()
            .map(|b| Bucket {
                size: b.size,
                payload: f(b.payload),
                version: b.version,
            })
            .collect();
        Channel {
            buckets,
            starts: self.starts,
            cycle: self.cycle,
            version: self.version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(sizes: &[u32]) -> Channel<usize> {
        Channel::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| Bucket::new(s, i))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            Channel::<u8>::new(vec![]).unwrap_err(),
            BdaError::EmptyChannel
        );
        assert_eq!(
            Channel::new(vec![Bucket::new(4, 0u8), Bucket::new(0, 1u8)]).unwrap_err(),
            BdaError::ZeroSizeBucket { index: 1 }
        );
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let c = ch(&[10, 20, 30]);
        assert_eq!(c.num_buckets(), 3);
        assert_eq!(c.cycle_len(), 60);
        assert_eq!(c.start_of(0), 0);
        assert_eq!(c.start_of(1), 10);
        assert_eq!(c.start_of(2), 30);
        assert_eq!(c.end_of(2), 60);
    }

    #[test]
    fn first_complete_at_aligned_and_mid_bucket() {
        let c = ch(&[10, 20, 30]);
        // Aligned exactly on bucket starts.
        assert_eq!(c.first_complete_at(0), (0, 0));
        assert_eq!(c.first_complete_at(10), (1, 10));
        assert_eq!(c.first_complete_at(30), (2, 30));
        // Mid-bucket: next complete bucket.
        assert_eq!(c.first_complete_at(5), (1, 10));
        assert_eq!(c.first_complete_at(29), (2, 30));
        // Inside the last bucket: wraps to bucket 0 of next cycle.
        assert_eq!(c.first_complete_at(31), (0, 60));
        // Deep into later cycles.
        assert_eq!(c.first_complete_at(60 + 5), (1, 70));
        assert_eq!(c.first_complete_at(10 * 60), (0, 600));
    }

    #[test]
    fn occurrence_wraps_correctly() {
        let c = ch(&[10, 20, 30]);
        assert_eq!(c.occurrence_at_or_after(1, 0), 10);
        assert_eq!(c.occurrence_at_or_after(1, 10), 10);
        assert_eq!(c.occurrence_at_or_after(1, 11), 70);
        assert_eq!(c.occurrence_at_or_after(0, 45), 60);
        assert_eq!(c.occurrence_at_or_after(2, 120 + 35), 120 + 30 + 60);
    }

    #[test]
    fn delta_from_is_forward_distance() {
        let c = ch(&[10, 20, 30]);
        assert_eq!(c.delta_from(10, 1), 0); // pointer at end of bucket 0 → bucket 1
        assert_eq!(c.delta_from(30, 0), 30); // end of bucket 1 → wrap to bucket 0
        assert_eq!(c.delta_from(60, 0), 0); // end of last bucket → next cycle start
        assert_eq!(c.delta_from(0, 2), 30);
    }

    #[test]
    fn delta_and_occurrence_agree() {
        let c = ch(&[7, 13, 5, 25]);
        for idx in 0..c.num_buckets() {
            for t in 0..2 * c.cycle_len() {
                let occ = c.occurrence_at_or_after(idx, t);
                assert!(occ >= t);
                assert_eq!(c.pos(occ), c.start_of(idx));
                // delta_from measured at position t must land on the same
                // occurrence when t is not already inside the target.
                let d = c.delta_from(t, idx);
                assert_eq!(c.pos(t + d), c.start_of(idx));
            }
        }
    }

    #[test]
    fn map_payload_preserves_geometry() {
        let c = ch(&[10, 20]);
        let mapped = c.clone().map_payload(|i| i * 10);
        assert_eq!(mapped.cycle_len(), c.cycle_len());
        assert_eq!(mapped.bucket(1).payload, 10);
        assert_eq!(mapped.start_of(1), 10);
    }

    #[test]
    fn set_version_stamps_channel_and_every_bucket() {
        let mut c = ch(&[10, 20, 30]);
        assert_eq!(c.version(), 0);
        assert!(c.buckets().iter().all(|b| b.version == 0));
        c.set_version(7);
        assert_eq!(c.version(), 7);
        assert!(c.buckets().iter().all(|b| b.version == 7));
        // map_payload keeps the stamps.
        let mapped = c.map_payload(|i| i + 1);
        assert_eq!(mapped.version(), 7);
        assert!(mapped.buckets().iter().all(|b| b.version == 7));
    }

    #[test]
    fn occurrence_arithmetic_saturates_near_ticks_max() {
        let c = ch(&[10, 20, 30]);
        for t in [Ticks::MAX, Ticks::MAX - 1, Ticks::MAX - 61] {
            let (_, start) = c.first_complete_at(t);
            assert!(start >= t || start == Ticks::MAX);
            for idx in 0..c.num_buckets() {
                let occ = c.occurrence_at_or_after(idx, t);
                assert!(occ >= t || occ == Ticks::MAX);
            }
        }
    }
}
