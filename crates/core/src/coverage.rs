//! Record-coverage tracking for scanning protocols.
//!
//! Scanning access methods (flat broadcast, the signature schemes) conclude
//! "not broadcast" only after ruling out **every** record. On a lossless
//! channel a simple countdown suffices — one cycle covers everything — but
//! on an error-prone channel corrupted reads leave holes, and realignment
//! can skip regions. [`Coverage`] tracks exactly which records have been
//! ruled out, so termination is both *sound* (no record is ever skipped)
//! and *guaranteed* (each record is re-broadcast every cycle, so coverage
//! eventually completes at any loss rate below 1).

/// A fixed-size set of record positions that have been ruled out.
#[derive(Debug, Clone)]
pub struct Coverage {
    bits: Box<[u64]>,
    covered: u32,
    total: u32,
}

impl Coverage {
    /// Coverage over `total` records, initially empty.
    pub fn new(total: u32) -> Self {
        Coverage {
            bits: vec![0u64; (total as usize).div_ceil(64)].into_boxed_slice(),
            covered: 0,
            total,
        }
    }

    /// Number of records ruled out so far.
    pub fn covered(&self) -> u32 {
        self.covered
    }

    /// Whether every record has been ruled out.
    pub fn is_full(&self) -> bool {
        self.covered >= self.total
    }

    /// Rule out record `i` (idempotent; out-of-range indices are ignored,
    /// which makes diagnostics-only payload indices safe to feed in).
    pub fn mark(&mut self, i: u32) {
        if i >= self.total {
            return;
        }
        let w = (i / 64) as usize;
        let b = 1u64 << (i % 64);
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.covered += 1;
        }
    }

    /// Rule out the half-open range `[start, start + len)`.
    pub fn mark_range(&mut self, start: u32, len: u32) {
        for i in start..start.saturating_add(len) {
            self.mark(i);
        }
    }

    /// Whether record `i` has already been ruled out. Out-of-range indices
    /// read as ruled out, mirroring [`Coverage::mark`] ignoring them.
    pub fn is_marked(&self, i: u32) -> bool {
        if i >= self.total {
            return true;
        }
        self.bits[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Whether ruling out record `i` would complete coverage — the
    /// fast-forward planner's "is this the terminating bucket?" test,
    /// asked *before* the bucket is consumed.
    pub fn would_fill(&self, i: u32) -> bool {
        let gain = u32::from(!self.is_marked(i));
        self.covered + gain >= self.total
    }

    /// Number of records in `[start, start + len)` not yet ruled out.
    pub fn unmarked_in_range(&self, start: u32, len: u32) -> u32 {
        (start..start.saturating_add(len).min(self.total))
            .filter(|&i| !self.is_marked(i))
            .count() as u32
    }

    /// Whether ruling out the whole range `[start, start + len)` would
    /// complete coverage (the frame-granular variant of
    /// [`Coverage::would_fill`]).
    pub fn would_fill_range(&self, start: u32, len: u32) -> bool {
        self.covered + self.unmarked_in_range(start, len) >= self.total
    }

    /// Forget everything (fresh protocol start).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.covered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_idempotent_and_counted() {
        let mut c = Coverage::new(100);
        assert_eq!(c.covered(), 0);
        assert!(!c.is_full());
        c.mark(3);
        c.mark(3);
        c.mark(99);
        assert_eq!(c.covered(), 2);
        for i in 0..100 {
            c.mark(i);
        }
        assert!(c.is_full());
        assert_eq!(c.covered(), 100);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut c = Coverage::new(10);
        c.mark(10);
        c.mark(u32::MAX);
        assert_eq!(c.covered(), 0);
    }

    #[test]
    fn ranges_and_clear() {
        let mut c = Coverage::new(64);
        c.mark_range(60, 8); // clipped at 64
        assert_eq!(c.covered(), 4);
        c.mark_range(0, 60);
        assert!(c.is_full());
        c.clear();
        assert_eq!(c.covered(), 0);
        assert!(!c.is_full());
    }

    #[test]
    fn would_fill_predicts_completion_without_mutating() {
        let mut c = Coverage::new(4);
        c.mark_range(0, 3);
        assert!(!c.is_marked(3));
        assert!(c.would_fill(3));
        assert!(
            !c.would_fill(0),
            "re-marking a covered record gains nothing"
        );
        assert_eq!(c.covered(), 3, "the predicate must not mutate");
        let mut d = Coverage::new(4);
        d.mark(0);
        assert!(!d.would_fill(3));
        assert_eq!(d.unmarked_in_range(0, 4), 3);
        assert!(d.would_fill_range(1, 3));
        assert!(!d.would_fill_range(1, 2));
        // Out-of-range indices read as already ruled out.
        assert!(c.is_marked(9));
        assert_eq!(d.unmarked_in_range(2, 99), 2);
    }

    #[test]
    fn zero_total_is_immediately_full() {
        let c = Coverage::new(0);
        assert!(c.is_full());
    }

    #[test]
    fn word_boundaries() {
        let mut c = Coverage::new(130);
        c.mark(63);
        c.mark(64);
        c.mark(127);
        c.mark(128);
        c.mark(129);
        assert_eq!(c.covered(), 5);
    }
}
