//! Record-coverage tracking for scanning protocols.
//!
//! Scanning access methods (flat broadcast, the signature schemes) conclude
//! "not broadcast" only after ruling out **every** record. On a lossless
//! channel a simple countdown suffices — one cycle covers everything — but
//! on an error-prone channel corrupted reads leave holes, and realignment
//! can skip regions. [`Coverage`] tracks exactly which records have been
//! ruled out, so termination is both *sound* (no record is ever skipped)
//! and *guaranteed* (each record is re-broadcast every cycle, so coverage
//! eventually completes at any loss rate below 1).

/// A fixed-size set of record positions that have been ruled out.
#[derive(Debug, Clone)]
pub struct Coverage {
    bits: Box<[u64]>,
    covered: u32,
    total: u32,
}

impl Coverage {
    /// Coverage over `total` records, initially empty.
    pub fn new(total: u32) -> Self {
        Coverage {
            bits: vec![0u64; (total as usize).div_ceil(64)].into_boxed_slice(),
            covered: 0,
            total,
        }
    }

    /// Number of records ruled out so far.
    pub fn covered(&self) -> u32 {
        self.covered
    }

    /// Whether every record has been ruled out.
    pub fn is_full(&self) -> bool {
        self.covered >= self.total
    }

    /// Rule out record `i` (idempotent; out-of-range indices are ignored,
    /// which makes diagnostics-only payload indices safe to feed in).
    pub fn mark(&mut self, i: u32) {
        if i >= self.total {
            return;
        }
        let w = (i / 64) as usize;
        let b = 1u64 << (i % 64);
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.covered += 1;
        }
    }

    /// Rule out the half-open range `[start, start + len)`.
    pub fn mark_range(&mut self, start: u32, len: u32) {
        for i in start..start.saturating_add(len) {
            self.mark(i);
        }
    }

    /// Forget everything (fresh protocol start).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.covered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_idempotent_and_counted() {
        let mut c = Coverage::new(100);
        assert_eq!(c.covered(), 0);
        assert!(!c.is_full());
        c.mark(3);
        c.mark(3);
        c.mark(99);
        assert_eq!(c.covered(), 2);
        for i in 0..100 {
            c.mark(i);
        }
        assert!(c.is_full());
        assert_eq!(c.covered(), 100);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut c = Coverage::new(10);
        c.mark(10);
        c.mark(u32::MAX);
        assert_eq!(c.covered(), 0);
    }

    #[test]
    fn ranges_and_clear() {
        let mut c = Coverage::new(64);
        c.mark_range(60, 8); // clipped at 64
        assert_eq!(c.covered(), 4);
        c.mark_range(0, 60);
        assert!(c.is_full());
        c.clear();
        assert_eq!(c.covered(), 0);
        assert!(!c.is_full());
    }

    #[test]
    fn zero_total_is_immediately_full() {
        let c = Coverage::new(0);
        assert!(c.is_full());
    }

    #[test]
    fn word_boundaries() {
        let mut c = Coverage::new(130);
        c.mark(63);
        c.mark(64);
        c.mark(127);
        c.mark(128);
        c.mark(129);
        assert_eq!(c.covered(), 5);
    }
}
