//! Broadcast disks — popularity-stratified repetition schedules.
//!
//! Every scheme so far broadcasts each record exactly once per cycle, so a
//! client's expected wait is half the cycle regardless of how skewed the
//! workload is. Broadcast disks (Acharya et al.; the frequent-pattern
//! scheduling line of work) exploit skew: records are ranked by popularity
//! and assigned to `D` conceptual disks spinning at geometrically decreasing
//! speeds — the hottest disk's records are repeated on the air
//! `2^(D-1)`× per major cycle, the coldest disk's once — so popular records
//! have proportionally shorter inter-arrival gaps.
//!
//! The layout follows the classic minor-cycle construction. With `D` disks:
//!
//! * disk `d` (0 = hottest) spins at relative speed `2^(D-1-d)`;
//! * a major cycle consists of `M = 2^(D-1)` **minor cycles**;
//! * disk `d` is split into `2^d` equal **chunks**, and minor cycle `j`
//!   carries chunk `j mod 2^d` of every disk `d`;
//! * hence a record on disk `d` appears in every `2^d`-th minor cycle —
//!   `2^(D-1-d)` evenly spaced occurrences per major cycle.
//!
//! `D = 1` degenerates to one minor cycle carrying every record once, which
//! is **exactly** today's flat-cycle program — the bit-identity anchor the
//! golden conformance corpus checks.
//!
//! Two integration styles coexist:
//!
//! * **Interleaved scan layouts** ([`FlatDisksScheme`], and the signature
//!   counterpart in `bda-signature`): the repetition sequence is emitted
//!   directly as one long cycle. Scanning machines already identify records
//!   by `record_index` and mark coverage idempotently, so they work over
//!   repeated occurrences unmodified — including analytical fast-forward.
//! * **Chunked navigation layouts** ([`DiskScheme`] wrapping hashing or
//!   distributed B⁺-tree): each minor cycle is a complete self-contained
//!   inner-scheme program over its chunk's records. All inner pointers are
//!   relative forward deltas confined to the minor cycle, so they stay
//!   valid wherever the minor cycle sits in the major cycle; the
//!   [`DiskMachine`] routes a query to the next minor cycle containing the
//!   key's chunk, then delegates verbatim.

use std::sync::Arc;

use crate::bucket::{Bucket, BucketMeta};
use crate::channel::Channel;
use crate::error::Result;
use crate::flat::{FlatPayload, FlatSystem};
use crate::key::Key;
use crate::machine::{Action, ProtocolMachine};
use crate::params::Params;
use crate::record::{Dataset, Record};
use crate::scheme::{Scheme, System};
use crate::Ticks;
use bda_obs::BucketKind;

/// Configuration of a broadcast-disk program: how many disks to stratify
/// the dataset across. Speeds are geometric (`2^(D-1-d)` for disk `d`) and
/// record allocation gives disk `d` a share proportional to `2^d` of the
/// dataset — the hottest disk is the smallest and spins the fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    disks: usize,
}

impl DiskConfig {
    /// A `disks`-disk configuration. `disks` is clamped to at least 1; the
    /// layout further clamps it down for datasets too small to populate
    /// every chunk (each disk `d` needs at least `2^d` records).
    pub fn new(disks: usize) -> Self {
        DiskConfig {
            disks: disks.max(1),
        }
    }

    /// Requested number of disks.
    pub fn disks(&self) -> usize {
        self.disks
    }
}

impl Default for DiskConfig {
    /// One disk — the flat-cycle identity.
    fn default() -> Self {
        DiskConfig::new(1)
    }
}

/// The repetition program of one major cycle: which records each minor
/// cycle carries, in broadcast order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionSchedule {
    /// Record indices per minor cycle, each ascending (so every minor
    /// cycle's records form a valid key-sorted sub-dataset).
    minor: Vec<Vec<u32>>,
}

impl RepetitionSchedule {
    /// Number of minor cycles per major cycle (`M = 2^(D-1)`).
    pub fn num_minor_cycles(&self) -> usize {
        self.minor.len()
    }

    /// Record indices broadcast in minor cycle `j`, ascending.
    pub fn minor_cycle(&self, j: usize) -> &[u32] {
        &self.minor[j]
    }

    /// All minor cycles.
    pub fn minor_cycles(&self) -> &[Vec<u32>] {
        &self.minor
    }

    /// The flattened occurrence sequence of one major cycle.
    pub fn sequence(&self) -> impl Iterator<Item = u32> + '_ {
        self.minor.iter().flatten().copied()
    }

    /// Total record occurrences per major cycle (≥ the number of records).
    pub fn num_occurrences(&self) -> usize {
        self.minor.iter().map(Vec::len).sum()
    }
}

/// A popularity-stratified assignment of records to broadcast disks, plus
/// the minor-cycle schedule it induces.
#[derive(Debug, Clone)]
pub struct DiskLayout {
    num_records: usize,
    /// Effective disk count after clamping to the dataset size.
    disks: usize,
    /// Per record index: `(disk, chunk)` home.
    assign: Vec<(u8, u32)>,
    /// Per record index: occurrences per major cycle (`2^(D-1-disk)`).
    reps: Vec<u32>,
    schedule: RepetitionSchedule,
}

impl DiskLayout {
    /// Stratify `num_records` records under `config`, ranking records by
    /// the **identity** permutation: record index = popularity rank. This
    /// matches the workload generator's Zipf model, whose rank-`i` key *is*
    /// the `i`-th dataset key (see `bda-datagen`'s popularity module).
    pub fn new(num_records: usize, config: &DiskConfig) -> Self {
        let ranking: Vec<u32> = (0..num_records as u32).collect();
        DiskLayout::with_ranking(num_records, config, &ranking)
    }

    /// Stratify under an explicit popularity ranking: `ranking[r]` is the
    /// record index of popularity rank `r` (rank 0 = hottest). Must be a
    /// permutation of `0..num_records`.
    pub fn with_ranking(num_records: usize, config: &DiskConfig, ranking: &[u32]) -> Self {
        assert_eq!(ranking.len(), num_records, "ranking must cover the dataset");
        debug_assert!(
            {
                let mut seen = vec![false; num_records];
                ranking.iter().all(|&r| {
                    let ok = (r as usize) < num_records && !seen[r as usize];
                    if ok {
                        seen[r as usize] = true;
                    }
                    ok
                })
            },
            "ranking must be a permutation of 0..num_records"
        );
        assert!(num_records > 0, "empty dataset");

        // Clamp D so every disk can populate all of its chunks: disk d needs
        // at least 2^d records out of its ~n·2^d/(2^D-1) share.
        let mut disks = config.disks.min(1 + usize::BITS as usize);
        let (boundaries, assign_ranks) = loop {
            match try_partition(num_records, disks) {
                Some(parts) => break parts,
                None => disks -= 1,
            }
        };
        let _ = boundaries;

        // Per record index: (disk, chunk) and reps.
        let m = 1usize << (disks - 1);
        let mut assign = vec![(0u8, 0u32); num_records];
        let mut reps = vec![0u32; num_records];
        for (rank, &(d, c)) in assign_ranks.iter().enumerate() {
            let r = ranking[rank] as usize;
            assign[r] = (d, c);
            reps[r] = (m >> d) as u32;
        }

        // Minor cycle j carries chunk (j mod 2^d) of every disk d.
        let mut minor = vec![Vec::new(); m];
        for (r, &(d, c)) in assign.iter().enumerate() {
            let nc = 1usize << d;
            let mut j = c as usize;
            while j < m {
                minor[j].push(r as u32);
                j += nc;
            }
        }
        for cycle in &mut minor {
            cycle.sort_unstable();
        }

        DiskLayout {
            num_records,
            disks,
            assign,
            reps,
            schedule: RepetitionSchedule { minor },
        }
    }

    /// Number of records stratified.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Effective disk count (≤ the configured one for tiny datasets).
    pub fn effective_disks(&self) -> usize {
        self.disks
    }

    /// The `(disk, chunk)` home of record `r`.
    pub fn assignment(&self, r: usize) -> (u8, u32) {
        self.assign[r]
    }

    /// Occurrences of record `r` per major cycle.
    pub fn occurrences(&self, r: usize) -> u32 {
        self.reps[r]
    }

    /// Number of chunks disk `d` is split into (`2^d`).
    pub fn num_chunks(&self, d: usize) -> u32 {
        1u32 << d
    }

    /// The induced minor-cycle schedule.
    pub fn schedule(&self) -> &RepetitionSchedule {
        &self.schedule
    }
}

/// Partition `n` popularity ranks across `disks` disks and their chunks.
/// Returns per-rank `(disk, chunk)` assignments, or `None` if some chunk
/// would be empty (caller retries with fewer disks).
#[allow(clippy::type_complexity)]
fn try_partition(n: usize, disks: usize) -> Option<(Vec<usize>, Vec<(u8, u32)>)> {
    if disks == 1 {
        return Some((vec![0, n], vec![(0, 0); n]));
    }
    if disks > 32 {
        return None;
    }
    // Disk d's record share is proportional to 2^d of the total 2^D - 1.
    let weight_total: usize = (1usize << disks) - 1;
    let mut boundaries = Vec::with_capacity(disks + 1);
    for d in 0..=disks {
        let w = (1usize << d) - 1;
        boundaries.push(n * w / weight_total);
    }
    let mut assign = vec![(0u8, 0u32); n];
    for d in 0..disks {
        let lo = boundaries[d];
        let hi = boundaries[d + 1];
        let len = hi - lo;
        let nc = 1usize << d;
        if len < nc {
            return None;
        }
        for c in 0..nc {
            let clo = lo + c * len / nc;
            let chi = lo + (c + 1) * len / nc;
            for slot in &mut assign[clo..chi] {
                *slot = (d as u8, c as u32);
            }
        }
    }
    Some((boundaries, assign))
}

// ---------------------------------------------------------------------------
// Interleaved scan layout: flat broadcast disks.
// ---------------------------------------------------------------------------

/// Flat broadcast over a disk-stratified repetition schedule.
///
/// The repetition sequence is emitted directly: one data bucket per record
/// *occurrence*. The unmodified [`crate::flat::FlatMachine`] drives it —
/// coverage is keyed by `record_index` and marking is idempotent, so
/// repeated occurrences are harmless — and fast-forward eligibility is
/// preserved (the cycle is still a frozen bucket sequence). At `D = 1` the
/// built program is bit-identical to [`crate::flat::FlatScheme`]'s.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatDisksScheme {
    config: DiskConfig,
}

impl FlatDisksScheme {
    /// Flat broadcast stratified across `config` disks.
    pub fn new(config: DiskConfig) -> Self {
        FlatDisksScheme { config }
    }
}

impl Scheme for FlatDisksScheme {
    type System = FlatSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let layout = DiskLayout::new(dataset.len(), &self.config);
        let size = params.data_bucket_size();
        let buckets = layout
            .schedule()
            .sequence()
            .map(|r| {
                Bucket::new(
                    size,
                    FlatPayload {
                        key: dataset.record(r as usize).key,
                        record_index: r,
                    },
                )
            })
            .collect();
        Ok(FlatSystem::from_parts(
            Channel::new(buckets)?,
            dataset.len() as u32,
        ))
    }
}

// ---------------------------------------------------------------------------
// Chunked navigation layout: generic minor-cycle concatenation.
// ---------------------------------------------------------------------------

/// Byte geometry of a major cycle: where each minor cycle starts, and which
/// minor cycles carry which chunk.
#[derive(Debug)]
pub struct DiskGeometry {
    /// Start offset of each minor cycle within the major cycle.
    minor_starts: Vec<Ticks>,
    /// Major-cycle length in bytes.
    major: Ticks,
    /// Chunks per disk (`2^d`).
    num_chunks: Vec<u32>,
}

impl DiskGeometry {
    /// Whether the program is a single minor cycle (`D = 1`) — the
    /// degenerate case where the inner protocol runs verbatim.
    pub fn single(&self) -> bool {
        self.minor_starts.len() == 1
    }

    /// Number of minor cycles.
    pub fn num_minor_cycles(&self) -> usize {
        self.minor_starts.len()
    }

    /// Start offset of minor cycle `j` within the major cycle.
    pub fn minor_start(&self, j: usize) -> Ticks {
        self.minor_starts[j]
    }

    /// Major-cycle length in bytes.
    pub fn major_len(&self) -> Ticks {
        self.major
    }

    /// The next minor-cycle boundary at or after absolute time `t` whose
    /// minor cycle carries chunk `target.1` of disk `target.0`. Returns the
    /// minor-cycle index and the absolute boundary time (saturating near
    /// `Ticks::MAX`, like the channel's occurrence arithmetic).
    pub fn next_entry(&self, target: (u8, u32), t: Ticks) -> (usize, Ticks) {
        let m = self.minor_starts.len();
        let pos = t % self.major;
        let nc = self.num_chunks[target.0 as usize] as usize;
        let want = target.1 as usize;
        let mut best: Option<(usize, Ticks)> = None;
        for j in (want..m).step_by(nc) {
            let s = self.minor_starts[j];
            let delta = if s >= pos {
                s - pos
            } else {
                self.major - pos + s
            };
            if best.map_or(true, |(_, bd)| delta < bd) {
                best = Some((j, delta));
            }
        }
        let (j, delta) = best.expect("every chunk occurs in some minor cycle");
        (j, t.saturating_add(delta))
    }
}

/// Wrap any navigation scheme into a broadcast-disk program: each minor
/// cycle is a complete inner-scheme build over its chunk's records, and the
/// major cycle is their concatenation.
///
/// Soundness rests on a property all workspace navigation schemes share:
/// machines steer exclusively by *relative forward deltas* (`meta.end +
/// delta`) emitted by their own builder, never by absolute cycle positions.
/// A minor cycle's pointers therefore stay valid wherever the minor cycle
/// sits inside the major cycle — provided the client enters at the minor
/// cycle's start and the walk stays inside it, which the routing machine
/// guarantees (and re-establishes after any corrupted read).
#[derive(Debug, Clone, Copy)]
pub struct DiskScheme<S> {
    inner: S,
    config: DiskConfig,
}

impl<S> DiskScheme<S> {
    /// Stratify `inner`'s programs across `config` disks.
    pub fn new(inner: S, config: DiskConfig) -> Self {
        DiskScheme { inner, config }
    }
}

impl<S: Scheme> Scheme for DiskScheme<S>
where
    <S::System as System>::Payload: Clone,
{
    type System = DiskSystem<S::System>;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        let layout = DiskLayout::new(dataset.len(), &self.config);
        let sched = layout.schedule();
        let m = sched.num_minor_cycles();

        let mut subs = Vec::with_capacity(m);
        let mut buckets = Vec::new();
        let mut minor_starts = Vec::with_capacity(m);
        let mut at: Ticks = 0;
        for j in 0..m {
            let records: Vec<Record> = sched
                .minor_cycle(j)
                .iter()
                .map(|&r| dataset.record(r as usize).clone())
                .collect();
            let sub_ds = Dataset::new(records)?;
            let sub = self.inner.build(&sub_ds, params)?;
            minor_starts.push(at);
            at += sub.channel().cycle_len();
            buckets.extend(sub.channel().buckets().iter().cloned());
            subs.push(sub);
        }

        let name = subs[0].scheme_name();
        let geo = DiskGeometry {
            minor_starts,
            major: at,
            num_chunks: (0..layout.effective_disks())
                .map(|d| layout.num_chunks(d))
                .collect(),
        };
        Ok(DiskSystem {
            channel: Channel::new(buckets)?,
            subs: Arc::new(subs),
            geo: Arc::new(geo),
            keys: Arc::new(dataset.keys().collect()),
            homes: Arc::new((0..dataset.len()).map(|r| layout.assignment(r)).collect()),
            name,
        })
    }
}

/// A built broadcast-disk program wrapping inner-scheme minor cycles.
#[derive(Debug)]
pub struct DiskSystem<S: System> {
    channel: Channel<S::Payload>,
    /// One complete inner system per minor cycle; machines are respawned
    /// from here after routing (and after corruption recovery).
    subs: Arc<Vec<S>>,
    geo: Arc<DiskGeometry>,
    /// Dataset keys in key order — the routing directory's lookup column.
    keys: Arc<Vec<Key>>,
    /// Per record index: `(disk, chunk)` home.
    homes: Arc<Vec<(u8, u32)>>,
    name: &'static str,
}

impl<S: System> DiskSystem<S> {
    /// The major cycle's byte geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geo
    }

    /// The inner system built for minor cycle `j`.
    pub fn sub(&self, j: usize) -> &S {
        &self.subs[j]
    }
}

impl<S: System> System for DiskSystem<S> {
    type Payload = S::Payload;
    type Machine = DiskMachine<S>;

    fn scheme_name(&self) -> &'static str {
        self.name
    }

    fn channel(&self) -> &Channel<S::Payload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<S::Payload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> DiskMachine<S> {
        // Route to the key's home chunk. Absent keys route to the home of
        // their key-order successor (clamped): any chunk works for them —
        // the key is absent from *every* chunk, and the chosen sub-program's
        // index proves that absence — so the choice only needs to be
        // deterministic.
        let r = match self.keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => i.min(self.keys.len() - 1),
        };
        DiskMachine {
            key,
            target: self.homes[r],
            subs: Arc::clone(&self.subs),
            geo: Arc::clone(&self.geo),
            inner: None,
            chosen: 0,
            seeking: false,
        }
    }
}

/// Routing protocol machine for [`DiskSystem`]: doze to the next minor
/// cycle carrying the key's chunk, then run the inner scheme's machine
/// verbatim from that boundary.
///
/// Like the hashing machine's initial-probe arithmetic, the routing table
/// (minor-cycle boundaries and the key→chunk directory) is a-priori
/// schedule knowledge of constant size — the broadcast-disk analogue of a
/// published program guide; it is *navigation* metadata only, never proof
/// of presence (absence is always concluded by the inner index on the air).
#[derive(Debug)]
pub struct DiskMachine<S: System> {
    key: Key,
    target: (u8, u32),
    subs: Arc<Vec<S>>,
    geo: Arc<DiskGeometry>,
    inner: Option<S::Machine>,
    /// Minor cycle being routed to (valid while `seeking`).
    chosen: usize,
    seeking: bool,
}

impl<S: System> DiskMachine<S> {
    /// Doze to the next boundary of a minor cycle carrying the target
    /// chunk, discarding any in-flight inner machine. Also the corruption
    /// recovery path: an inner machine's own recovery logic assumes its
    /// sub-cycle's geometry and must not be trusted across chunk
    /// boundaries, so recovery always re-routes.
    fn seek(&mut self, t: Ticks) -> Action {
        let (j, s) = self.geo.next_entry(self.target, t);
        self.chosen = j;
        self.inner = None;
        self.seeking = true;
        Action::DozeTo(s)
    }
}

impl<S: System> ProtocolMachine<S::Payload> for DiskMachine<S> {
    fn start(&mut self, tune_in: Ticks) -> Action {
        if self.geo.single() {
            // D = 1: the single minor cycle *is* the inner program, and its
            // machine handles arbitrary mid-cycle tune-in natively (wrapping
            // pointers land in the same program) — run it verbatim for
            // bit-identical outcomes.
            let mut m = self.subs[0].query(self.key);
            let action = m.start(tune_in);
            self.inner = Some(m);
            self.seeking = false;
            return action;
        }
        self.seek(tune_in)
    }

    fn on_bucket(&mut self, payload: &S::Payload, meta: BucketMeta) -> Action {
        if self.seeking {
            // Landed on the first bucket of the chosen minor cycle: spawn
            // the inner machine as if it tuned in exactly at the boundary.
            let mut m = self.subs[self.chosen].query(self.key);
            let started = m.start(meta.start);
            self.seeking = false;
            let action = match started {
                Action::ReadNext => m.on_bucket(payload, meta),
                other => other,
            };
            self.inner = Some(m);
            return action;
        }
        self.inner
            .as_mut()
            .expect("bucket delivered before start")
            .on_bucket(payload, meta)
    }

    fn on_corrupt(&mut self, meta: BucketMeta) -> Action {
        if self.geo.single() {
            return self
                .inner
                .as_mut()
                .expect("corrupt bucket before start")
                .on_corrupt(meta);
        }
        self.seek(meta.end)
    }

    fn bucket_kind(&self, payload: &S::Payload) -> BucketKind {
        match &self.inner {
            Some(m) if !self.seeking => m.bucket_kind(payload),
            // The chunk-entry landing bucket is consumed as navigation.
            _ => BucketKind::Index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatScheme;
    use crate::record::Record;
    use crate::scheme::DynSystem;

    fn ds(n: u64) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i * 3)).collect()).unwrap()
    }

    #[test]
    fn single_disk_layout_is_the_identity_program() {
        let l = DiskLayout::new(10, &DiskConfig::new(1));
        assert_eq!(l.effective_disks(), 1);
        assert_eq!(l.schedule().num_minor_cycles(), 1);
        assert_eq!(
            l.schedule().sequence().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        for r in 0..10 {
            assert_eq!(l.occurrences(r), 1);
            assert_eq!(l.assignment(r), (0, 0));
        }
    }

    #[test]
    fn three_disk_layout_has_expected_shape() {
        let l = DiskLayout::new(70, &DiskConfig::new(3));
        assert_eq!(l.effective_disks(), 3);
        let s = l.schedule();
        assert_eq!(s.num_minor_cycles(), 4);
        // Disk shares: 1/7, 2/7, 4/7 of 70 = 10, 20, 40 records.
        assert_eq!(l.assignment(0), (0, 0));
        assert_eq!(l.assignment(9), (0, 0));
        assert_eq!(l.assignment(10).0, 1);
        assert_eq!(l.assignment(29).0, 1);
        assert_eq!(l.assignment(30).0, 2);
        assert_eq!(l.assignment(69).0, 2);
        // Repetition counts: 4×, 2×, 1×.
        assert_eq!(l.occurrences(0), 4);
        assert_eq!(l.occurrences(15), 2);
        assert_eq!(l.occurrences(50), 1);
        // Each minor cycle: all of disk 0, half of disk 1, quarter of disk 2.
        for j in 0..4 {
            assert_eq!(s.minor_cycle(j).len(), 10 + 10 + 10);
        }
        // Total occurrences = 10·4 + 20·2 + 40·1.
        assert_eq!(s.num_occurrences(), 120);
    }

    #[test]
    fn tiny_datasets_clamp_the_disk_count() {
        // 2 records cannot fill 3 disks (needs ≥ 7); they can fill 2
        // (needs ≥ 3)? No: disk 1 needs 2 chunks from a 2·2/3 ≈ 1-record
        // share — clamps to 1 disk.
        let l = DiskLayout::new(2, &DiskConfig::new(3));
        assert_eq!(l.effective_disks(), 1);
        let l = DiskLayout::new(1, &DiskConfig::new(2));
        assert_eq!(l.effective_disks(), 1);
        // 7 records exactly fill 3 disks: 1 + 2 + 4.
        let l = DiskLayout::new(7, &DiskConfig::new(3));
        assert_eq!(l.effective_disks(), 3);
        assert_eq!(l.assignment(0), (0, 0));
        assert_eq!(l.occurrences(0), 4);
        assert_eq!(l.occurrences(6), 1);
    }

    #[test]
    fn flat_disks_at_d1_is_bit_identical_to_flat() {
        let d = ds(32);
        let p = Params::paper();
        let base = FlatScheme.build(&d, &p).unwrap();
        let disks = FlatDisksScheme::new(DiskConfig::new(1))
            .build(&d, &p)
            .unwrap();
        assert_eq!(base.channel().buckets(), disks.channel().buckets());
        let dt = u64::from(p.data_bucket_size());
        for k in 0..32u64 {
            for t in [0, dt / 2, 7 * dt + 3, 31 * dt] {
                assert_eq!(base.probe(Key(k * 3), t), disks.probe(Key(k * 3), t));
            }
        }
        assert_eq!(base.probe(Key(1), 5), disks.probe(Key(1), 5));
    }

    #[test]
    fn flat_disks_finds_every_key_and_rejects_absent_ones() {
        let d = ds(70);
        let p = Params::paper();
        let sys = FlatDisksScheme::new(DiskConfig::new(3))
            .build(&d, &p)
            .unwrap();
        assert_eq!(sys.num_buckets(), 120, "10·4 + 20·2 + 40·1 occurrences");
        let cycle = sys.cycle_len();
        for k in 0..70u64 {
            for s in 0..7 {
                let out = sys.probe(Key(k * 3), s * cycle / 7 + 11);
                assert!(out.found, "key {k} slot {s}");
                assert!(!out.aborted);
            }
        }
        let out = sys.probe(Key(1), 13);
        assert!(!out.found);
        assert!(!out.aborted);
    }

    #[test]
    fn hot_records_wait_less_on_average() {
        let d = ds(70);
        let p = Params::paper();
        let sys = FlatDisksScheme::new(DiskConfig::new(3))
            .build(&d, &p)
            .unwrap();
        let cycle = sys.cycle_len();
        let avg = |key: Key| {
            let mut total = 0u64;
            for s in 0..200u64 {
                total += sys.probe(key, s * cycle / 200 + 1).access;
            }
            total / 200
        };
        let hot = avg(Key(0));
        let cold = avg(Key(69 * 3));
        assert!(
            hot * 2 < cold,
            "hot record (4×/cycle) must wait far less: hot={hot} cold={cold}"
        );
    }

    #[test]
    fn geometry_routing_picks_the_nearest_valid_boundary() {
        let geo = DiskGeometry {
            minor_starts: vec![0, 100, 210, 330],
            major: 460,
            num_chunks: vec![1, 2, 4],
        };
        // Disk 0 chunk 0 occurs in every minor cycle.
        assert_eq!(geo.next_entry((0, 0), 0), (0, 0));
        assert_eq!(geo.next_entry((0, 0), 5), (1, 100));
        assert_eq!(geo.next_entry((0, 0), 331), (0, 460));
        // Disk 2 chunk 3 occurs only in minor cycle 3.
        assert_eq!(geo.next_entry((2, 3), 0), (3, 330));
        assert_eq!(geo.next_entry((2, 3), 331), (3, 330 + 460));
        // Disk 1 chunk 1 occurs in minor cycles 1 and 3.
        assert_eq!(geo.next_entry((1, 1), 150), (3, 330));
        assert_eq!(geo.next_entry((1, 1), 350), (1, 460 + 100));
    }
}
