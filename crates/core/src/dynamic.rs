//! Dynamic broadcast programs: versioned epochs and the stale-aware walker.
//!
//! The paper freezes the broadcast program: every cycle repeats the same
//! buckets forever, so a client chasing a pointer can never be misled. A
//! *dynamic* server mutates the database between cycles and rebuilds the
//! program, which breaks that guarantee — a pointer read from version `v`
//! may land in a bucket laid out by version `v + 1` whose offsets mean
//! something entirely different.
//!
//! This module models the client side of that world:
//!
//! * A [`ProgramTimeline`] is the air history: a sequence of [`Epoch`]s,
//!   each broadcasting one immutable program (a built [`System`]) for a
//!   whole number of its cycles. Version stamps are carried in every
//!   bucket header ([`crate::Bucket::version`]).
//! * A [`VersionedWalk`] drives a [`ProtocolMachine`] across the timeline
//!   with byte-exact [`Walk`]-compatible accounting. Before a bucket's
//!   payload reaches the machine, the walker compares the header version
//!   against the walk's **anchor version** (the program the machine's
//!   pointers were derived from). On mismatch it reports the skew to the
//!   machine ([`ProtocolMachine::on_stale`]) and, for the default
//!   [`StaleResponse::Respawn`], rebuilds the machine against the live
//!   program and re-anchors at the skewed bucket.
//!
//! The discipline that makes verdicts sound: **a machine only ever sees
//! payloads whose version equals its own build version.** Every verdict is
//! therefore computed entirely within one program version, so "found"
//! means the record was broadcast by some program on the air during the
//! walk, and "not found" means some single program provably lacked it —
//! never a phantom read of a half-old, half-new cycle.
//!
//! With a single epoch (a frozen program) the walker executes the exact
//! same decisions as [`Walk`] and produces bit-identical
//! [`AccessOutcome`]s — the keystone invariant the differential suite in
//! `bda-sim` pins down.

use crate::bucket::{Bucket, BucketMeta};
use crate::error::{BdaError, Result};
use crate::errors_model::{ChannelModel, ErrorModel, RetryPolicy};
use crate::key::Key;
use crate::machine::{AccessOutcome, Action, ProtocolMachine, StaleResponse, WalkStep};
use crate::scheme::{QueryRun, QuerySlot, System};
use crate::Ticks;
use bda_obs::{BucketKind, NoopRecorder, Phase, PhaseSpans, Recorder, SpanRecorder};

/// One stretch of air time during which a single broadcast program repeats.
#[derive(Debug)]
pub struct Epoch<S: System> {
    /// The immutable program on the air during this epoch. Its channel
    /// (and every bucket header) is stamped with the epoch's version.
    pub system: S,
    /// Absolute time the epoch begins. The first cycle of the program
    /// starts exactly here.
    pub start: Ticks,
}

impl<S: System> Epoch<S> {
    /// The program version this epoch broadcasts.
    pub fn version(&self) -> u64 {
        self.system.channel().version()
    }
}

/// The broadcast history of a dynamic server: consecutive [`Epoch`]s, each
/// spanning a whole number of its own program's cycles. The last epoch
/// extends forever (the server stopped updating, or the simulation horizon
/// ended).
#[derive(Debug)]
pub struct ProgramTimeline<S: System> {
    epochs: Vec<Epoch<S>>,
}

impl<S: System> ProgramTimeline<S> {
    /// Assemble a timeline. Fails unless the epochs are non-empty, start at
    /// time 0, strictly increase, and each finite epoch spans a whole
    /// number of its own cycles — the alignment that guarantees every
    /// epoch boundary is also a cycle boundary of the outgoing program, so
    /// no bucket straddles two programs.
    pub fn new(epochs: Vec<Epoch<S>>) -> Result<Self> {
        if epochs.is_empty() {
            return Err(BdaError::BuildError("timeline has no epochs".into()));
        }
        if epochs[0].start != 0 {
            return Err(BdaError::BuildError(format!(
                "first epoch starts at {} instead of 0",
                epochs[0].start
            )));
        }
        for i in 0..epochs.len() - 1 {
            let span = epochs[i + 1].start.saturating_sub(epochs[i].start);
            let cycle = epochs[i].system.channel().cycle_len();
            if span == 0 {
                return Err(BdaError::BuildError(format!(
                    "epoch {} is empty (start {} repeated)",
                    i + 1,
                    epochs[i + 1].start
                )));
            }
            if span % cycle != 0 {
                return Err(BdaError::BuildError(format!(
                    "epoch {i} spans {span} bytes, not a multiple of its cycle length {cycle}"
                )));
            }
        }
        Ok(ProgramTimeline { epochs })
    }

    /// A single-epoch timeline: the frozen-program special case.
    pub fn frozen(system: S) -> Self {
        ProgramTimeline {
            epochs: vec![Epoch { system, start: 0 }],
        }
    }

    /// All epochs in air order.
    pub fn epochs(&self) -> &[Epoch<S>] {
        &self.epochs
    }

    /// Epoch `i`.
    pub fn epoch(&self, i: usize) -> &Epoch<S> {
        &self.epochs[i]
    }

    /// Index of the epoch on the air at absolute time `t` (the last epoch
    /// with `start <= t`).
    pub fn index_at(&self, t: Ticks) -> usize {
        self.epochs.partition_point(|e| e.start <= t) - 1
    }

    /// The first complete bucket a client tuning in (or resuming) at `t`
    /// can read: `(epoch index, bucket index, absolute start time)`.
    ///
    /// Within an epoch this is the epoch-local
    /// [`crate::Channel::first_complete_at`]; when the wait would cross
    /// into the next epoch the answer is that epoch's first bucket. Epoch
    /// spans are whole cycles, so a wrap past the last bucket lands exactly
    /// on the epoch boundary — never inside a phantom cycle of the old
    /// program.
    pub fn first_complete_at(&self, t: Ticks) -> (usize, usize, Ticks) {
        let ei = self.index_at(t);
        let e = &self.epochs[ei];
        let local = t - e.start;
        let (idx, start_local) = e.system.channel().first_complete_at(local);
        let start = e.start.saturating_add(start_local);
        if let Some(next) = self.epochs.get(ei + 1) {
            if start >= next.start {
                return (ei + 1, 0, next.start);
            }
        }
        (ei, idx, start)
    }
}

/// Drives a [`ProtocolMachine`] across a [`ProgramTimeline`] — the
/// dynamic-broadcast counterpart of [`Walk`], with identical byte
/// accounting plus version-skew detection and stale-restart recovery.
///
/// [`Walk`]: crate::machine::Walk
#[derive(Debug)]
pub struct VersionedWalk<'a, S: System, R = NoopRecorder> {
    timeline: &'a ProgramTimeline<S>,
    machine: S::Machine,
    key: Key,
    /// Program version the current machine's pointers are derived from.
    anchor_version: u64,
    tune_in: Ticks,
    now: Ticks,
    tuning: Ticks,
    probes: u32,
    retries: u32,
    stale_restarts: u32,
    version_skews: u32,
    false_drops_hint: u32,
    pending: Option<Action>,
    outcome: Option<AccessOutcome>,
    max_probes: u32,
    channel: ChannelModel,
    policy: RetryPolicy,
    /// Consecutive unusable reads that fell inside an outage window —
    /// drives the exponential resynchronization back-off; reset by any
    /// usable or merely-lossy read.
    outage_streak: u32,
    recorder: R,
}

impl<'a, S: System> VersionedWalk<'a, S> {
    /// Begin a query at absolute time `tune_in` over a lossless channel.
    pub fn new(timeline: &'a ProgramTimeline<S>, key: Key, tune_in: Ticks) -> Self {
        VersionedWalk::with_policy(
            timeline,
            key,
            tune_in,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        )
    }

    /// Begin a query with fault injection and an explicit client retry
    /// policy — the full-fat constructor matching
    /// [`Walk::with_policy`](crate::machine::Walk::with_policy).
    pub fn with_policy(
        timeline: &'a ProgramTimeline<S>,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Self {
        VersionedWalk::with_recorder(timeline, key, tune_in, errors, policy, NoopRecorder)
    }

    /// Begin a query over a unified [`ChannelModel`] (i.i.d. or burst
    /// loss, with or without outages). With a degenerate channel
    /// (`ChannelModel::from(errors)`) this is bit-identical to
    /// [`VersionedWalk::with_policy`].
    pub fn with_channel(
        timeline: &'a ProgramTimeline<S>,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        VersionedWalk::with_channel_recorder(timeline, key, tune_in, channel, policy, NoopRecorder)
    }
}

impl<'a, S: System, R: Recorder> VersionedWalk<'a, S, R> {
    /// Begin a query that reports every step's phase-attributed span to
    /// `recorder` — the dynamic counterpart of
    /// [`Walk::with_recorder`](crate::machine::Walk::with_recorder). Skewed
    /// reads (header version ≠ anchor version) are attributed to
    /// [`Phase::StaleRecovery`].
    pub fn with_recorder(
        timeline: &'a ProgramTimeline<S>,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
        recorder: R,
    ) -> Self {
        VersionedWalk::with_channel_recorder(
            timeline,
            key,
            tune_in,
            errors.into(),
            policy,
            recorder,
        )
    }

    /// [`VersionedWalk::with_channel`] with span instrumentation — the most
    /// general constructor; every other constructor delegates here.
    pub fn with_channel_recorder(
        timeline: &'a ProgramTimeline<S>,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
        recorder: R,
    ) -> Self {
        let epoch = timeline.epoch(timeline.index_at(tune_in));
        let mut machine = epoch.system.query(key);
        let pending = machine.start(tune_in);
        // Same budget formula as `Walk`, sized by the largest program on
        // the timeline (identical to the frozen budget when there is one
        // epoch, so zero-update runs abort at exactly the same point).
        let max_buckets = timeline
            .epochs()
            .iter()
            .map(|e| e.system.channel().num_buckets())
            .max()
            .unwrap_or(1) as u32;
        let base = max_buckets.saturating_mul(4).saturating_add(64);
        let worst = channel.worst_loss();
        let mut max_probes = if worst > 0.0 {
            let factor = (1.0 / (1.0 - worst.min(0.99))).ceil() as u32 + 4;
            base.saturating_mul(factor)
        } else {
            base
        };
        if channel.has_outages() {
            max_probes = max_probes.saturating_mul(4).saturating_add(256);
        }
        VersionedWalk {
            timeline,
            machine,
            key,
            anchor_version: epoch.version(),
            tune_in,
            now: tune_in,
            tuning: 0,
            probes: 0,
            retries: 0,
            stale_restarts: 0,
            version_skews: 0,
            false_drops_hint: 0,
            pending: Some(pending),
            outcome: None,
            max_probes,
            channel,
            policy,
            outage_streak: 0,
            recorder,
        }
    }

    /// The walk's recorder (e.g. to read accumulated spans).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the walk's recorder.
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Absolute simulation time the client has reached.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Whether the query has completed.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The outcome, if the query has completed.
    pub fn outcome(&self) -> Option<AccessOutcome> {
        self.outcome
    }

    fn finish(&mut self, found: bool, false_drops: u32, aborted: bool) -> WalkStep {
        let out = AccessOutcome {
            found,
            access: self.now - self.tune_in,
            tuning: self.tuning,
            probes: self.probes,
            false_drops,
            retries: self.retries,
            abandoned: false,
            aborted,
            stale_restarts: self.stale_restarts,
            version_skews: self.version_skews,
        };
        self.outcome = Some(out);
        WalkStep::Done(out)
    }

    /// Give up truthfully — the retry budget ran out, or program churn
    /// starved the walk (probe budget exhausted with restarts on record).
    fn abandon(&mut self) -> WalkStep {
        let mut step = self.finish(false, self.false_drops_hint, false);
        if let (Some(out), WalkStep::Done(done)) = (self.outcome.as_mut(), &mut step) {
            out.abandoned = true;
            done.abandoned = true;
        }
        step
    }

    /// The probe budget ran out. On a channel that actually corrupted
    /// reads — or under program churn that starved the walk — this is a
    /// truthful abandonment; on a clean frozen walk it flags a runaway
    /// machine and aborts, as it always has.
    fn exhaust(&mut self) -> WalkStep {
        if self.retries > 0 || self.stale_restarts > 0 {
            self.abandon()
        } else {
            self.finish(false, self.false_drops_hint, true)
        }
    }

    /// Apply a back-off of `cycles` whole cycles to a post-corruption
    /// action, using the cycle length of the program the client just read
    /// from (whole-cycle shifts preserve the bucket the machine expects).
    fn backoff(&self, act: Action, cycles: u32, cycle_len: Ticks) -> Action {
        if cycles == 0 {
            return act;
        }
        let shift = Ticks::from(cycles).saturating_mul(cycle_len);
        match act {
            Action::ReadNext => Action::DozeTo(self.now.saturating_add(shift)),
            Action::DozeTo(t) => Action::DozeTo(t.saturating_add(shift)),
            other => other,
        }
    }

    /// Discard the stale machine and restart the protocol against the
    /// program that owns `bucket`. The skewed bucket is already paid for
    /// (probe + tuning), and it is a perfectly valid bucket of the *new*
    /// program — so if the fresh machine's first action is `ReadNext`, the
    /// walker feeds it this bucket instead of burning another read.
    fn respawn(
        &mut self,
        epoch: &'a Epoch<S>,
        bucket: &'a Bucket<S::Payload>,
        meta: BucketMeta,
    ) -> Action {
        self.stale_restarts += 1;
        self.anchor_version = bucket.version;
        self.machine = epoch.system.query(self.key);
        let act = self.machine.start(meta.start);
        if matches!(act, Action::ReadNext) {
            self.machine.on_bucket(&bucket.payload, meta)
        } else {
            act
        }
    }

    /// Execute the machine's next action and report what happened —
    /// byte-for-byte the same accounting as
    /// [`Walk::step`](crate::machine::Walk::step), plus the version-skew
    /// check between corruption handling and payload delivery.
    pub fn step(&mut self) -> WalkStep {
        if let Some(out) = self.outcome {
            return WalkStep::Done(out);
        }
        let action = self
            .pending
            .take()
            .expect("walk invariant: pending action present while not done");
        match action {
            Action::ReadNext => {
                if self.probes >= self.max_probes {
                    return self.exhaust();
                }
                let timeline = self.timeline;
                let (ei, idx, start) = timeline.first_complete_at(self.now);
                let epoch = timeline.epoch(ei);
                let ch = epoch.system.channel();
                let bucket = ch.bucket(idx);
                let size = Ticks::from(bucket.size);
                let end = start + size;
                let from = self.now;
                self.tuning += end - self.now;
                self.now = end;
                self.probes += 1;
                let meta = BucketMeta {
                    index: idx,
                    start,
                    end,
                    size: size as u32,
                    version: bucket.version,
                };
                if R::ENABLED {
                    // Corruption trumps skew (the header is unreadable);
                    // skew trumps structure (the payload is withheld from
                    // the machine, so the read buys recovery, not progress).
                    let phase = if self.channel.corrupted(start) {
                        Phase::Retry
                    } else if bucket.version != self.anchor_version {
                        Phase::StaleRecovery
                    } else if self.probes == 1 {
                        Phase::InitialProbe
                    } else {
                        match self.machine.bucket_kind(&bucket.payload) {
                            BucketKind::Index => Phase::IndexTraversal,
                            BucketKind::Data => Phase::DataRead,
                        }
                    };
                    self.recorder.span(phase, end - from, end - from);
                }
                let next = if self.channel.corrupted(start) {
                    // A corrupted transmission hides the header too: the
                    // client can't even see the version. Skew, if any, is
                    // caught on the next clean read.
                    self.retries += 1;
                    if self.policy.gives_up(self.retries, self.now - self.tune_in) {
                        return self.abandon();
                    }
                    if self.channel.in_outage(start) {
                        // Carrier gone: resynchronize against whichever
                        // program is on the air when the client returns.
                        self.outage_streak += 1;
                        let recovery = self.machine.on_outage(meta);
                        let cycles = self.policy.recovery_cycles(self.outage_streak, true);
                        self.backoff(recovery, cycles, ch.cycle_len())
                    } else {
                        self.outage_streak = 0;
                        let recovery = self.machine.on_corrupt(meta);
                        let cycles = self.policy.recovery_cycles(self.retries, false);
                        self.backoff(recovery, cycles, ch.cycle_len())
                    }
                } else if bucket.version != self.anchor_version {
                    self.outage_streak = 0;
                    self.version_skews += 1;
                    match self.machine.on_stale(meta) {
                        StaleResponse::Resume(act) => {
                            self.anchor_version = bucket.version;
                            act
                        }
                        StaleResponse::Respawn => self.respawn(epoch, bucket, meta),
                    }
                } else {
                    self.outage_streak = 0;
                    self.machine.on_bucket(&bucket.payload, meta)
                };
                if let Action::Finish(v) = next {
                    self.false_drops_hint = v.false_drops;
                }
                self.pending = Some(next);
                WalkStep::Read {
                    bucket: idx,
                    from,
                    until: end,
                }
            }
            Action::DozeTo(t) => {
                if t < self.now {
                    return self.finish(false, self.false_drops_hint, true);
                }
                if R::ENABLED {
                    self.recorder.span(Phase::Doze, t - self.now, 0);
                }
                self.now = t;
                self.pending = Some(Action::ReadNext);
                WalkStep::Doze { until: t }
            }
            Action::Finish(v) => self.finish(v.found, v.false_drops, false),
            Action::Fail(_) => self.finish(false, self.false_drops_hint, true),
        }
    }

    /// Drive the walk to completion.
    pub fn run(mut self) -> AccessOutcome {
        loop {
            if let WalkStep::Done(out) = self.step() {
                return out;
            }
        }
    }
}

impl<S: System, R: Recorder> QueryRun for VersionedWalk<'_, S, R> {
    fn step(&mut self) -> WalkStep {
        VersionedWalk::step(self)
    }

    fn now(&self) -> Ticks {
        VersionedWalk::now(self)
    }
}

/// Run one query over a dynamic broadcast timeline (lossless fast path).
pub fn run_versioned<S: System>(
    timeline: &ProgramTimeline<S>,
    key: Key,
    tune_in: Ticks,
) -> AccessOutcome {
    VersionedWalk::new(timeline, key, tune_in).run()
}

/// Run one query over a dynamic broadcast timeline with fault injection
/// and an explicit client retry policy.
pub fn run_versioned_with_policy<S: System>(
    timeline: &ProgramTimeline<S>,
    key: Key,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> AccessOutcome {
    VersionedWalk::with_policy(timeline, key, tune_in, errors, policy).run()
}

/// Run one query over a dynamic broadcast timeline behind a unified
/// [`ChannelModel`] (burst loss, outages, or both).
pub fn run_versioned_with_channel<S: System>(
    timeline: &ProgramTimeline<S>,
    key: Key,
    tune_in: Ticks,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> AccessOutcome {
    VersionedWalk::with_channel(timeline, key, tune_in, channel, policy).run()
}

/// [`run_versioned_with_channel`] with span instrumentation.
pub fn run_versioned_observed_channel<S: System>(
    timeline: &ProgramTimeline<S>,
    key: Key,
    tune_in: Ticks,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> (AccessOutcome, PhaseSpans) {
    let mut walk = VersionedWalk::with_channel_recorder(
        timeline,
        key,
        tune_in,
        channel,
        policy,
        SpanRecorder::new(),
    );
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return (out, walk.recorder().spans);
        }
    }
}

/// [`run_versioned_with_policy`] with span instrumentation: also returns
/// the walk's per-phase decomposition, whose totals equal the outcome's
/// `access`/`tuning` exactly. Skewed reads land in
/// [`Phase::StaleRecovery`].
pub fn run_versioned_observed<S: System>(
    timeline: &ProgramTimeline<S>,
    key: Key,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> (AccessOutcome, PhaseSpans) {
    let mut walk =
        VersionedWalk::with_recorder(timeline, key, tune_in, errors, policy, SpanRecorder::new());
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return (out, walk.recorder().spans);
        }
    }
}

/// The reusable [`QuerySlot`] over a [`ProgramTimeline`] — the dynamic
/// counterpart of [`crate::scheme::WalkSlot`], used by the slab engine so
/// dynamic mode performs no per-request allocation either.
pub struct VersionedSlot<'a, S: System> {
    timeline: &'a ProgramTimeline<S>,
    walk: Option<VersionedWalk<'a, S>>,
    channel: ChannelModel,
    policy: RetryPolicy,
}

impl<'a, S: System> VersionedSlot<'a, S> {
    /// An empty lossless slot; [`QuerySlot::start`] arms it.
    pub fn new(timeline: &'a ProgramTimeline<S>) -> Self {
        VersionedSlot::with_faults(timeline, ErrorModel::NONE, RetryPolicy::UNBOUNDED)
    }

    /// An empty slot whose queries run over an error-prone channel with a
    /// client retry policy.
    pub fn with_faults(
        timeline: &'a ProgramTimeline<S>,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Self {
        VersionedSlot::with_channel(timeline, errors.into(), policy)
    }

    /// An empty slot whose queries run behind a unified [`ChannelModel`].
    pub fn with_channel(
        timeline: &'a ProgramTimeline<S>,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        VersionedSlot {
            timeline,
            walk: None,
            channel,
            policy,
        }
    }
}

impl<S: System> QuerySlot for VersionedSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        self.walk = Some(VersionedWalk::with_channel(
            self.timeline,
            key,
            tune_in,
            self.channel,
            self.policy,
        ));
    }

    fn step(&mut self) -> WalkStep {
        self.walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step()
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, VersionedWalk::is_done)
    }
}

/// The instrumented counterpart of [`VersionedSlot`]: each query runs with
/// a [`SpanRecorder`], exposed via [`QuerySlot::spans`].
pub struct ObservedVersionedSlot<'a, S: System> {
    timeline: &'a ProgramTimeline<S>,
    walk: Option<VersionedWalk<'a, S, SpanRecorder>>,
    channel: ChannelModel,
    policy: RetryPolicy,
}

impl<'a, S: System> ObservedVersionedSlot<'a, S> {
    /// An empty instrumented slot; [`QuerySlot::start`] arms it.
    pub fn with_faults(
        timeline: &'a ProgramTimeline<S>,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Self {
        ObservedVersionedSlot::with_channel(timeline, errors.into(), policy)
    }

    /// An empty instrumented slot behind a unified [`ChannelModel`].
    pub fn with_channel(
        timeline: &'a ProgramTimeline<S>,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        ObservedVersionedSlot {
            timeline,
            walk: None,
            channel,
            policy,
        }
    }
}

impl<S: System> QuerySlot for ObservedVersionedSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        self.walk = Some(VersionedWalk::with_channel_recorder(
            self.timeline,
            key,
            tune_in,
            self.channel,
            self.policy,
            SpanRecorder::new(),
        ));
    }

    fn step(&mut self) -> WalkStep {
        self.walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step()
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, VersionedWalk::is_done)
    }

    fn spans(&self) -> Option<&PhaseSpans> {
        self.walk.as_ref().map(|w| &w.recorder().spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatScheme;
    use crate::machine::run_machine;
    use crate::params::Params;
    use crate::record::{Dataset, Record};
    use crate::scheme::Scheme;

    fn dataset(keys: &[u64]) -> Dataset {
        Dataset::new(keys.iter().map(|&k| Record::keyed(k)).collect()).unwrap()
    }

    /// Two flat epochs: keys {0,10,20,30} for two cycles, then {0,10,30,40}
    /// (20 deleted, 40 inserted) forever.
    fn two_epoch_timeline() -> ProgramTimeline<crate::flat::FlatSystem> {
        let params = Params::paper();
        let sys0 = FlatScheme
            .build(&dataset(&[0, 10, 20, 30]), &params)
            .unwrap();
        let boundary = 2 * sys0.channel().cycle_len();
        let sys1 = FlatScheme
            .rebuild(&dataset(&[0, 10, 30, 40]), &params, 1)
            .unwrap();
        ProgramTimeline::new(vec![
            Epoch {
                system: sys0,
                start: 0,
            },
            Epoch {
                system: sys1,
                start: boundary,
            },
        ])
        .unwrap()
    }

    #[test]
    fn timeline_validation_rejects_misaligned_epochs() {
        let params = Params::paper();
        let sys0 = FlatScheme.build(&dataset(&[0, 10]), &params).unwrap();
        let sys1 = FlatScheme.rebuild(&dataset(&[0, 10]), &params, 1).unwrap();
        let err = ProgramTimeline::new(vec![
            Epoch {
                system: sys0,
                start: 0,
            },
            Epoch {
                system: sys1,
                start: 7,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, BdaError::BuildError(_)));
        assert!(ProgramTimeline::<crate::flat::FlatSystem>::new(vec![]).is_err());
    }

    #[test]
    fn index_and_first_complete_cross_epochs() {
        let tl = two_epoch_timeline();
        let boundary = tl.epoch(1).start;
        assert_eq!(tl.index_at(0), 0);
        assert_eq!(tl.index_at(boundary - 1), 0);
        assert_eq!(tl.index_at(boundary), 1);
        // Tuning in mid-way through the old program's last bucket wraps to
        // the new program's first bucket, never a phantom old cycle.
        let (ei, idx, start) = tl.first_complete_at(boundary - 1);
        assert_eq!((ei, idx, start), (1, 0, boundary));
    }

    #[test]
    fn single_epoch_walk_is_bit_identical_to_frozen_walk() {
        let params = Params::paper();
        let keys = [0u64, 10, 20, 30, 40, 50, 60, 70];
        let sys = FlatScheme.build(&dataset(&keys), &params).unwrap();
        let tl = ProgramTimeline::frozen(FlatScheme.build(&dataset(&keys), &params).unwrap());
        for key in [Key(0), Key(30), Key(35), Key(70)] {
            for t in [0u64, 17, 1000, 5555] {
                let frozen = run_machine(sys.channel(), sys.query(key), t);
                let dynamic = run_versioned(&tl, key, t);
                assert_eq!(frozen, dynamic, "key {key:?} t {t}");
                assert_eq!(dynamic.version_skews, 0);
                assert_eq!(dynamic.stale_restarts, 0);
            }
        }
    }

    #[test]
    fn walk_across_boundary_restarts_and_stays_truthful() {
        let tl = two_epoch_timeline();
        let boundary = tl.epoch(1).start;
        let bucket = u64::from(Params::paper().data_bucket_size());
        // Tune in one bucket before the boundary, searching key 40 (only
        // exists after the update). The scan crosses into epoch 1, detects
        // the skew, respawns, and finds the key in the new program.
        let out = run_versioned(&tl, Key(40), boundary - bucket);
        assert!(out.found, "key inserted by the update must be found");
        assert!(!out.aborted);
        assert_eq!(out.stale_restarts, 1);
        assert!(out.version_skews >= 1);

        // Key 20 is deleted by the update. A client starting just before
        // the boundary either never sees it (respawns into epoch 1 and
        // scans a full new cycle) — truthful not-found — or the walk
        // aborts never; a stale payload is never returned.
        let out = run_versioned(&tl, Key(20), boundary - bucket);
        assert!(!out.aborted);
        assert!(!out.found, "deleted key must not resolve to a stale record");
        assert!(out.version_skews >= 1);
    }

    #[test]
    fn walk_entirely_within_an_epoch_sees_no_skew() {
        let tl = two_epoch_timeline();
        let out = run_versioned(&tl, Key(20), 0);
        // Key 20 exists throughout epoch 0 and the scan completes within
        // the first cycle: found, no skew.
        assert!(out.found);
        assert_eq!(out.version_skews, 0);
        assert_eq!(out.stale_restarts, 0);

        let boundary = tl.epoch(1).start;
        let out = run_versioned(&tl, Key(40), boundary);
        assert!(out.found);
        assert_eq!(out.version_skews, 0);
    }

    #[test]
    fn skewed_reads_are_attributed_to_stale_recovery() {
        let tl = two_epoch_timeline();
        let boundary = tl.epoch(1).start;
        let bucket = u64::from(Params::paper().data_bucket_size());
        let (out, spans) = run_versioned_observed(
            &tl,
            Key(40),
            boundary - bucket,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        );
        assert!(out.found);
        assert!(out.version_skews >= 1);
        assert_eq!(spans.total_access(), out.access);
        assert_eq!(spans.total_tuning(), out.tuning);
        assert_eq!(
            spans.get(Phase::StaleRecovery).count,
            u64::from(out.version_skews),
            "every skewed read is a StaleRecovery span"
        );

        // A skew-free walk records no StaleRecovery spans, and the observed
        // walk's outcome matches the plain one bit-for-bit.
        let (clean, clean_spans) =
            run_versioned_observed(&tl, Key(20), 0, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        assert_eq!(clean, run_versioned(&tl, Key(20), 0));
        assert_eq!(clean_spans.get(Phase::StaleRecovery).count, 0);
        assert_eq!(clean_spans.total_access(), clean.access);
    }

    #[test]
    fn versioned_slot_agrees_with_one_shot_run() {
        let tl = two_epoch_timeline();
        let boundary = tl.epoch(1).start;
        let mut slot = VersionedSlot::new(&tl);
        assert!(slot.is_done(), "fresh slot is idle");
        for key in [Key(0), Key(20), Key(40), Key(55)] {
            for t in [0u64, boundary - 7, boundary + 3] {
                slot.start(key, t);
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert_eq!(stepped, run_versioned(&tl, key, t));
            }
        }
    }
}
