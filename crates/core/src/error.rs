//! Error type shared across the `bda` workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, BdaError>;

/// Errors produced while constructing datasets, channels, or broadcast
/// systems.
///
/// Runtime *protocol* execution does not return errors: a protocol machine
/// that misbehaves (e.g. dozes into the past) indicates a bug in a channel
/// builder and is reported by the walker as an aborted
/// [`crate::AccessOutcome`] so that property tests can detect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdaError {
    /// A dataset must contain at least one record.
    EmptyDataset,
    /// Dataset records must be strictly sorted by key.
    UnsortedDataset {
        /// Index of the first record that is out of order.
        index: usize,
    },
    /// Dataset keys must be unique.
    DuplicateKey {
        /// The offending key value.
        key: u64,
    },
    /// A channel must contain at least one bucket.
    EmptyChannel,
    /// Every bucket must broadcast at least one byte.
    ZeroSizeBucket {
        /// Index of the offending bucket.
        index: usize,
    },
    /// Broadcast parameters failed validation.
    BadParams(String),
    /// A scheme-specific build constraint was violated.
    BuildError(String),
}

impl fmt::Display for BdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdaError::EmptyDataset => write!(f, "dataset contains no records"),
            BdaError::UnsortedDataset { index } => {
                write!(
                    f,
                    "dataset records are not sorted by key (at index {index})"
                )
            }
            BdaError::DuplicateKey { key } => {
                write!(f, "dataset contains duplicate key {key}")
            }
            BdaError::EmptyChannel => write!(f, "broadcast channel contains no buckets"),
            BdaError::ZeroSizeBucket { index } => {
                write!(f, "bucket {index} has zero size")
            }
            BdaError::BadParams(msg) => write!(f, "invalid broadcast parameters: {msg}"),
            BdaError::BuildError(msg) => write!(f, "failed to build broadcast channel: {msg}"),
        }
    }
}

impl std::error::Error for BdaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(BdaError, &str)> = vec![
            (BdaError::EmptyDataset, "no records"),
            (BdaError::UnsortedDataset { index: 3 }, "index 3"),
            (BdaError::DuplicateKey { key: 42 }, "42"),
            (BdaError::EmptyChannel, "no buckets"),
            (BdaError::ZeroSizeBucket { index: 7 }, "bucket 7"),
            (BdaError::BadParams("key too big".into()), "key too big"),
            (BdaError::BuildError("fanout".into()), "fanout"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BdaError>();
    }
}
