//! Error type shared across the `bda` workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, BdaError>;

/// A malformed or inconsistent bucket observed by a client protocol
/// machine at run time.
///
/// These used to be `unwrap()`/`debug_assert!` panics on client-visible
/// paths; a machine now surfaces them as [`crate::Action::Fail`] so the
/// walker can report a truthful aborted outcome (frozen channels, where
/// any fault is a builder bug) instead of killing a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolFault {
    /// A hashing-scheme bucket in the first `Na` positions carried no
    /// shift value.
    MissingShift,
    /// A hashing client's doze landed on a bucket whose physical slot is
    /// not the one the pointer promised.
    OffPosition,
    /// An index bucket covered the key but held no child entry for it.
    DanglingPointer,
    /// An index pointer resolved to a data bucket.
    IndexToData,
    /// A data pointer resolved to the wrong data bucket.
    WrongDataBucket,
}

impl fmt::Display for ProtocolFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolFault::MissingShift => {
                write!(f, "allocated hash bucket carries no shift value")
            }
            ProtocolFault::OffPosition => {
                write!(f, "hash probe landed on the wrong physical slot")
            }
            ProtocolFault::DanglingPointer => {
                write!(f, "index bucket covers the key but has no child entry")
            }
            ProtocolFault::IndexToData => {
                write!(f, "index pointer resolved to a data bucket")
            }
            ProtocolFault::WrongDataBucket => {
                write!(f, "data pointer resolved to the wrong bucket")
            }
        }
    }
}

/// Errors produced while constructing datasets, channels, or broadcast
/// systems.
///
/// Runtime *protocol* execution does not return `BdaError`s: a protocol
/// machine that misbehaves (e.g. dozes into the past) indicates a bug in a
/// channel builder and is reported by the walker as an aborted
/// [`crate::AccessOutcome`] so that property tests can detect it, and a
/// machine that *reads* a malformed bucket fails its walk with the typed
/// [`ProtocolFault`] it observed (`Action::Fail`) rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdaError {
    /// A dataset must contain at least one record.
    EmptyDataset,
    /// Dataset records must be strictly sorted by key.
    UnsortedDataset {
        /// Index of the first record that is out of order.
        index: usize,
    },
    /// Dataset keys must be unique.
    DuplicateKey {
        /// The offending key value.
        key: u64,
    },
    /// A channel must contain at least one bucket.
    EmptyChannel,
    /// Every bucket must broadcast at least one byte.
    ZeroSizeBucket {
        /// Index of the offending bucket.
        index: usize,
    },
    /// Broadcast parameters failed validation.
    BadParams(String),
    /// A scheme-specific build constraint was violated.
    BuildError(String),
}

impl fmt::Display for BdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdaError::EmptyDataset => write!(f, "dataset contains no records"),
            BdaError::UnsortedDataset { index } => {
                write!(
                    f,
                    "dataset records are not sorted by key (at index {index})"
                )
            }
            BdaError::DuplicateKey { key } => {
                write!(f, "dataset contains duplicate key {key}")
            }
            BdaError::EmptyChannel => write!(f, "broadcast channel contains no buckets"),
            BdaError::ZeroSizeBucket { index } => {
                write!(f, "bucket {index} has zero size")
            }
            BdaError::BadParams(msg) => write!(f, "invalid broadcast parameters: {msg}"),
            BdaError::BuildError(msg) => write!(f, "failed to build broadcast channel: {msg}"),
        }
    }
}

impl std::error::Error for BdaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(BdaError, &str)> = vec![
            (BdaError::EmptyDataset, "no records"),
            (BdaError::UnsortedDataset { index: 3 }, "index 3"),
            (BdaError::DuplicateKey { key: 42 }, "42"),
            (BdaError::EmptyChannel, "no buckets"),
            (BdaError::ZeroSizeBucket { index: 7 }, "bucket 7"),
            (BdaError::BadParams("key too big".into()), "key too big"),
            (BdaError::BuildError("fanout".into()), "fanout"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BdaError>();
    }
}
