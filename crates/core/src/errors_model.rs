//! Error-prone channel model (extension).
//!
//! Real wireless broadcast is lossy; Lo & Chen (IEEE TKDE 2000, the paper's
//! reference \[9\]) study access methods "under an error-prone mobile
//! environment". This module adds the substrate for that line of work: a
//! deterministic per-bucket corruption model the walker can apply, with
//! per-scheme recovery via [`crate::ProtocolMachine::on_corrupt`].
//!
//! Corruption is a pure function of the bucket occurrence's absolute start
//! time and the model seed, so (a) runs are reproducible, (b) every client
//! listening to the same transmission sees the same corruption, and (c) the
//! *next* broadcast of the same bucket is drawn independently — exactly the
//! behaviour of per-transmission channel noise.

use crate::Ticks;

/// Independent per-bucket corruption with a fixed loss probability.
///
/// ```
/// use bda_core::ErrorModel;
///
/// let m = ErrorModel::new(0.2, 42);
/// // Deterministic per transmission: the same broadcast instant always
/// // corrupts (or not) the same way.
/// assert_eq!(m.corrupted(1_000), m.corrupted(1_000));
/// assert!(!ErrorModel::NONE.corrupted(1_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability that any single bucket transmission is unusable.
    pub loss_prob: f64,
    /// Seed decorrelating different experiments.
    pub seed: u64,
}

impl ErrorModel {
    /// A lossless model (never corrupts).
    pub const NONE: ErrorModel = ErrorModel {
        loss_prob: 0.0,
        seed: 0,
    };

    /// A model losing each bucket independently with probability
    /// `loss_prob` (clamped to `\[0, 1\]`).
    pub fn new(loss_prob: f64, seed: u64) -> Self {
        ErrorModel {
            loss_prob: loss_prob.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Whether the bucket transmission starting at absolute time `start` is
    /// corrupted.
    pub fn corrupted(&self, start: Ticks) -> bool {
        if self.loss_prob <= 0.0 {
            return false;
        }
        if self.loss_prob >= 1.0 {
            return true;
        }
        // SplitMix64 finalizer over (start, seed): high-quality, stateless.
        let mut z = start
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(self.seed ^ 0xE7F7_15D1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // Compare the top 53 bits against the probability.
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.loss_prob
    }
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel::NONE
    }
}

/// Client-side robustness policy for error-prone channels: how long a
/// client keeps recovering from corrupted bucket reads before giving up.
///
/// The walker consults the policy **only at corrupt reads** — on a
/// lossless channel (or any run that happens to see no corruption) every
/// policy is a no-op, so [`RetryPolicy::default`] over [`ErrorModel::NONE`]
/// is bit-identical to the policy-free walker. When the policy gives up
/// the query ends truthfully with [`crate::AccessOutcome::abandoned`] set:
/// the client reports "I stopped trying", never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Corrupted reads tolerated before abandoning; `None` retries
    /// forever (the default — queries on a loss < 1 channel eventually
    /// succeed).
    pub max_retries: Option<u32>,
    /// Whole broadcast cycles to doze after each corrupted read before
    /// resuming (back-off). `0` (default) resumes immediately; `1` waits
    /// for the same channel position in the next cycle, trading access
    /// time for tuning time under bursty interference.
    pub backoff_cycles: u32,
    /// Abandon at the first corrupted read once this much access time
    /// (bytes since tune-in) has elapsed. `None` (default) never
    /// deadline-abandons.
    pub give_up_after: Option<Ticks>,
}

impl RetryPolicy {
    /// Retry forever, immediately — the implicit policy of every walker
    /// before fault injection grew a policy knob.
    pub const UNBOUNDED: RetryPolicy = RetryPolicy {
        max_retries: None,
        backoff_cycles: 0,
        give_up_after: None,
    };

    /// Tolerate at most `n` corrupted reads, then abandon.
    pub fn bounded(n: u32) -> Self {
        RetryPolicy {
            max_retries: Some(n),
            ..RetryPolicy::UNBOUNDED
        }
    }

    /// Add a next-cycle back-off of `cycles` whole cycles per retry.
    pub fn with_backoff(mut self, cycles: u32) -> Self {
        self.backoff_cycles = cycles;
        self
    }

    /// Add a give-up deadline of `ticks` bytes of access time.
    pub fn with_deadline(mut self, ticks: Ticks) -> Self {
        self.give_up_after = Some(ticks);
        self
    }

    /// Whether a client that has now seen `retries` corrupted reads and
    /// spent `elapsed` bytes of access time should abandon the query.
    pub fn gives_up(&self, retries: u32, elapsed: Ticks) -> bool {
        self.max_retries.is_some_and(|m| retries > m)
            || self.give_up_after.is_some_and(|d| elapsed >= d)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::UNBOUNDED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes() {
        let none = ErrorModel::NONE;
        let all = ErrorModel::new(1.0, 1);
        for t in 0..100u64 {
            assert!(!none.corrupted(t * 17));
            assert!(all.corrupted(t * 17));
        }
    }

    #[test]
    fn deterministic_per_transmission() {
        let m = ErrorModel::new(0.3, 42);
        for t in 0..200u64 {
            assert_eq!(m.corrupted(t * 531), m.corrupted(t * 531));
        }
    }

    #[test]
    fn rate_is_respected() {
        let m = ErrorModel::new(0.25, 7);
        let lost = (0..100_000u64).filter(|&i| m.corrupted(i * 533)).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = ErrorModel::new(0.5, 1);
        let b = ErrorModel::new(0.5, 2);
        let agree = (0..10_000u64)
            .filter(|&i| a.corrupted(i * 533) == b.corrupted(i * 533))
            .count();
        // Independent draws agree ~50 % of the time at p = 0.5.
        assert!((4_500..5_500).contains(&agree), "agree={agree}");
    }

    #[test]
    fn clamping() {
        assert_eq!(ErrorModel::new(-3.0, 0).loss_prob, 0.0);
        assert_eq!(ErrorModel::new(7.0, 0).loss_prob, 1.0);
    }

    #[test]
    fn unbounded_policy_never_gives_up() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::UNBOUNDED);
        assert!(!p.gives_up(u32::MAX, Ticks::MAX));
    }

    #[test]
    fn bounded_policy_gives_up_past_the_budget() {
        let p = RetryPolicy::bounded(2);
        assert!(!p.gives_up(1, 0));
        assert!(!p.gives_up(2, 0));
        assert!(p.gives_up(3, 0));
        // bounded(0) abandons at the very first corrupt read.
        assert!(RetryPolicy::bounded(0).gives_up(1, 0));
    }

    #[test]
    fn deadline_policy_gives_up_on_elapsed_time() {
        let p = RetryPolicy::default().with_deadline(1_000);
        assert!(!p.gives_up(50, 999));
        assert!(p.gives_up(1, 1_000));
    }

    #[test]
    fn backoff_builder_sets_cycles() {
        assert_eq!(RetryPolicy::bounded(4).with_backoff(2).backoff_cycles, 2);
    }
}
