//! Error-prone channel model (extension).
//!
//! Real wireless broadcast is lossy; Lo & Chen (IEEE TKDE 2000, the paper's
//! reference \[9\]) study access methods "under an error-prone mobile
//! environment". This module adds the substrate for that line of work: a
//! deterministic per-bucket corruption model the walker can apply, with
//! per-scheme recovery via [`crate::ProtocolMachine::on_corrupt`].
//!
//! Corruption is a pure function of the bucket occurrence's absolute start
//! time and the model seed, so (a) runs are reproducible, (b) every client
//! listening to the same transmission sees the same corruption, and (c) the
//! *next* broadcast of the same bucket is drawn independently — exactly the
//! behaviour of per-transmission channel noise.
//!
//! Three failure processes compose behind [`ChannelModel`]:
//!
//! * [`ErrorModel`] — independent per-transmission loss (the original
//!   extension);
//! * [`BurstModel`] — a Gilbert–Elliott two-state Markov channel whose
//!   Good/Bad fading state correlates losses in time, computed by an exact
//!   coupling-from-the-past skip-ahead so the state at any instant is still
//!   a pure function of `(instant, seed)`;
//! * [`OutageSchedule`] — whole [start, start+len) spans where the carrier
//!   is gone entirely (handoffs, tunnels) and *every* bucket is unusable.
//!
//! Degenerate configurations are bit-identical to the simpler models they
//! collapse to: a burst channel with `loss_good == loss_bad` draws exactly
//! like the i.i.d. [`ErrorModel`] with that probability and seed, and a
//! [`ChannelModel`] with no outages and an i.i.d. loss component is the
//! plain [`ErrorModel`] path, byte for byte.

use crate::Ticks;

/// The tag [`ErrorModel::corrupted`] mixes into its seed (kept stable so
/// all pre-burst corpora and tests reproduce exactly).
const LOSS_TAG: u64 = 0xE7F7_15D1;
/// Seed tag decorrelating the burst chain's per-tick transition draws from
/// the loss draws (which consume the untagged stream).
const CHAIN_TAG: u64 = 0x6E57_A7E5_0B5C_0DE5;
/// Seed tag for the chain's stationary initial-state draw at tick 0.
const INIT_TAG: u64 = 0x1217_BAD0_600D_BAD0;
/// Seed tag for outage-window jitter draws.
const OUTAGE_TAG: u64 = 0x0F7A_6E55_D07A_6E55;
/// Seed tag for retry back-off jitter draws.
const JITTER_TAG: u64 = 0xBAC0_FF00_BAC0_FF00;

/// SplitMix64 finalizer over `(x, seed ^ tag)`: the one stateless hash
/// every deterministic draw in this module is built from.
#[inline]
fn mix(x: u64, seed: u64, tag: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed ^ tag);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of [`mix`].
#[inline]
fn uniform(x: u64, seed: u64, tag: u64) -> f64 {
    (mix(x, seed, tag) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Independent per-bucket corruption with a fixed loss probability.
///
/// ```
/// use bda_core::ErrorModel;
///
/// let m = ErrorModel::new(0.2, 42);
/// // Deterministic per transmission: the same broadcast instant always
/// // corrupts (or not) the same way.
/// assert_eq!(m.corrupted(1_000), m.corrupted(1_000));
/// assert!(!ErrorModel::NONE.corrupted(1_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Probability that any single bucket transmission is unusable.
    pub loss_prob: f64,
    /// Seed decorrelating different experiments.
    pub seed: u64,
}

impl ErrorModel {
    /// A lossless model (never corrupts).
    pub const NONE: ErrorModel = ErrorModel {
        loss_prob: 0.0,
        seed: 0,
    };

    /// A model losing each bucket independently with probability
    /// `loss_prob` (clamped to `\[0, 1\]`).
    pub fn new(loss_prob: f64, seed: u64) -> Self {
        ErrorModel {
            loss_prob: loss_prob.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Whether the bucket transmission starting at absolute time `start` is
    /// corrupted.
    pub fn corrupted(&self, start: Ticks) -> bool {
        if self.loss_prob <= 0.0 {
            return false;
        }
        if self.loss_prob >= 1.0 {
            return true;
        }
        // Compare the top 53 bits against the probability.
        uniform(start, self.seed, LOSS_TAG) < self.loss_prob
    }
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel::NONE
    }
}

/// Fading state of the Gilbert–Elliott chain at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainState {
    /// Clear channel: losses drawn at `loss_good`.
    Good,
    /// Deep fade: losses drawn at `loss_bad`.
    Bad,
}

impl ChainState {
    fn flipped(self, flip: bool) -> ChainState {
        match (self, flip) {
            (s, false) => s,
            (ChainState::Good, true) => ChainState::Bad,
            (ChainState::Bad, true) => ChainState::Good,
        }
    }
}

/// How one per-tick transition draw acts on the chain state under the
/// monotone coupling `f(Good) = Bad ⇔ u < p`, `f(Bad) = Good ⇔ u ≥ 1 − q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepMap {
    /// Both states map to Bad (`u < min(p, 1−q)`).
    ConstBad,
    /// Both states map to Good (`u ≥ max(p, 1−q)`).
    ConstGood,
    /// State unchanged (`p ≤ u < 1−q`, only when `p + q ≤ 1`).
    Identity,
    /// States exchange (`1−q ≤ u < p`, only when `p + q > 1`).
    Swap,
}

/// Gilbert–Elliott two-state Markov burst channel.
///
/// The chain steps once per tick (byte): from `Good` it enters `Bad` with
/// probability `p_good_to_bad`, from `Bad` it returns with probability
/// `p_bad_to_good`. A bucket transmission starting at instant `t` is then
/// lost with the state-dependent probability (`loss_good` / `loss_bad`),
/// drawn with **the same hash the i.i.d. [`ErrorModel`] uses** — so a
/// degenerate burst channel with `loss_good == loss_bad == p` corrupts
/// *bit-identically* to `ErrorModel::new(p, seed)`.
///
/// [`BurstModel::state_at`] computes the state at an arbitrary instant by
/// an exact coupling-from-the-past skip-ahead instead of walking the chain
/// forward from tick 0: it scans *backward* through the per-tick coupled
/// transition maps and stops at the most recent coalescing (constant) map,
/// which determines the state regardless of anything earlier. Expected
/// work is `O(1 / (p + q))` hashes per query — independent of `t` — and
/// the result equals the naive forward walk *exactly* (a property test
/// pins `state_at ≡ state_at_naive`). Corruption therefore stays a pure
/// function of `(bucket instant, seed)`: the decision-9 purity that shard
/// bit-identity and fast-forward `next_corrupt` hopping both require.
///
/// Nonzero transition rates are clamped to `≥ 1e-3` so the backward scan's
/// expected length stays bounded (≤ ~1000 steps even for near-static
/// chains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Per-tick probability of entering the Bad (fade) state.
    pub p_good_to_bad: f64,
    /// Per-tick probability of leaving the Bad state.
    pub p_bad_to_good: f64,
    /// Per-transmission loss probability while Good.
    pub loss_good: f64,
    /// Per-transmission loss probability while Bad.
    pub loss_bad: f64,
    /// Seed decorrelating experiments (shared by the chain and loss draws,
    /// under different tags).
    pub seed: u64,
}

/// Minimum nonzero transition rate: bounds the expected backward-scan
/// length of [`BurstModel::state_at`] at ~1000 hashes.
const MIN_RATE: f64 = 1e-3;

impl BurstModel {
    /// A burst channel. Probabilities are clamped to `[0, 1]`; nonzero
    /// transition rates are additionally floored at `1e-3` (see type docs).
    pub fn new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
        seed: u64,
    ) -> Self {
        let clamp_rate = |r: f64| {
            let r = r.clamp(0.0, 1.0);
            if r > 0.0 {
                r.max(MIN_RATE)
            } else {
                r
            }
        };
        BurstModel {
            p_good_to_bad: clamp_rate(p_good_to_bad),
            p_bad_to_good: clamp_rate(p_bad_to_good),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The classic fade profile: near-perfect reception in Good state,
    /// heavy loss in Bad state.
    pub fn fading(p_good_to_bad: f64, p_bad_to_good: f64, seed: u64) -> Self {
        BurstModel::new(p_good_to_bad, p_bad_to_good, 0.01, 0.9, seed)
    }

    /// The coupled transition map for the draw at tick `i`.
    fn step_map(&self, i: Ticks) -> StepMap {
        let (p, q) = (self.p_good_to_bad, self.p_bad_to_good);
        let u = uniform(i, self.seed, CHAIN_TAG);
        if u < p.min(1.0 - q) {
            StepMap::ConstBad
        } else if u >= p.max(1.0 - q) {
            StepMap::ConstGood
        } else if p + q <= 1.0 {
            StepMap::Identity
        } else {
            StepMap::Swap
        }
    }

    /// Stationary probability of the Bad state, `p / (p + q)`.
    pub fn stationary_bad(&self) -> f64 {
        let (p, q) = (self.p_good_to_bad, self.p_bad_to_good);
        if p + q > 0.0 {
            p / (p + q)
        } else {
            0.0
        }
    }

    /// The chain's long-run mean loss rate,
    /// `(q·loss_good + p·loss_bad) / (p + q)` — what an i.i.d.
    /// [`ErrorModel`] must be configured with to match this channel's mean
    /// severity (the equal-mean-loss comparisons in EXPERIMENTS.md).
    pub fn stationary_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }

    /// The chain state at tick 0: a stationary draw, so the process is
    /// time-homogeneous from the very first tick.
    fn initial_state(&self) -> ChainState {
        if uniform(0, self.seed, INIT_TAG) < self.stationary_bad() {
            ChainState::Bad
        } else {
            ChainState::Good
        }
    }

    /// The fading state at instant `t`, by exact O(1/(p+q))-expected
    /// skip-ahead (see type docs). Equals [`BurstModel::state_at_naive`]
    /// for every `t`.
    pub fn state_at(&self, t: Ticks) -> ChainState {
        let (p, q) = (self.p_good_to_bad, self.p_bad_to_good);
        if p <= 0.0 && q <= 0.0 {
            // A frozen chain never leaves its initial state.
            return self.initial_state();
        }
        // Walk backward from the most recent transition, composing the
        // coupled maps. `flip` tracks whether the bijective suffix composed
        // so far is the identity or the swap; the first constant map met
        // pins the state.
        let mut flip = false;
        let mut i = t;
        while i > 0 {
            i -= 1;
            match self.step_map(i) {
                StepMap::ConstBad => return ChainState::Bad.flipped(flip),
                StepMap::ConstGood => return ChainState::Good.flipped(flip),
                StepMap::Identity => {}
                StepMap::Swap => flip = !flip,
            }
        }
        self.initial_state().flipped(flip)
    }

    /// The specification `state_at` is checked against: walk the chain
    /// forward one tick at a time from the stationary tick-0 draw. O(t) —
    /// for tests only.
    pub fn state_at_naive(&self, t: Ticks) -> ChainState {
        let mut s = self.initial_state();
        for i in 0..t {
            s = match self.step_map(i) {
                StepMap::ConstBad => ChainState::Bad,
                StepMap::ConstGood => ChainState::Good,
                StepMap::Identity => s,
                StepMap::Swap => s.flipped(true),
            };
        }
        s
    }

    /// Whether the bucket transmission starting at `start` is corrupted:
    /// the state-dependent loss probability, drawn with the i.i.d. model's
    /// exact hash so degenerate configs collapse bit-identically.
    pub fn corrupted(&self, start: Ticks) -> bool {
        let loss = match self.state_at(start) {
            ChainState::Good => self.loss_good,
            ChainState::Bad => self.loss_bad,
        };
        ErrorModel {
            loss_prob: loss,
            seed: self.seed,
        }
        .corrupted(start)
    }
}

/// Scheduled carrier outages: seeded, non-overlapping `[start, start+len)`
/// tick spans where every bucket transmission is unusable.
///
/// Construction is a jittered renewal grid: each frame `[k·every,
/// (k+1)·every)` contains exactly one outage of `len` ticks, placed at a
/// seeded uniform offset within the frame. Spans therefore never overlap
/// (each lives inside its own frame), the long-run outage fraction is
/// `len / every`, and membership is an O(1) pure function of `(t, seed)` —
/// the same purity contract as the loss models, so shard merge and
/// fast-forward hopping stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSchedule {
    /// Renewal period (frame length) in ticks; `0` disables outages.
    pub every: Ticks,
    /// Outage length in ticks (≤ `every`); `0` disables outages.
    pub len: Ticks,
    /// Seed for the per-frame placement jitter.
    pub seed: u64,
}

impl OutageSchedule {
    /// No outages, ever.
    pub const NONE: OutageSchedule = OutageSchedule {
        every: 0,
        len: 0,
        seed: 0,
    };

    /// One `len`-tick outage per `every`-tick frame at a seeded offset.
    /// `len` is clamped to `every`; a zero `every` or `len` disables
    /// outages entirely.
    pub fn new(every: Ticks, len: Ticks, seed: u64) -> Self {
        if every == 0 || len == 0 {
            return OutageSchedule {
                every: 0,
                len: 0,
                seed,
            };
        }
        OutageSchedule {
            every,
            len: len.min(every),
            seed,
        }
    }

    /// Whether this schedule contains any outage at all.
    pub fn is_none(&self) -> bool {
        self.every == 0 || self.len == 0
    }

    /// The outage span of frame `k` as `(start, end)` absolute ticks.
    pub fn span(&self, k: Ticks) -> Option<(Ticks, Ticks)> {
        if self.is_none() {
            return None;
        }
        let slack = self.every - self.len;
        let jitter = if slack == 0 {
            0
        } else {
            mix(k, self.seed, OUTAGE_TAG) % (slack + 1)
        };
        let start = k.saturating_mul(self.every).saturating_add(jitter);
        Some((start, start.saturating_add(self.len)))
    }

    /// Whether instant `t` falls inside an outage.
    pub fn in_outage(&self, t: Ticks) -> bool {
        if self.is_none() {
            return false;
        }
        match self.span(t / self.every) {
            Some((start, end)) => t >= start && t < end,
            None => false,
        }
    }

    /// Long-run fraction of time spent in outage, `len / every`.
    pub fn fraction(&self) -> f64 {
        if self.is_none() {
            0.0
        } else {
            self.len as f64 / self.every as f64
        }
    }
}

impl Default for OutageSchedule {
    fn default() -> Self {
        OutageSchedule::NONE
    }
}

/// Which loss process corrupts individual transmissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent per-transmission loss (the original extension).
    Iid(ErrorModel),
    /// Correlated Gilbert–Elliott burst loss.
    Burst(BurstModel),
}

impl LossModel {
    /// Whether the transmission starting at `start` is corrupted.
    pub fn corrupted(&self, start: Ticks) -> bool {
        match self {
            LossModel::Iid(m) => m.corrupted(start),
            LossModel::Burst(m) => m.corrupted(start),
        }
    }

    /// The largest per-transmission loss probability this model can reach
    /// (used to scale walker probe budgets conservatively).
    pub fn worst_loss(&self) -> f64 {
        match self {
            LossModel::Iid(m) => m.loss_prob,
            LossModel::Burst(m) => m.loss_good.max(m.loss_bad),
        }
    }

    /// The long-run mean loss rate.
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::Iid(m) => m.loss_prob,
            LossModel::Burst(m) => m.stationary_loss(),
        }
    }
}

/// The unified channel fault model every execution driver threads: a loss
/// process (i.i.d. or burst) composed with scheduled carrier outages.
///
/// A transmission is unusable when it starts inside an outage *or* the
/// loss process drops it. Degenerate configurations are free:
/// `ChannelModel::from(errors)` (i.i.d. loss, no outages) corrupts — and
/// therefore walks, schedules and accounts — bit-identically to the plain
/// [`ErrorModel`] path it replaces.
///
/// ```
/// use bda_core::{BurstModel, ChannelModel, ErrorModel, OutageSchedule};
///
/// // Degenerate: uniform-loss burst ≡ i.i.d. at the same seed.
/// let iid = ErrorModel::new(0.2, 7);
/// let flat_burst = ChannelModel::burst(BurstModel::new(0.05, 0.2, 0.2, 0.2, 7));
/// for t in (0..2_000u64).map(|i| i * 97) {
///     assert_eq!(flat_burst.corrupted(t), iid.corrupted(t));
/// }
/// // Outages corrupt every transmission inside their span.
/// let ch = ChannelModel::from(ErrorModel::NONE)
///     .with_outages(OutageSchedule::new(10_000, 500, 3));
/// assert!((0..10_000u64).any(|t| ch.corrupted(t)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Per-transmission loss process.
    pub loss: LossModel,
    /// Scheduled carrier outages.
    pub outages: OutageSchedule,
}

impl ChannelModel {
    /// A perfect channel: no loss, no outages.
    pub const NONE: ChannelModel = ChannelModel {
        loss: LossModel::Iid(ErrorModel::NONE),
        outages: OutageSchedule::NONE,
    };

    /// An i.i.d.-loss channel with no outages (the pre-burst model).
    pub fn iid(errors: ErrorModel) -> Self {
        ChannelModel {
            loss: LossModel::Iid(errors),
            outages: OutageSchedule::NONE,
        }
    }

    /// A burst-loss channel with no outages.
    pub fn burst(model: BurstModel) -> Self {
        ChannelModel {
            loss: LossModel::Burst(model),
            outages: OutageSchedule::NONE,
        }
    }

    /// Attach an outage schedule.
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = outages;
        self
    }

    /// Whether the bucket transmission starting at `start` is unusable
    /// (outage or loss).
    pub fn corrupted(&self, start: Ticks) -> bool {
        self.outages.in_outage(start) || self.loss.corrupted(start)
    }

    /// Whether `start` falls inside a scheduled outage — the condition a
    /// resynchronizing client can *sense* (carrier gone) as opposed to a
    /// CRC failure on an otherwise live channel.
    pub fn in_outage(&self, start: Ticks) -> bool {
        self.outages.in_outage(start)
    }

    /// Whether this channel can corrupt anything at all.
    pub fn is_lossless(&self) -> bool {
        self.worst_loss() <= 0.0 && self.outages.is_none()
    }

    /// Whether this channel schedules outages.
    pub fn has_outages(&self) -> bool {
        !self.outages.is_none()
    }

    /// The largest per-transmission loss probability of the loss process
    /// (outages excluded) — the walker's budget-scaling input.
    pub fn worst_loss(&self) -> f64 {
        self.loss.worst_loss()
    }

    /// Long-run mean unusable-transmission rate (loss and outage combined,
    /// assuming independence).
    pub fn mean_loss(&self) -> f64 {
        let f = self.outages.fraction();
        f + (1.0 - f) * self.loss.mean_loss()
    }

    /// The plain [`ErrorModel`] this channel degenerates to, when it is
    /// exactly the pre-burst configuration (i.i.d. loss, no outages).
    pub fn as_iid(&self) -> Option<ErrorModel> {
        match (self.loss, self.outages.is_none()) {
            (LossModel::Iid(m), true) => Some(m),
            _ => None,
        }
    }
}

impl From<ErrorModel> for ChannelModel {
    fn from(errors: ErrorModel) -> Self {
        ChannelModel::iid(errors)
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel::NONE
    }
}

/// Client-side robustness policy for error-prone channels: how long a
/// client keeps recovering from corrupted bucket reads before giving up,
/// and how far it backs off between attempts.
///
/// The walker consults the policy **only at corrupt reads** — on a
/// lossless channel (or any run that happens to see no corruption) every
/// policy is a no-op, so [`RetryPolicy::default`] over [`ErrorModel::NONE`]
/// is bit-identical to the policy-free walker. When the policy gives up
/// the query ends truthfully with [`crate::AccessOutcome::abandoned`] set:
/// the client reports "I stopped trying", never a wrong answer.
///
/// Back-off comes in two flavours. The legacy fixed back-off
/// (`backoff_cycles`, `backoff_cap_cycles == 0`) dozes the same number of
/// whole cycles after every corrupted read. Setting `backoff_cap_cycles`
/// switches to exponential back-off: the doze doubles per consecutive
/// recovery, capped there. A `jitter_seed` decorrelates co-tuned clients
/// by replacing each doze with a seeded uniform draw in `[1, doze]` whole
/// cycles — deterministic per `(seed, attempt)`, so runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Corrupted reads tolerated before abandoning; `None` retries
    /// forever (the default — queries on a loss < 1 channel eventually
    /// succeed).
    pub max_retries: Option<u32>,
    /// Whole broadcast cycles to doze after each corrupted read before
    /// resuming (back-off). `0` (default) resumes immediately; `1` waits
    /// for the same channel position in the next cycle, trading access
    /// time for tuning time under bursty interference.
    pub backoff_cycles: u32,
    /// Exponential back-off cap in whole cycles. `0` (default) keeps the
    /// legacy fixed back-off; any positive value makes the per-recovery
    /// doze double from `max(backoff_cycles, 1)` up to this cap.
    pub backoff_cap_cycles: u32,
    /// Deterministic back-off jitter seed. `None` (default) dozes the full
    /// back-off; `Some(seed)` dozes a seeded uniform number of cycles in
    /// `[1, backoff]` instead (full jitter), deterministic per
    /// `(seed, attempt)`.
    pub jitter_seed: Option<u64>,
    /// Abandon at the first corrupted read once this much access time
    /// (bytes since tune-in) has elapsed. `None` (default) never
    /// deadline-abandons.
    pub give_up_after: Option<Ticks>,
}

/// Default exponential-back-off cap (whole cycles) applied to outage
/// resynchronization when the policy does not set its own cap.
const OUTAGE_CAP_CYCLES: u32 = 16;

impl RetryPolicy {
    /// Retry forever, immediately — the implicit policy of every walker
    /// before fault injection grew a policy knob.
    pub const UNBOUNDED: RetryPolicy = RetryPolicy {
        max_retries: None,
        backoff_cycles: 0,
        backoff_cap_cycles: 0,
        jitter_seed: None,
        give_up_after: None,
    };

    /// Tolerate at most `n` corrupted reads, then abandon.
    pub fn bounded(n: u32) -> Self {
        RetryPolicy {
            max_retries: Some(n),
            ..RetryPolicy::UNBOUNDED
        }
    }

    /// Add a next-cycle back-off of `cycles` whole cycles per retry.
    pub fn with_backoff(mut self, cycles: u32) -> Self {
        self.backoff_cycles = cycles;
        self
    }

    /// Switch to exponential back-off: the per-recovery doze doubles from
    /// `max(backoff_cycles, 1)` up to `cap` whole cycles.
    pub fn with_backoff_cap(mut self, cap: u32) -> Self {
        self.backoff_cap_cycles = cap;
        self
    }

    /// Add deterministic full jitter to every back-off doze.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Add a give-up deadline of `ticks` bytes of access time.
    pub fn with_deadline(mut self, ticks: Ticks) -> Self {
        self.give_up_after = Some(ticks);
        self
    }

    /// Whether a client that has now seen `retries` corrupted reads and
    /// spent `elapsed` bytes of access time should abandon the query.
    pub fn gives_up(&self, retries: u32, elapsed: Ticks) -> bool {
        self.max_retries.is_some_and(|m| retries > m)
            || self.give_up_after.is_some_and(|d| elapsed >= d)
    }

    /// Un-jittered back-off for the `attempt`-th recovery (1-based):
    /// fixed under the legacy policy, doubling-capped when
    /// `backoff_cap_cycles` is set.
    fn backoff_base(&self, attempt: u32) -> u32 {
        if self.backoff_cap_cycles == 0 {
            return self.backoff_cycles;
        }
        let start = self.backoff_cycles.max(1);
        start
            .checked_shl(attempt.saturating_sub(1).min(31))
            .unwrap_or(u32::MAX)
            .min(self.backoff_cap_cycles)
    }

    /// Whole cycles to doze before the next attempt, after the
    /// `attempt`-th consecutive recovery (1-based).
    ///
    /// `outage` selects the resynchronization path: a client that *senses*
    /// carrier loss must not burn retries one bucket at a time, so the
    /// doze is at least one cycle and grows exponentially with the
    /// consecutive-outage streak (capped at `backoff_cap_cycles`, or 16
    /// when unset) even under a zero-back-off policy. With `outage =
    /// false` and the legacy knobs (`backoff_cap_cycles == 0`, no jitter)
    /// this is exactly `backoff_cycles` — the pre-burst behaviour.
    ///
    /// Deterministic per `(policy, attempt)`: jitter draws are a pure
    /// function of `(jitter_seed, attempt)`.
    pub fn recovery_cycles(&self, attempt: u32, outage: bool) -> u32 {
        let mut cycles = self.backoff_base(attempt);
        if outage {
            let cap = if self.backoff_cap_cycles > 0 {
                self.backoff_cap_cycles
            } else {
                OUTAGE_CAP_CYCLES
            };
            let exp = 1u32
                .checked_shl(attempt.saturating_sub(1).min(31))
                .unwrap_or(u32::MAX)
                .min(cap);
            cycles = cycles.max(exp).max(1);
        }
        if cycles == 0 {
            return 0;
        }
        match self.jitter_seed {
            None => cycles,
            Some(seed) => {
                1 + (mix(u64::from(attempt), seed, JITTER_TAG) % u64::from(cycles)) as u32
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::UNBOUNDED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes() {
        let none = ErrorModel::NONE;
        let all = ErrorModel::new(1.0, 1);
        for t in 0..100u64 {
            assert!(!none.corrupted(t * 17));
            assert!(all.corrupted(t * 17));
        }
    }

    #[test]
    fn deterministic_per_transmission() {
        let m = ErrorModel::new(0.3, 42);
        for t in 0..200u64 {
            assert_eq!(m.corrupted(t * 531), m.corrupted(t * 531));
        }
    }

    #[test]
    fn rate_is_respected() {
        let m = ErrorModel::new(0.25, 7);
        let lost = (0..100_000u64).filter(|&i| m.corrupted(i * 533)).count();
        let rate = lost as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = ErrorModel::new(0.5, 1);
        let b = ErrorModel::new(0.5, 2);
        let agree = (0..10_000u64)
            .filter(|&i| a.corrupted(i * 533) == b.corrupted(i * 533))
            .count();
        // Independent draws agree ~50 % of the time at p = 0.5.
        assert!((4_500..5_500).contains(&agree), "agree={agree}");
    }

    #[test]
    fn clamping() {
        assert_eq!(ErrorModel::new(-3.0, 0).loss_prob, 0.0);
        assert_eq!(ErrorModel::new(7.0, 0).loss_prob, 1.0);
    }

    #[test]
    fn unbounded_policy_never_gives_up() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::UNBOUNDED);
        assert!(!p.gives_up(u32::MAX, Ticks::MAX));
    }

    #[test]
    fn bounded_policy_gives_up_past_the_budget() {
        let p = RetryPolicy::bounded(2);
        assert!(!p.gives_up(1, 0));
        assert!(!p.gives_up(2, 0));
        assert!(p.gives_up(3, 0));
        // bounded(0) abandons at the very first corrupt read.
        assert!(RetryPolicy::bounded(0).gives_up(1, 0));
    }

    #[test]
    fn deadline_policy_gives_up_on_elapsed_time() {
        let p = RetryPolicy::default().with_deadline(1_000);
        assert!(!p.gives_up(50, 999));
        assert!(p.gives_up(1, 1_000));
    }

    #[test]
    fn backoff_builder_sets_cycles() {
        assert_eq!(RetryPolicy::bounded(4).with_backoff(2).backoff_cycles, 2);
    }

    #[test]
    fn legacy_backoff_is_fixed_per_attempt() {
        let p = RetryPolicy::bounded(9).with_backoff(3);
        for attempt in 1..20 {
            assert_eq!(p.recovery_cycles(attempt, false), 3);
        }
        // Zero back-off stays zero on the loss path.
        assert_eq!(RetryPolicy::UNBOUNDED.recovery_cycles(5, false), 0);
    }

    #[test]
    fn exponential_backoff_doubles_to_the_cap() {
        let p = RetryPolicy::UNBOUNDED.with_backoff(1).with_backoff_cap(8);
        let seq: Vec<u32> = (1..=6).map(|a| p.recovery_cycles(a, false)).collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 8, 8]);
        // Zero-base exponential starts at 1.
        let z = RetryPolicy::UNBOUNDED.with_backoff_cap(4);
        let seq: Vec<u32> = (1..=4).map(|a| z.recovery_cycles(a, false)).collect();
        assert_eq!(seq, vec![1, 2, 4, 4]);
    }

    #[test]
    fn outage_backoff_is_exponential_even_without_a_policy_backoff() {
        let p = RetryPolicy::UNBOUNDED;
        let seq: Vec<u32> = (1..=7).map(|a| p.recovery_cycles(a, true)).collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 16, 16, 16]);
        // A policy cap bounds the outage doze too.
        let capped = RetryPolicy::UNBOUNDED.with_backoff_cap(4);
        assert_eq!(capped.recovery_cycles(6, true), 4);
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let p = RetryPolicy::UNBOUNDED
            .with_backoff(1)
            .with_backoff_cap(16)
            .with_jitter(0x7E57);
        for attempt in 1..=10u32 {
            let a = p.recovery_cycles(attempt, false);
            let b = p.recovery_cycles(attempt, false);
            assert_eq!(a, b, "jitter must be deterministic per (seed, attempt)");
            let base = RetryPolicy::UNBOUNDED
                .with_backoff(1)
                .with_backoff_cap(16)
                .recovery_cycles(attempt, false);
            assert!(
                (1..=base).contains(&a),
                "attempt {attempt}: {a} not in [1, {base}]"
            );
        }
        // Different seeds draw different jitter somewhere in the range.
        let other = p.with_jitter(0x7E58);
        assert!(
            (1..=32u32).any(|a| p.recovery_cycles(a, false) != other.recovery_cycles(a, false)),
            "jitter seeds fully correlated"
        );
        // Jitter never turns a zero back-off into a doze.
        assert_eq!(
            RetryPolicy::UNBOUNDED
                .with_jitter(1)
                .recovery_cycles(3, false),
            0
        );
    }

    #[test]
    fn burst_degenerate_uniform_loss_matches_iid_exactly() {
        let iid = ErrorModel::new(0.3, 99);
        let burst = BurstModel::new(0.05, 0.1, 0.3, 0.3, 99);
        for i in 0..5_000u64 {
            let t = i * 157;
            assert_eq!(burst.corrupted(t), iid.corrupted(t), "t={t}");
        }
    }

    #[test]
    fn skip_ahead_matches_naive_walk() {
        for (p, q) in [(0.01, 0.05), (0.2, 0.3), (0.9, 0.8), (0.0, 0.5), (0.5, 0.0)] {
            let m = BurstModel::new(p, q, 0.0, 1.0, 0xB0B);
            for t in [0u64, 1, 2, 3, 17, 100, 999, 4_096] {
                assert_eq!(m.state_at(t), m.state_at_naive(t), "p={p} q={q} t={t}");
            }
        }
    }

    #[test]
    fn burst_states_persist() {
        // A slow chain (p=q=0.01) must produce long same-state runs: the
        // expected sojourn is 100 ticks, so over 10k ticks sampled every
        // tick there are far fewer state changes than a fast chain's.
        let slow = BurstModel::new(0.01, 0.01, 0.0, 1.0, 5);
        let changes = (1..5_000u64)
            .filter(|&t| slow.state_at(t) != slow.state_at(t - 1))
            .count();
        assert!(changes < 200, "slow chain changed {changes} times");
        assert!(changes > 5, "chain never moved");
    }

    #[test]
    fn stationary_loss_closed_form() {
        let m = BurstModel::new(0.1, 0.3, 0.02, 0.5, 1);
        let expect = (0.3 * 0.02 + 0.1 * 0.5) / (0.1 + 0.3);
        assert!((m.stationary_loss() - expect).abs() < 1e-12);
        // Frozen chain: stationary loss is the Good-state loss.
        let frozen = BurstModel::new(0.0, 0.0, 0.07, 0.9, 1);
        assert!((frozen.stationary_loss() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn rate_floor_clamps_tiny_rates() {
        let m = BurstModel::new(1e-9, 0.0, 0.1, 0.9, 1);
        assert_eq!(m.p_good_to_bad, MIN_RATE);
        assert_eq!(m.p_bad_to_good, 0.0);
    }

    #[test]
    fn outage_spans_live_in_their_frames_and_never_overlap() {
        let o = OutageSchedule::new(1_000, 200, 42);
        let mut prev_end = 0;
        for k in 0..200u64 {
            let (start, end) = o.span(k).unwrap();
            assert!(start >= k * 1_000);
            assert!(end <= (k + 1) * 1_000);
            assert!(start >= prev_end, "span {k} overlaps previous");
            prev_end = end;
            // Membership agrees with the span arithmetic.
            assert!(o.in_outage(start));
            assert!(o.in_outage(end - 1));
            assert!(!o.in_outage(end));
        }
    }

    #[test]
    fn outage_none_and_degenerate_configs_disable() {
        assert!(!OutageSchedule::NONE.in_outage(0));
        assert!(OutageSchedule::new(0, 10, 1).is_none());
        assert!(OutageSchedule::new(10, 0, 1).is_none());
        // len > every clamps to a full-frame outage.
        let full = OutageSchedule::new(10, 50, 1);
        assert_eq!(full.len, 10);
        assert!((0..100u64).all(|t| full.in_outage(t)));
    }

    #[test]
    fn channel_model_composes_outage_and_loss() {
        let ch = ChannelModel::iid(ErrorModel::new(0.1, 3))
            .with_outages(OutageSchedule::new(5_000, 500, 9));
        let (start, end) = ch.outages.span(2).unwrap();
        for t in start..end {
            assert!(ch.corrupted(t), "outage bucket usable at {t}");
            assert!(ch.in_outage(t));
        }
        assert!(ch.has_outages());
        assert!(!ch.is_lossless());
        assert!(ch.as_iid().is_none(), "outages are not degenerate");
        // Degenerate: iid loss, no outages.
        let degen = ChannelModel::iid(ErrorModel::new(0.1, 3));
        assert_eq!(degen.as_iid(), Some(ErrorModel::new(0.1, 3)));
        assert_eq!(ChannelModel::from(ErrorModel::NONE), ChannelModel::NONE);
        assert!(ChannelModel::NONE.is_lossless());
    }

    #[test]
    fn channel_mean_loss_accounts_for_both_processes() {
        let ch = ChannelModel::iid(ErrorModel::new(0.1, 3))
            .with_outages(OutageSchedule::new(1_000, 100, 9));
        // 10 % outage + 90 % · 10 % loss.
        assert!((ch.mean_loss() - (0.1 + 0.9 * 0.1)).abs() < 1e-12);
    }
}
