//! Flat (plain) broadcast — the paper's baseline access method.
//!
//! Information is broadcast "without using any access method. Mobile
//! clients must traverse all buckets to find the requested data" (§4.2).
//! The expected access time and tuning time are therefore both roughly
//! half the broadcast cycle: flat broadcast has the *best* access time
//! (no index overhead inflates the cycle) and the *worst* tuning time
//! (the client never dozes).

use crate::bucket::{Bucket, BucketMeta};
use crate::channel::Channel;
use crate::coverage::Coverage;
use crate::error::Result;
use crate::key::Key;
use crate::machine::{Action, FastForward, ProtocolMachine, StaleResponse, Verdict};
use crate::params::Params;
use crate::record::Dataset;
use crate::scheme::{Scheme, System};
use crate::Ticks;

/// Payload of a flat-broadcast data bucket: one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatPayload {
    /// The record's primary key.
    pub key: Key,
    /// Position of the record in the dataset (diagnostics only — the
    /// protocol uses nothing but `key`).
    pub record_index: u32,
}

/// The flat broadcast scheme (called *plain broadcast* in Figs. 5–6).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatScheme;

/// A built flat-broadcast channel.
#[derive(Debug)]
pub struct FlatSystem {
    channel: Channel<FlatPayload>,
    /// Distinct records behind the cycle. Equal to the bucket count for the
    /// classic one-bucket-per-record layout; smaller for broadcast-disk
    /// repetition layouts (see [`crate::disks`]), where hot records occupy
    /// several buckets per cycle. Coverage-based termination is sized by
    /// records, not buckets.
    num_records: u32,
}

impl FlatSystem {
    /// Assemble a flat system from an explicit bucket layout — the
    /// broadcast-disk constructor's entry point. `num_records` is the
    /// number of *distinct* records in the cycle.
    pub(crate) fn from_parts(channel: Channel<FlatPayload>, num_records: u32) -> Self {
        FlatSystem {
            channel,
            num_records,
        }
    }
}

impl Scheme for FlatScheme {
    type System = FlatSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let size = params.data_bucket_size();
        let buckets = dataset
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Bucket::new(
                    size,
                    FlatPayload {
                        key: r.key,
                        record_index: i as u32,
                    },
                )
            })
            .collect();
        Ok(FlatSystem {
            channel: Channel::new(buckets)?,
            num_records: dataset.len() as u32,
        })
    }
}

impl System for FlatSystem {
    type Payload = FlatPayload;
    type Machine = FlatMachine;

    fn scheme_name(&self) -> &'static str {
        "flat"
    }

    fn channel(&self) -> &Channel<FlatPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<FlatPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> FlatMachine {
        FlatMachine {
            key,
            coverage: Coverage::new(self.num_records),
        }
    }
}

/// Client protocol for flat broadcast: listen to every bucket until the
/// requested key appears; after one full cycle of misses, conclude the
/// record is not broadcast.
#[derive(Debug, Clone)]
pub struct FlatMachine {
    key: Key,
    /// Records ruled out so far; absence is concluded at full coverage.
    /// (Cheap countdown semantics on a lossless channel; sound hole
    /// tracking on an error-prone one.)
    coverage: Coverage,
}

impl ProtocolMachine<FlatPayload> for FlatMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.coverage.clear();
        Action::ReadNext
    }

    /// A corrupted bucket might have been the target: it simply stays
    /// uncovered, and the scan continues until its next broadcast is read
    /// cleanly. This terminates with probability 1 at any loss rate < 1.
    fn on_corrupt(&mut self, _meta: BucketMeta) -> Action {
        Action::ReadNext
    }

    /// A changed program invalidates the coverage map: `record_index` and
    /// the record count are bound to the cycle the machine was built
    /// against. Respawning restarts the scan against the live program —
    /// coverage is then provably accumulated within one program version, so
    /// a not-found verdict is sound for that version's dataset.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }

    fn on_bucket(&mut self, payload: &FlatPayload, _meta: BucketMeta) -> Action {
        if payload.key == self.key {
            // Reading the bucket *is* the download: the bucket carries the
            // record.
            return Action::Finish(Verdict::found());
        }
        self.coverage.mark(payload.record_index);
        if self.coverage.is_full() {
            // Every record ruled out: the key is not being broadcast.
            Action::Finish(Verdict::not_found())
        } else {
            Action::ReadNext
        }
    }

    /// Bulk-consume the run of non-matching buckets ahead: each is a plain
    /// read-and-mark with no decision in it. Stop on the key's bucket, on
    /// the read that would complete coverage, on a corrupted transmission,
    /// or at the probe budget — the landing bucket is read slow-path.
    fn fast_forward(&mut self, ctx: &mut FastForward<'_, FlatPayload>) {
        while ctx.can_read() && !ctx.next_corrupt() {
            let p = *ctx.peek();
            if p.key == self.key || self.coverage.would_fill(p.record_index) {
                return;
            }
            self.coverage.mark(p.record_index);
            ctx.read(crate::BucketKind::Data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::scheme::DynSystem;

    fn system(n: u64) -> FlatSystem {
        let ds = Dataset::new((0..n).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        FlatScheme.build(&ds, &Params::paper()).unwrap()
    }

    #[test]
    fn every_key_is_found_from_every_alignment() {
        let sys = system(16);
        let dt = u64::from(Params::paper().data_bucket_size());
        for k in 0..16u64 {
            for t in [0, dt / 2, dt * 5 + 3, dt * 16 - 1] {
                let out = sys.probe(Key(k * 2), t);
                assert!(out.found, "key {k} from t={t}");
                assert!(!out.aborted);
                assert_eq!(out.tuning, out.access, "flat never dozes");
            }
        }
    }

    #[test]
    fn absent_key_scans_exactly_one_cycle() {
        let sys = system(16);
        let out = sys.probe(Key(1), 0);
        assert!(!out.found);
        assert!(!out.aborted);
        assert_eq!(out.probes, 16);
        assert_eq!(out.access, sys.channel().cycle_len());
    }

    #[test]
    fn average_access_is_about_half_a_cycle() {
        let sys = system(64);
        let cycle = sys.channel().cycle_len();
        let dt = u64::from(Params::paper().data_bucket_size());
        let mut total: u64 = 0;
        let mut count = 0u64;
        for k in 0..64u64 {
            for slot in 0..64u64 {
                let out = sys.probe(Key(k * 2), slot * dt);
                total += out.access;
                count += 1;
            }
        }
        let avg = total / count;
        // Expected ≈ cycle/2 (+ half a bucket of initial wait at aligned
        // tune-ins this grid doesn't produce). Allow 5 % tolerance.
        let expect = cycle / 2;
        let lo = expect - expect / 20;
        let hi = expect + expect / 10;
        assert!(avg >= lo && avg <= hi, "avg={avg} expect≈{expect}");
    }

    #[test]
    fn found_download_counts_in_tuning() {
        let sys = system(4);
        let dt = u64::from(Params::paper().data_bucket_size());
        // Tune in exactly at the bucket holding key 4 (index 2).
        let out = sys.probe(Key(4), 2 * dt);
        assert!(out.found);
        assert_eq!(out.probes, 1);
        assert_eq!(out.access, dt);
    }
}
