//! Primary keys of broadcast records.

use std::fmt;

/// A record's primary key.
///
/// Keys are modelled as 64-bit ordinals: every scheme in the paper only
/// needs keys to be *orderable* (B+-tree search), *hashable* (simple
/// hashing) and *distinct* (one record per key). The number of bytes a key
/// occupies **on the channel** is a layout concern and comes from
/// [`crate::Params::key_size`], not from this type — exactly as in the
/// paper, where 25-byte dictionary keys are compared as opaque ordered
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl Key {
    /// The smallest possible key.
    pub const MIN: Key = Key(0);
    /// The largest possible key.
    pub const MAX: Key = Key(u64::MAX);

    /// Raw ordinal value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

impl From<Key> for u64 {
    fn from(k: Key) -> Self {
        k.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_ordinal() {
        assert!(Key(1) < Key(2));
        assert!(Key::MIN <= Key(0));
        assert!(Key(u64::MAX) <= Key::MAX);
    }

    #[test]
    fn conversions_roundtrip() {
        let k: Key = 77u64.into();
        let v: u64 = k.into();
        assert_eq!(v, 77);
        assert_eq!(k.value(), 77);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Key(9).to_string(), "k9");
    }
}
