//! # bda-core — broadcast channel substrate for wireless data access
//!
//! This crate is the foundation of the `bda` workspace, a reproduction of
//! *Broadcast-Based Data Access in Wireless Environments* (Yang &
//! Bouguettaya, EDBT 2002). It models the push-based broadcast medium the
//! paper evaluates indexing schemes on:
//!
//! * **Byte-time.** Following the paper (§4.1), both evaluation metrics —
//!   *access time* (client waiting time) and *tuning time* (power consumed
//!   listening) — are measured in **bytes read from the channel**, not in
//!   wall-clock units. [`Ticks`] therefore counts bytes since the start of
//!   the simulation; one tick = one byte broadcast.
//! * **Buckets.** The atomic unit a client can read is a [`bucket::Bucket`];
//!   a broadcast cycle is a [`channel::Channel`] — a fixed cyclic sequence of
//!   buckets that the server repeats forever.
//! * **Protocol machines.** Each access method (flat broadcast, `(1,m)`
//!   indexing, distributed indexing, hashing, signature indexing) is driven
//!   by a resumable client state machine ([`machine::ProtocolMachine`]) that
//!   decides, after every bucket it reads, whether to keep listening, doze
//!   until a known offset, or finish. Two drivers execute machines: the
//!   direct walker ([`machine::run_machine`]) used by benchmarks, and the
//!   discrete-event testbed in `bda-sim`, which steps the same machines
//!   through [`scheme::QueryRun`].
//! * **Flat broadcast.** The paper's baseline — no index, clients scan every
//!   bucket — lives here as [`flat::FlatScheme`].
//!
//! Concrete indexing schemes live in sibling crates (`bda-btree`,
//! `bda-hash`, `bda-signature`); they all implement [`scheme::Scheme`] and
//! produce [`scheme::System`]s that this crate can exercise uniformly.

pub mod bucket;
pub mod channel;
pub mod coverage;
pub mod disks;
pub mod dynamic;
pub mod error;
pub mod errors_model;
pub mod flat;
pub mod key;
pub mod machine;
pub mod multichannel;
pub mod params;
pub mod record;
pub mod scheme;

pub use bucket::{Bucket, BucketMeta};
pub use channel::Channel;
pub use coverage::Coverage;
pub use disks::{
    DiskConfig, DiskGeometry, DiskLayout, DiskMachine, DiskScheme, DiskSystem, FlatDisksScheme,
    RepetitionSchedule,
};
pub use dynamic::{
    run_versioned, run_versioned_observed, run_versioned_observed_channel,
    run_versioned_with_channel, run_versioned_with_policy, Epoch, ObservedVersionedSlot,
    ProgramTimeline, VersionedSlot, VersionedWalk,
};
pub use error::{BdaError, ProtocolFault, Result};
pub use errors_model::{
    BurstModel, ChainState, ChannelModel, ErrorModel, LossModel, OutageSchedule, RetryPolicy,
};
pub use flat::{FlatPayload, FlatScheme, FlatSystem};
pub use key::Key;
pub use machine::{
    run_machine_observed, run_machine_observed_channel, run_machine_with_channel,
    run_machine_with_errors, run_machine_with_policy, AccessOutcome, Action, FastForward,
    ProtocolMachine, StaleResponse, Verdict, Walk, WalkStep,
};
pub use multichannel::{
    channel_model_for, error_model_for, even_partition, patch_outcome, patch_spans, remix_seed,
    BucketRef, GroupConfig, GroupPayload, GroupSlot, GroupWalk, IndexedGroupScheme,
    IndexedGroupSystem, ObservedStripedSlot, StripedScheme, StripedSlot, StripedSystem,
    SwitchedRun,
};
pub use params::Params;
pub use record::{Dataset, Record};
pub use scheme::{DynSystem, ObservedWalkSlot, QueryRun, QuerySlot, Scheme, System, WalkSlot};

// Observability vocabulary, re-exported so scheme crates implementing
// `ProtocolMachine::bucket_kind` (and drivers wiring recorders through
// walks) need not depend on `bda-obs` directly.
pub use bda_obs::{BucketKind, NoopRecorder, Phase, PhaseSpans, Recorder, SpanRecorder};

/// Simulation time, measured in **bytes broadcast** since time zero.
///
/// The broadcast server emits exactly one byte per tick, so a bucket of
/// `size` bytes occupies the half-open interval `[start, start + size)` on
/// the time axis. Using bytes as the clock matches the paper's measurement
/// methodology: access time and tuning time are both reported as byte
/// counts, which makes results independent of CPU speed, network delay and
/// host load (§4.1).
pub type Ticks = u64;
