//! Client protocol machines and the walker that drives them.
//!
//! Every access method in the paper is, from the client's perspective, a
//! little state machine: *read a bucket, decide, doze, wake, read again…*
//! This module captures that shape once so that all five schemes share a
//! single, carefully-tested accounting of the two metrics:
//!
//! * **access time** — bytes elapsed between tuning in and completing the
//!   query (downloading the record, or concluding it is absent);
//! * **tuning time** — bytes the client actually *listened* to, which is
//!   what drains the battery. Dozing advances the clock without tuning
//!   cost; this is the "selective tuning" of Imielinski et al. that all
//!   indexing schemes exist to enable.

use crate::bucket::BucketMeta;
use crate::channel::Channel;
use crate::error::ProtocolFault;
use crate::errors_model::{ChannelModel, ErrorModel, RetryPolicy};
use crate::Ticks;
use bda_obs::{BucketKind, NoopRecorder, Phase, PhaseSpans, Recorder, SpanRecorder};

/// What a protocol machine wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep listening and read the next complete bucket.
    ReadNext,
    /// Doze (radio off) until absolute time `t`, then read the bucket that
    /// starts there. Channel builders guarantee pointers are bucket-aligned,
    /// so the walker will find a bucket starting exactly at `t`; if the
    /// target is misaligned the walker reads the first complete bucket after
    /// `t`, which models a (buggy) client missing its wake-up.
    DozeTo(Ticks),
    /// The query is complete.
    Finish(Verdict),
    /// The machine read a malformed bucket: a typed protocol fault instead
    /// of a client-side panic. The walker aborts the query (`aborted` set),
    /// because a fault on a version-consistent channel is a builder bug —
    /// version skew is reported *before* the payload reaches the machine,
    /// so staleness never masquerades as a fault.
    Fail(ProtocolFault),
}

/// How a machine wants to handle a bucket whose broadcast-program version
/// differs from the version its own pointers were derived from.
///
/// Returned by [`ProtocolMachine::on_stale`]. The dynamic walker reports
/// the skew, then either lets the machine keep going with an action of its
/// choosing or rebuilds the machine against the current program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleResponse {
    /// Keep this machine's state and continue with the given action. Only
    /// sound for machines whose remaining state is version-independent.
    Resume(Action),
    /// Discard the machine: the walker constructs a fresh machine from the
    /// *current* program and restarts the protocol at the skewed bucket.
    Respawn,
}

/// Terminal result reported by a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the requested record was downloaded.
    pub found: bool,
    /// Number of *false drops*: wrong data buckets downloaded because an
    /// index (signature) matched spuriously. Zero for exact indexes.
    pub false_drops: u32,
}

impl Verdict {
    /// Successful retrieval with no false drops.
    pub fn found() -> Self {
        Verdict {
            found: true,
            false_drops: 0,
        }
    }

    /// Search failed (record not broadcast).
    pub fn not_found() -> Self {
        Verdict {
            found: false,
            false_drops: 0,
        }
    }

    /// Attach a false-drop count.
    pub fn with_false_drops(mut self, n: u32) -> Self {
        self.false_drops = n;
        self
    }
}

/// A resumable client access protocol for payload type `P`.
///
/// The driver calls [`ProtocolMachine::start`] once with the tune-in time,
/// then feeds the machine every bucket it reads; the machine steers via the
/// returned [`Action`]s. Machines must be self-contained: everything they
/// know about the channel must come from constants captured at
/// construction (bucket counts, sizes) and from the payloads they read —
/// never from global knowledge of the cycle. This keeps the simulation
/// honest: a protocol can only be as clever as a real client.
pub trait ProtocolMachine<P> {
    /// Called once when the client tunes in at absolute time `tune_in`.
    fn start(&mut self, tune_in: Ticks) -> Action;

    /// Called after each bucket read with its payload and position metadata.
    fn on_bucket(&mut self, payload: &P, meta: BucketMeta) -> Action;

    /// Called instead of [`ProtocolMachine::on_bucket`] when the bucket was
    /// corrupted in transmission (error-prone channel extension; see
    /// [`crate::errors_model::ErrorModel`]). The client listened to the
    /// whole bucket but cannot use its contents.
    ///
    /// The default restarts the access protocol from the current instant —
    /// correct for any scheme whose protocol is stateless across cycles.
    /// Scanning schemes override this to rewind their cycle-coverage
    /// counters instead.
    fn on_corrupt(&mut self, meta: BucketMeta) -> Action {
        self.start(meta.end)
    }

    /// Called instead of [`ProtocolMachine::on_corrupt`] when the unusable
    /// bucket fell inside a scheduled carrier **outage**
    /// ([`crate::errors_model::OutageSchedule`]): the client sensed signal
    /// loss rather than a CRC failure. The walker additionally applies the
    /// outage resynchronization back-off (exponential whole-cycle dozes,
    /// see [`RetryPolicy::recovery_cycles`]) to whatever action this
    /// returns, so a client dozing through a dead span does not burn its
    /// retry budget one bucket at a time.
    ///
    /// The default defers to [`ProtocolMachine::on_corrupt`], whose own
    /// default restarts the protocol — i.e. the resynchronizing client
    /// re-probes the index once the carrier returns. Never called on a
    /// channel without outages.
    fn on_outage(&mut self, meta: BucketMeta) -> Action {
        self.on_corrupt(meta)
    }

    /// Called when a bucket about to be delivered carries a broadcast
    /// program version different from the one this machine was built
    /// against (dynamic broadcast; see [`crate::dynamic`]). The payload is
    /// withheld — stale pointers must not steer the walk — and the machine
    /// chooses between resuming with fresh state of its own or being
    /// respawned against the current program.
    ///
    /// The default is [`StaleResponse::Respawn`]: always sound, because the
    /// replacement machine is constructed from the live program and starts
    /// from scratch at the skewed bucket. Never called on frozen channels
    /// (every bucket matches the anchor version).
    fn on_stale(&mut self, meta: BucketMeta) -> StaleResponse {
        let _ = meta;
        StaleResponse::Respawn
    }

    /// Classify a payload for phase attribution: does reading this bucket
    /// count as index traversal or as a data read? Only called when the
    /// walk carries an enabled [`Recorder`], never on the uninstrumented
    /// path. The default says `Data`, which is exact for flat broadcast
    /// (every bucket *is* data) and a safe fallback for custom machines.
    fn bucket_kind(&self, payload: &P) -> BucketKind {
        let _ = payload;
        BucketKind::Data
    }

    /// Analytically advance past a run of *uninteresting* buckets in one
    /// step — the fast-forward capability scan-heavy schemes use to
    /// collapse O(cycle) per-bucket wake-ups into O(1) per interesting
    /// bucket (key match, signature hit, coverage completion, corruption,
    /// probe-budget edge).
    ///
    /// Called by an opted-in [`Walk`] while a `ReadNext` is pending,
    /// *before* the next bucket is read. The machine may consume any
    /// prefix of upcoming buckets whose slow-path handling it can
    /// reproduce exactly: for each consumed bucket it must apply the same
    /// internal state transitions `on_bucket` would have, and account the
    /// read/doze through `ctx` so access time, tuning time, probe counts
    /// and per-phase spans stay tick-identical to the bucket-by-bucket
    /// walk. It must stop *before* — never on — any bucket where the slow
    /// path does something non-mechanical: a (possible) match, a read
    /// that would complete coverage, a corrupted transmission
    /// ([`FastForward::next_corrupt`] consults the same fault oracle the
    /// walker uses), or probe-budget exhaustion
    /// ([`FastForward::can_read`]). The walker then reads that landing
    /// bucket through the ordinary slow path, so match/finish/corruption/
    /// abandon logic is never duplicated.
    ///
    /// The default consumes nothing — the conservative "one bucket at a
    /// time" behaviour every machine starts with.
    fn fast_forward(&mut self, ctx: &mut FastForward<'_, P>) {
        let _ = ctx;
    }
}

/// Bulk-accounting context for [`ProtocolMachine::fast_forward`].
///
/// Maintains a cursor over the upcoming buckets of the cycle plus the
/// aggregate accounting (clock, tuning, probes, per-phase spans) of
/// everything consumed so far. The cursor starts at the first complete
/// bucket after the walk's current instant — exactly the bucket the slow
/// path would read next — and every [`FastForward::read`] /
/// [`FastForward::doze_buckets`] replays the slow path's arithmetic on it.
#[derive(Debug)]
pub struct FastForward<'a, P> {
    ch: &'a Channel<P>,
    channel: ChannelModel,
    /// Cursor: index of the next unconsumed bucket.
    idx: usize,
    /// Absolute start instant of the cursor bucket.
    start: Ticks,
    /// Clock reached so far (== the walk's `now` plus consumed spans).
    now: Ticks,
    /// Tuning accumulated by consumed reads.
    tuning: Ticks,
    /// Reads consumed.
    probes: u32,
    /// Remaining probe budget (reads the walk may still take).
    left: u32,
    /// Buckets consumed (reads + dozed-over); caps runaway planners.
    consumed: usize,
    /// Whether to accumulate per-phase spans (the walk's `R::ENABLED`).
    record: bool,
    spans: PhaseSpans,
}

impl<'a, P> FastForward<'a, P> {
    /// Payload of the bucket the cursor is on — the one the slow path
    /// would read next.
    pub fn peek(&self) -> &'a P {
        &self.ch.bucket(self.idx).payload
    }

    /// Cycle index of the cursor bucket.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Whether the probe budget allows consuming one more read. When this
    /// is false the machine must stop: the slow path owns the budget
    /// abort. Also bounds total consumption at two cycles per engagement —
    /// a correct scan never needs more before an interesting bucket, and
    /// the cap keeps a buggy planner from spinning.
    pub fn can_read(&self) -> bool {
        self.left > 0 && self.consumed < 2 * self.ch.num_buckets() + 2
    }

    /// Whether the cursor bucket's transmission is corrupted — the same
    /// pure fault oracle (bucket start instant + seed) the walker
    /// consults, covering i.i.d. loss, burst loss and scheduled outages
    /// alike. Machines must stop *before* a corrupt bucket so the slow
    /// path performs the retry accounting. Skipped (dozed-over) buckets
    /// are never consulted, exactly like the slow path.
    pub fn next_corrupt(&self) -> bool {
        self.channel.corrupted(self.start)
    }

    /// Consume the cursor bucket as a read of the given kind: tuning and
    /// clock advance over it, one probe is spent, and (when observed) one
    /// span of the matching phase is attributed.
    pub fn read(&mut self, kind: BucketKind) {
        debug_assert!(self.can_read(), "fast-forward read past the budget");
        let size = Ticks::from(self.ch.bucket(self.idx).size);
        let end = self.start + size;
        // Identical to the slow path: listen from `now` through the
        // bucket's end (any partial tail counts as tuning).
        let span = end - self.now;
        self.tuning += span;
        self.now = end;
        self.probes += 1;
        self.left -= 1;
        if self.record {
            let phase = match kind {
                BucketKind::Index => Phase::IndexTraversal,
                BucketKind::Data => Phase::DataRead,
            };
            self.spans.add(phase, span, span);
        }
        self.advance();
    }

    /// Consume the next `n` buckets as a single doze (radio off): the
    /// clock advances over them with no tuning cost, and (when observed)
    /// exactly one `Doze` span is attributed — matching the one
    /// `DozeTo` action the slow path would have taken. Only valid
    /// directly after a [`FastForward::read`] (the clock sits on the
    /// cursor's start), which is the only place the protocols doze.
    pub fn doze_buckets(&mut self, n: usize) {
        debug_assert_eq!(self.now, self.start, "doze must follow a read");
        let from = self.now;
        for _ in 0..n {
            self.advance();
        }
        self.now = self.start;
        if self.record && self.now > from {
            self.spans.add(Phase::Doze, self.now - from, 0);
        }
    }

    fn advance(&mut self) {
        self.start += Ticks::from(self.ch.bucket(self.idx).size);
        self.idx += 1;
        if self.idx == self.ch.num_buckets() {
            self.idx = 0;
        }
        self.consumed += 1;
    }
}

/// The result of one client query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the record was retrieved.
    pub found: bool,
    /// Access time: bytes from tune-in until the query completed (`At`).
    pub access: Ticks,
    /// Tuning time: bytes the client listened to (`Tt`). Always ≤ `access`.
    pub tuning: Ticks,
    /// Number of buckets read.
    pub probes: u32,
    /// Wrong data buckets downloaded due to spurious index matches.
    pub false_drops: u32,
    /// Corrupted bucket transmissions the client had to recover from
    /// (always 0 on a lossless channel).
    pub retries: u32,
    /// Set when the client's [`RetryPolicy`] gave up on an error-prone
    /// channel (retry budget exhausted or give-up deadline passed). An
    /// abandoned query is a *truthful* failure — `found` is false and the
    /// client knows it stopped early — unlike `aborted`, which flags a
    /// protocol bug. Always false under [`RetryPolicy::UNBOUNDED`].
    pub abandoned: bool,
    /// Set when the walker aborted the query because the machine exceeded
    /// its probe budget, dozed into the past, or reported a typed
    /// [`ProtocolFault`] — all indicate a bug in a channel builder or
    /// protocol, and tests assert it never happens.
    pub aborted: bool,
    /// Times the walk discarded its machine and restarted against the
    /// current broadcast program after detecting version skew (always 0 on
    /// a frozen channel).
    pub stale_restarts: u32,
    /// Buckets observed whose program version differed from the walk's
    /// anchor version (always 0 on a frozen channel). Every restart is
    /// preceded by a skew, so `version_skews >= stale_restarts`.
    pub version_skews: u32,
}

/// One externally visible step of a client query — the event granularity at
/// which the discrete-event testbed (`bda-sim`) schedules clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStep {
    /// The client listened from `from` to `until` and read bucket `bucket`.
    /// (`from` may precede the bucket's start: a freshly tuned-in client
    /// listens through the tail of a partial bucket to find the boundary —
    /// the paper's *initial wait* `Ft`.)
    Read {
        /// Index of the bucket read.
        bucket: usize,
        /// Absolute time listening began.
        from: Ticks,
        /// Absolute time the bucket was fully received.
        until: Ticks,
    },
    /// The client dozed (radio off) until `until`.
    Doze {
        /// Absolute wake-up time.
        until: Ticks,
    },
    /// The query finished with the given outcome. Subsequent calls return
    /// the same value.
    Done(AccessOutcome),
}

/// Executes a [`ProtocolMachine`] against a [`Channel`], one step at a
/// time, accounting access and tuning time.
///
/// `Walk` is both the fast in-process driver (via [`run_machine`]) and the
/// unit of scheduling for the event-driven testbed, which alternates
/// [`Walk::step`] with its global event queue. The two drivers execute the
/// identical code path, so their results cannot diverge — a property the
/// integration suite verifies explicitly.
#[derive(Debug)]
pub struct Walk<'a, P, M, R = NoopRecorder> {
    ch: &'a Channel<P>,
    machine: M,
    tune_in: Ticks,
    now: Ticks,
    tuning: Ticks,
    probes: u32,
    retries: u32,
    false_drops_hint: u32,
    pending: Option<Action>,
    outcome: Option<AccessOutcome>,
    max_probes: u32,
    channel: ChannelModel,
    policy: RetryPolicy,
    /// Consecutive unusable reads that fell inside an outage window —
    /// drives the exponential resynchronization back-off; reset by any
    /// usable or merely-lossy read.
    outage_streak: u32,
    ff: bool,
    recorder: R,
}

impl<'a, P, M: ProtocolMachine<P>> Walk<'a, P, M> {
    /// Begin a query at absolute time `tune_in` over a lossless channel.
    pub fn new(ch: &'a Channel<P>, machine: M, tune_in: Ticks) -> Self {
        Walk::with_errors(ch, machine, tune_in, ErrorModel::NONE)
    }

    /// Begin a query over an error-prone channel: each bucket transmission
    /// is independently corrupted per `errors`, and the machine recovers
    /// via [`ProtocolMachine::on_corrupt`] (retrying forever).
    pub fn with_errors(ch: &'a Channel<P>, machine: M, tune_in: Ticks, errors: ErrorModel) -> Self {
        Walk::with_policy(ch, machine, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    /// Begin a query over an error-prone channel with an explicit
    /// client-side [`RetryPolicy`] governing recovery from corrupt reads.
    pub fn with_policy(
        ch: &'a Channel<P>,
        machine: M,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Self {
        Walk::with_recorder(ch, machine, tune_in, errors, policy, NoopRecorder)
    }

    /// Begin a query over a unified [`ChannelModel`] (i.i.d. or burst
    /// loss, with or without outages). With a degenerate channel
    /// (`ChannelModel::from(errors)`) this is bit-identical to
    /// [`Walk::with_policy`].
    pub fn with_channel(
        ch: &'a Channel<P>,
        machine: M,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        Walk::with_channel_recorder(ch, machine, tune_in, channel, policy, NoopRecorder)
    }
}

impl<'a, P, M: ProtocolMachine<P>, R: Recorder> Walk<'a, P, M, R> {
    /// Begin a query that reports every step's phase-attributed span to
    /// `recorder`. With the default [`NoopRecorder`] (`ENABLED = false`)
    /// every instrumentation site compiles out and this is exactly
    /// [`Walk::with_policy`].
    pub fn with_recorder(
        ch: &'a Channel<P>,
        machine: M,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
        recorder: R,
    ) -> Self {
        Walk::with_channel_recorder(ch, machine, tune_in, errors.into(), policy, recorder)
    }

    /// [`Walk::with_channel`] with span instrumentation — the most general
    /// constructor; every other constructor delegates here.
    pub fn with_channel_recorder(
        ch: &'a Channel<P>,
        mut machine: M,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
        recorder: R,
    ) -> Self {
        let pending = machine.start(tune_in);
        // A correct protocol never needs more than a handful of cycles; the
        // budget of four cycles plus slack catches runaway machines without
        // ever triggering for correct ones on a lossless channel. Lossy
        // channels get a budget scaled by the worst-state retry factor;
        // channels with outages get further slack for resynchronization
        // (outage recovery dozes whole cycles, so the probe cost per
        // outage is logarithmic, but the streak resets buy extra reads).
        let base = (ch.num_buckets() as u32)
            .saturating_mul(4)
            .saturating_add(64);
        let worst = channel.worst_loss();
        let mut max_probes = if worst > 0.0 {
            let factor = (1.0 / (1.0 - worst.min(0.99))).ceil() as u32 + 4;
            base.saturating_mul(factor)
        } else {
            base
        };
        if channel.has_outages() {
            max_probes = max_probes.saturating_mul(4).saturating_add(256);
        }
        Walk {
            ch,
            machine,
            tune_in,
            now: tune_in,
            tuning: 0,
            probes: 0,
            retries: 0,
            false_drops_hint: 0,
            pending: Some(pending),
            outcome: None,
            max_probes,
            channel,
            policy,
            outage_streak: 0,
            ff: false,
            recorder,
        }
    }

    /// Opt into analytical fast-forward: while a `ReadNext` is pending the
    /// walk lets the machine bulk-consume uninteresting buckets (see
    /// [`ProtocolMachine::fast_forward`]) before the next real read, so a
    /// linear scan takes O(1) steps per *interesting* bucket instead of
    /// one per bucket. Outcomes, access/tuning accounting, probe counts
    /// and per-phase spans are tick-identical to the slow path; only the
    /// [`WalkStep`] granularity (and hence the event count of an engine
    /// driving the walk) changes. Off by default.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
    }

    /// Whether analytical fast-forward is enabled for this walk.
    pub fn fast_forward_enabled(&self) -> bool {
        self.ff
    }

    /// The walk's recorder (e.g. to read accumulated spans).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the walk's recorder.
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Absolute simulation time the client has reached.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Whether the query has completed.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The outcome, if the query has completed.
    pub fn outcome(&self) -> Option<AccessOutcome> {
        self.outcome
    }

    fn finish(&mut self, found: bool, false_drops: u32, aborted: bool) -> WalkStep {
        let out = AccessOutcome {
            found,
            access: self.now - self.tune_in,
            tuning: self.tuning,
            probes: self.probes,
            false_drops,
            retries: self.retries,
            abandoned: false,
            aborted,
            stale_restarts: 0,
            version_skews: 0,
        };
        self.outcome = Some(out);
        WalkStep::Done(out)
    }

    /// Give up truthfully: the retry policy's budget or deadline ran out.
    fn abandon(&mut self) -> WalkStep {
        let mut step = self.finish(false, self.false_drops_hint, false);
        if let (Some(out), WalkStep::Done(done)) = (self.outcome.as_mut(), &mut step) {
            out.abandoned = true;
            done.abandoned = true;
        }
        step
    }

    /// The probe budget ran out. On a channel that actually corrupted
    /// reads this is a truthful abandonment (the client drowned in
    /// retries, not a protocol bug); on a clean walk it flags a runaway
    /// machine and aborts, as it always has.
    fn exhaust(&mut self) -> WalkStep {
        if self.retries > 0 {
            self.abandon()
        } else {
            self.finish(false, self.false_drops_hint, true)
        }
    }

    /// Let the machine bulk-consume uninteresting buckets, then fold its
    /// aggregate accounting into the walk as if each had been stepped.
    fn run_fast_forward(&mut self) {
        // Disengage within four cycles of the clock's end: the slow path's
        // saturating arithmetic must stay observable, and a fast-forward
        // engagement never advances further than two cycles.
        if self
            .ch
            .cycle_len()
            .checked_mul(4)
            .and_then(|w| self.now.checked_add(w))
            .is_none()
        {
            return;
        }
        let (idx, start) = self.ch.first_complete_at(self.now);
        let mut ctx = FastForward {
            ch: self.ch,
            channel: self.channel,
            idx,
            start,
            now: self.now,
            tuning: 0,
            probes: 0,
            left: self.max_probes - self.probes,
            consumed: 0,
            record: R::ENABLED,
            spans: PhaseSpans::new(),
        };
        self.machine.fast_forward(&mut ctx);
        if ctx.probes == 0 {
            return;
        }
        // Every consumed read was clean (machines stop before corrupt
        // buckets), and a clean read resets the outage streak on the
        // bucket-by-bucket path — mirror that here or the next dead read
        // would back off further than the slow walk.
        self.outage_streak = 0;
        self.tuning += ctx.tuning;
        self.now = ctx.now;
        self.probes += ctx.probes;
        if R::ENABLED {
            for (phase, t) in ctx.spans.iter() {
                if t.count > 0 {
                    self.recorder.span_n(phase, t.count, t.access, t.tuning);
                }
            }
        }
    }

    /// Apply a back-off of `cycles` whole cycles to a post-corruption
    /// action: the resume point shifts by whole cycles, which preserves
    /// the bucket the machine expects to see next (the cycle is periodic).
    fn backoff(&self, act: Action, cycles: u32) -> Action {
        if cycles == 0 {
            return act;
        }
        let shift = Ticks::from(cycles).saturating_mul(self.ch.cycle_len());
        match act {
            Action::ReadNext => Action::DozeTo(self.now.saturating_add(shift)),
            Action::DozeTo(t) => Action::DozeTo(t.saturating_add(shift)),
            finish => finish,
        }
    }

    /// Execute the machine's next action and report what happened.
    pub fn step(&mut self) -> WalkStep {
        if let Some(out) = self.outcome {
            return WalkStep::Done(out);
        }
        let action = self
            .pending
            .take()
            .expect("walk invariant: pending action present while not done");
        match action {
            Action::ReadNext => {
                if self.probes >= self.max_probes {
                    return self.exhaust();
                }
                if self.ff && self.probes > 0 {
                    self.run_fast_forward();
                    if self.probes >= self.max_probes {
                        // The scan burned the whole budget on uninteresting
                        // buckets; the next read gives up, as it would have
                        // bucket-by-bucket.
                        return self.exhaust();
                    }
                }
                let (idx, start) = self.ch.first_complete_at(self.now);
                let bucket = self.ch.bucket(idx);
                let size = Ticks::from(bucket.size);
                let end = start + size;
                let from = self.now;
                // The client listens from `now` until the bucket completes:
                // any partial-bucket tail counts as tuning (initial wait).
                self.tuning += end - self.now;
                self.now = end;
                self.probes += 1;
                let meta = BucketMeta {
                    index: idx,
                    start,
                    end,
                    size: size as u32,
                    version: bucket.version,
                };
                if R::ENABLED {
                    // Corruption trumps structure (the client cannot use the
                    // payload); the very first read is the initial probe; all
                    // other reads classify by what the machine sees in them.
                    let phase = if self.channel.corrupted(start) {
                        Phase::Retry
                    } else if self.probes == 1 {
                        Phase::InitialProbe
                    } else {
                        match self.machine.bucket_kind(&bucket.payload) {
                            BucketKind::Index => Phase::IndexTraversal,
                            BucketKind::Data => Phase::DataRead,
                        }
                    };
                    self.recorder.span(phase, end - from, end - from);
                }
                let next = if self.channel.corrupted(start) {
                    self.retries += 1;
                    if self.policy.gives_up(self.retries, self.now - self.tune_in) {
                        return self.abandon();
                    }
                    if self.channel.in_outage(start) {
                        // Carrier gone: resynchronize. The machine restarts
                        // its protocol (default: re-probe the index) and the
                        // walker dozes exponentially more whole cycles per
                        // consecutive dead read, so an outage costs O(log)
                        // probes instead of one per bucket.
                        self.outage_streak += 1;
                        let recovery = self.machine.on_outage(meta);
                        let cycles = self.policy.recovery_cycles(self.outage_streak, true);
                        self.backoff(recovery, cycles)
                    } else {
                        self.outage_streak = 0;
                        let recovery = self.machine.on_corrupt(meta);
                        let cycles = self.policy.recovery_cycles(self.retries, false);
                        self.backoff(recovery, cycles)
                    }
                } else {
                    self.outage_streak = 0;
                    self.machine.on_bucket(&bucket.payload, meta)
                };
                if let Action::Finish(v) = next {
                    self.false_drops_hint = v.false_drops;
                }
                self.pending = Some(next);
                WalkStep::Read {
                    bucket: idx,
                    from,
                    until: end,
                }
            }
            Action::DozeTo(t) => {
                if t < self.now {
                    // Dozing into the past is a protocol/builder bug.
                    return self.finish(false, self.false_drops_hint, true);
                }
                if R::ENABLED {
                    self.recorder.span(Phase::Doze, t - self.now, 0);
                }
                self.now = t;
                self.pending = Some(Action::ReadNext);
                WalkStep::Doze { until: t }
            }
            Action::Finish(v) => self.finish(v.found, v.false_drops, false),
            // A typed protocol fault on a frozen channel is a builder bug:
            // abort so the differential suites catch it.
            Action::Fail(_) => self.finish(false, self.false_drops_hint, true),
        }
    }
}

/// Drive a machine to completion and return its outcome — the fast path
/// used by benchmarks and analytical-validation sweeps.
pub fn run_machine<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
) -> AccessOutcome {
    run_machine_with_errors(ch, machine, tune_in, ErrorModel::NONE)
}

/// [`run_machine`] over an error-prone channel (unbounded retries).
pub fn run_machine_with_errors<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    errors: ErrorModel,
) -> AccessOutcome {
    run_machine_with_policy(ch, machine, tune_in, errors, RetryPolicy::UNBOUNDED)
}

/// [`run_machine`] over an error-prone channel with an explicit client
/// [`RetryPolicy`].
pub fn run_machine_with_policy<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> AccessOutcome {
    let mut walk = Walk::with_policy(ch, machine, tune_in, errors, policy);
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return out;
        }
    }
}

/// [`run_machine`] over a unified [`ChannelModel`] (burst loss and/or
/// outages) with an explicit client [`RetryPolicy`]. Degenerate channels
/// reproduce [`run_machine_with_policy`] bit for bit.
pub fn run_machine_with_channel<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> AccessOutcome {
    let mut walk = Walk::with_channel(ch, machine, tune_in, channel, policy);
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return out;
        }
    }
}

/// [`run_machine_with_channel`] with span instrumentation.
pub fn run_machine_observed_channel<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> (AccessOutcome, PhaseSpans) {
    let mut walk =
        Walk::with_channel_recorder(ch, machine, tune_in, channel, policy, SpanRecorder::new());
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return (out, walk.recorder().spans);
        }
    }
}

/// [`run_machine_with_policy`] with span instrumentation: also returns the
/// walk's per-phase access/tuning decomposition, whose totals equal the
/// outcome's `access` and `tuning` exactly (spans are recorded as the
/// bytes are paid, so the sums telescope).
pub fn run_machine_observed<P, M: ProtocolMachine<P>>(
    ch: &Channel<P>,
    machine: M,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> (AccessOutcome, PhaseSpans) {
    let mut walk = Walk::with_recorder(ch, machine, tune_in, errors, policy, SpanRecorder::new());
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return (out, walk.recorder().spans);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::Bucket;

    fn ch(sizes: &[u32]) -> Channel<usize> {
        Channel::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| Bucket::new(s, i))
                .collect(),
        )
        .unwrap()
    }

    /// Reads `reads` buckets then finishes; optionally dozes `doze` bytes
    /// after the first read.
    struct Scripted {
        reads: u32,
        doze: Option<Ticks>,
        seen: Vec<usize>,
    }

    impl ProtocolMachine<usize> for Scripted {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, payload: &usize, meta: BucketMeta) -> Action {
            self.seen.push(*payload);
            self.reads -= 1;
            if self.reads == 0 {
                Action::Finish(Verdict::found())
            } else if let Some(d) = self.doze.take() {
                Action::DozeTo(meta.end + d)
            } else {
                Action::ReadNext
            }
        }
    }

    #[test]
    fn accounting_for_sequential_reads() {
        let c = ch(&[10, 20, 30]);
        // Tune in at t=5 (mid bucket 0): listen 5 bytes of tail, then read
        // bucket 1 (20 bytes) and bucket 2 (30 bytes).
        let out = run_machine(
            &c,
            Scripted {
                reads: 2,
                doze: None,
                seen: vec![],
            },
            5,
        );
        assert!(out.found);
        assert!(!out.aborted);
        assert_eq!(out.probes, 2);
        // access = (10-5) + 20 + 30 = 55; tuning identical (no doze).
        assert_eq!(out.access, 55);
        assert_eq!(out.tuning, 55);
    }

    #[test]
    fn doze_advances_clock_without_tuning() {
        let c = ch(&[10, 20, 30]);
        // Read bucket 0 (tune in aligned at 0), doze 20 bytes (to start of
        // bucket 2 at t=30), read bucket 2.
        let out = run_machine(
            &c,
            Scripted {
                reads: 2,
                doze: Some(20),
                seen: vec![],
            },
            0,
        );
        assert!(out.found);
        assert_eq!(out.probes, 2);
        assert_eq!(out.access, 60); // 10 (read) + 20 (doze) + 30 (read)
        assert_eq!(out.tuning, 40); // only the two reads
    }

    #[test]
    fn walk_steps_report_events_in_order() {
        let c = ch(&[10, 20, 30]);
        let mut walk = Walk::new(
            &c,
            Scripted {
                reads: 2,
                doze: Some(20),
                seen: vec![],
            },
            0,
        );
        assert_eq!(
            walk.step(),
            WalkStep::Read {
                bucket: 0,
                from: 0,
                until: 10
            }
        );
        assert_eq!(walk.step(), WalkStep::Doze { until: 30 });
        assert_eq!(
            walk.step(),
            WalkStep::Read {
                bucket: 2,
                from: 30,
                until: 60
            }
        );
        assert!(matches!(walk.step(), WalkStep::Done(_)));
        // Done is sticky.
        assert!(matches!(walk.step(), WalkStep::Done(_)));
        assert!(walk.is_done());
        assert!(walk.outcome().unwrap().found);
    }

    /// A machine that never finishes must be aborted by the probe budget.
    struct Runaway;
    impl ProtocolMachine<usize> for Runaway {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, _p: &usize, _m: BucketMeta) -> Action {
            Action::ReadNext
        }
    }

    #[test]
    fn runaway_machines_are_aborted() {
        let c = ch(&[10, 20]);
        let out = run_machine(&c, Runaway, 0);
        assert!(out.aborted);
        assert!(!out.found);
    }

    /// A machine that dozes backwards must be aborted.
    struct TimeTraveller;
    impl ProtocolMachine<usize> for TimeTraveller {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, _p: &usize, meta: BucketMeta) -> Action {
            Action::DozeTo(meta.start.saturating_sub(1))
        }
    }

    #[test]
    fn backwards_doze_is_aborted() {
        let c = ch(&[10, 20]);
        let out = run_machine(&c, TimeTraveller, 3);
        assert!(out.aborted);
    }

    /// A machine that reports a typed fault on its first bucket.
    struct Faulty;
    impl ProtocolMachine<usize> for Faulty {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, _p: &usize, _m: BucketMeta) -> Action {
            Action::Fail(ProtocolFault::DanglingPointer)
        }
    }

    #[test]
    fn typed_faults_abort_instead_of_panicking() {
        let c = ch(&[10, 20]);
        let out = run_machine(&c, Faulty, 0);
        assert!(out.aborted, "a fault on a frozen channel is a builder bug");
        assert!(!out.found);
        assert!(!out.abandoned);
        assert_eq!(out.probes, 1, "the faulting read still cost a probe");
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::found().found);
        assert!(!Verdict::not_found().found);
        assert_eq!(Verdict::found().with_false_drops(3).false_drops, 3);
    }

    /// Finishes as soon as it sees any usable bucket; restarts on corrupt
    /// ones (the default `on_corrupt`).
    struct FirstGood;
    impl ProtocolMachine<usize> for FirstGood {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, _p: &usize, _m: BucketMeta) -> Action {
            Action::Finish(Verdict::found())
        }
    }

    #[test]
    fn bounded_retries_abandon_truthfully() {
        let c = ch(&[10, 20]);
        // Every transmission corrupt: budget of 2 retries means the third
        // corrupt read gives up.
        let out = run_machine_with_policy(
            &c,
            FirstGood,
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(2),
        );
        assert!(out.abandoned);
        assert!(!out.found);
        assert!(!out.aborted, "abandonment is not a protocol bug");
        assert_eq!(out.retries, 3);
        assert_eq!(out.probes, 3);
    }

    #[test]
    fn backoff_dozes_whole_cycles_between_retries() {
        let c = ch(&[10, 20]); // cycle length 30
        let immediate = run_machine_with_policy(
            &c,
            FirstGood,
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(2),
        );
        let backed_off = run_machine_with_policy(
            &c,
            FirstGood,
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(2).with_backoff(1),
        );
        assert!(backed_off.abandoned);
        // Two recoveries each doze one extra cycle; the final corrupt read
        // abandons without a back-off.
        assert_eq!(backed_off.access, immediate.access + 2 * c.cycle_len());
        // Back-off is radio-off time: tuning unchanged.
        assert_eq!(backed_off.tuning, immediate.tuning);
    }

    #[test]
    fn give_up_deadline_abandons_at_next_corrupt_read() {
        let c = ch(&[10, 20]);
        let out = run_machine_with_policy(
            &c,
            FirstGood,
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::default().with_deadline(1),
        );
        assert!(out.abandoned);
        assert_eq!(out.retries, 1, "first corrupt read is past the deadline");
    }

    #[test]
    fn spans_decompose_access_and_tuning_exactly() {
        let c = ch(&[10, 20, 30]);
        // Tune in mid-bucket at t=5: initial probe listens through bucket 0's
        // tail + bucket 1 (5+20... no: first_complete_at(5) is bucket 1, so
        // the client listens 5 bytes of bucket 0 tail then bucket 1).
        let (out, spans) = run_machine_observed(
            &c,
            Scripted {
                reads: 2,
                doze: Some(5),
                seen: vec![],
            },
            5,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        );
        assert!(out.found);
        assert_eq!(spans.total_access(), out.access);
        assert_eq!(spans.total_tuning(), out.tuning);
        assert_eq!(spans.get(Phase::InitialProbe).count, 1);
        assert_eq!(spans.get(Phase::InitialProbe).access, 25); // 5 tail + 20
        assert_eq!(spans.get(Phase::Doze).access, 5);
        assert_eq!(spans.get(Phase::Doze).tuning, 0);
        assert_eq!(spans.get(Phase::DataRead).count, 1); // default bucket_kind
        assert_eq!(spans.get(Phase::Retry).count, 0);
    }

    #[test]
    fn corrupt_reads_are_attributed_to_retry() {
        let c = ch(&[10, 20]);
        let (out, spans) = run_machine_observed(
            &c,
            FirstGood,
            0,
            ErrorModel::new(1.0, 1),
            RetryPolicy::bounded(2),
        );
        assert!(out.abandoned);
        assert_eq!(spans.total_access(), out.access);
        assert_eq!(spans.total_tuning(), out.tuning);
        // Every read was corrupt, including the first and the abandoning one.
        assert_eq!(spans.get(Phase::Retry).count, u64::from(out.retries));
        assert_eq!(spans.get(Phase::InitialProbe).count, 0);
        assert_eq!(spans.get(Phase::DataRead).count, 0);
    }

    #[test]
    fn noop_and_observed_walks_agree() {
        let c = ch(&[10, 20, 30]);
        for tune_in in [0u64, 3, 17, 42] {
            let plain = run_machine_with_policy(
                &c,
                Scripted {
                    reads: 2,
                    doze: Some(20),
                    seen: vec![],
                },
                tune_in,
                ErrorModel::new(0.3, 9),
                RetryPolicy::bounded(5),
            );
            let (observed, _) = run_machine_observed(
                &c,
                Scripted {
                    reads: 2,
                    doze: Some(20),
                    seen: vec![],
                },
                tune_in,
                ErrorModel::new(0.3, 9),
                RetryPolicy::bounded(5),
            );
            assert_eq!(plain, observed);
        }
    }

    /// Scans for the bucket whose payload equals `target`, with a
    /// fast-forward planner that bulk-skips non-matching buckets.
    struct SkipTo {
        target: usize,
        seen: u32,
    }

    impl ProtocolMachine<usize> for SkipTo {
        fn start(&mut self, _t: Ticks) -> Action {
            Action::ReadNext
        }
        fn on_bucket(&mut self, p: &usize, _m: BucketMeta) -> Action {
            self.seen += 1;
            if *p == self.target {
                Action::Finish(Verdict::found())
            } else {
                Action::ReadNext
            }
        }
        fn on_corrupt(&mut self, _m: BucketMeta) -> Action {
            Action::ReadNext
        }
        fn fast_forward(&mut self, ctx: &mut FastForward<'_, usize>) {
            while ctx.can_read() && !ctx.next_corrupt() && *ctx.peek() != self.target {
                self.seen += 1;
                ctx.read(BucketKind::Data);
            }
        }
    }

    fn run_ff<P, M: ProtocolMachine<P>>(
        ch: &Channel<P>,
        machine: M,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans, u64) {
        let mut walk =
            Walk::with_recorder(ch, machine, tune_in, errors, policy, SpanRecorder::new());
        walk.set_fast_forward(true);
        let mut steps = 0u64;
        loop {
            steps += 1;
            if let WalkStep::Done(out) = walk.step() {
                return (out, walk.recorder().spans, steps);
            }
        }
    }

    #[test]
    fn fast_forward_is_tick_identical_and_collapses_steps() {
        let c = ch(&[10, 20, 30, 40, 50, 60, 70, 80]);
        for target in [0usize, 3, 7] {
            for tune_in in [0u64, 5, 33, 359] {
                for errors in [ErrorModel::NONE, ErrorModel::new(0.4, 0xC0FF)] {
                    let policy = RetryPolicy::UNBOUNDED;
                    let (slow, slow_spans) = run_machine_observed(
                        &c,
                        SkipTo { target, seen: 0 },
                        tune_in,
                        errors,
                        policy,
                    );
                    let (fast, fast_spans, steps) =
                        run_ff(&c, SkipTo { target, seen: 0 }, tune_in, errors, policy);
                    assert_eq!(slow, fast, "target={target} t={tune_in}");
                    assert_eq!(slow_spans, fast_spans, "span totals and counts match");
                    if errors.loss_prob == 0.0 {
                        // One initial probe, at most one fast-forwarded
                        // landing read, one Done: O(1) steps regardless of
                        // how far away the target is.
                        assert!(steps <= 3, "steps={steps}");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_forward_aborts_on_the_same_probe_as_the_slow_path() {
        struct NeverMatch;
        impl ProtocolMachine<usize> for NeverMatch {
            fn start(&mut self, _t: Ticks) -> Action {
                Action::ReadNext
            }
            fn on_bucket(&mut self, _p: &usize, _m: BucketMeta) -> Action {
                Action::ReadNext
            }
            fn fast_forward(&mut self, ctx: &mut FastForward<'_, usize>) {
                while ctx.can_read() && !ctx.next_corrupt() {
                    ctx.read(BucketKind::Data);
                }
            }
        }
        let c = ch(&[10, 20]);
        let slow = run_machine(&c, NeverMatch, 7);
        let (fast, _, _) = run_ff(&c, NeverMatch, 7, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        assert!(slow.aborted && fast.aborted);
        assert_eq!(slow, fast, "budget abort is tick-identical");
    }

    #[test]
    fn fast_forward_disengages_near_ticks_max() {
        // Within four cycles of the clock's end fast-forward must hand the
        // walk back to the (saturating) slow path untouched.
        let c = ch(&[10, 20, 30, 40]);
        let cycle = c.cycle_len();
        for t in [Ticks::MAX - 3 * cycle, Ticks::MAX - 4 * cycle + 1] {
            let slow = run_machine(&c, SkipTo { target: 2, seen: 0 }, t);
            let (fast, _, _) = run_ff(
                &c,
                SkipTo { target: 2, seen: 0 },
                t,
                ErrorModel::NONE,
                RetryPolicy::UNBOUNDED,
            );
            assert!(slow.found);
            assert_eq!(slow, fast, "saturating clock behaviour is preserved");
        }
    }

    #[test]
    fn policies_are_noops_on_lossless_channels() {
        let c = ch(&[10, 20, 30]);
        let plain = run_machine(
            &c,
            Scripted {
                reads: 2,
                doze: Some(20),
                seen: vec![],
            },
            5,
        );
        let strict = run_machine_with_policy(
            &c,
            Scripted {
                reads: 2,
                doze: Some(20),
                seen: vec![],
            },
            5,
            ErrorModel::NONE,
            RetryPolicy::bounded(0).with_backoff(3).with_deadline(1),
        );
        assert_eq!(plain, strict);
        assert!(!plain.abandoned);
    }
}
