//! Multichannel broadcast groups (extension).
//!
//! Everything else in this crate broadcasts on **one** channel. Real
//! satellite and cellular broadcast systems stripe data across K parallel
//! carriers, and a client radio can tune only one of them at a time —
//! retuning costs real air time. This module generalizes the single
//! [`Channel`] into a **channel group**: K synchronized channels sharing
//! one tick clock (one byte per tick *per channel*), with two layouts:
//!
//! * [`StripedScheme`] — partition the key space into K contiguous slices
//!   and broadcast each slice as a self-contained program (any inner
//!   [`Scheme`]) on its own channel. A query routes to the channel owning
//!   its key range, pays one [`GroupConfig::switch_cost`] retune when that
//!   channel is not the home channel 0, and then runs the inner scheme's
//!   ordinary protocol unchanged. With `channels == 1` the striped system
//!   *is* the single-channel system, bit for bit.
//! * [`IndexedGroupScheme`] — a genuinely cross-channel layout: channel 0
//!   carries a two-level directory (root buckets, then directory buckets)
//!   whose leaf entries are [`BucketRef`]s pointing **across channels** at
//!   data buckets striped over channels `1..K`. Clients follow the
//!   pointers with the same forward-only discipline as
//!   [`crate::disks::DiskGeometry`]: a retune lands on the *next reachable
//!   occurrence* of the target bucket, never backward in time.
//!
//! **Equal aggregate bandwidth.** Splitting one carrier into K channels
//! slows each down by K×; rather than introduce a tick-per-byte ratio,
//! every per-channel program is built with [`Params::scaled`]`(K)`, so
//! byte-time arithmetic is unchanged and cross-K comparisons are fair.
//!
//! **Fault derivation.** Channel 0 keeps the caller's fault model
//! untouched (so K=1 is bit-identical to the single-channel path);
//! channels `g > 0` remix every seed in the model with
//! [`remix_seed`]`(seed, g)` — same loss probabilities, independent draws
//! — preserving the purity contract (corruption a pure function of bucket
//! start instant and seed) that sharded merge and fast-forward require.
//!
//! **Switch accounting.** The client radio rests on channel 0. A query
//! homed on channel `g != 0` pays `switch_cost` ticks before it can hear
//! anything: its walk starts at `tune_in + switch_cost` and the final
//! outcome's access time includes the switch. Tuning time does not — a
//! retuning radio is not demodulating. Observed walks attribute the cost
//! to the dedicated [`Phase::ChannelSwitch`] span.

use crate::bucket::Bucket;
use crate::channel::Channel;
use crate::error::{BdaError, Result};
use crate::errors_model::{ChannelModel, ErrorModel, LossModel, OutageSchedule, RetryPolicy};
use crate::key::Key;
use crate::machine::{
    run_machine, run_machine_observed, run_machine_observed_channel, run_machine_with_channel,
    run_machine_with_policy, AccessOutcome, Walk, WalkStep,
};
use crate::params::Params;
use crate::record::Dataset;
use crate::scheme::{DynSystem, QueryRun, QuerySlot, Scheme, System};
use crate::Ticks;
use bda_obs::{Phase, PhaseSpans, SpanRecorder};

/// A cross-channel bucket address: bucket starting at cycle-relative
/// `offset` on channel `channel` of the group. Directory entries carry
/// these; a client resolves one to an absolute instant with
/// [`Channel::occurrence_at_or_after`], which is forward-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketRef {
    /// Group channel index (0 = index/home channel).
    pub channel: u32,
    /// Start offset of the bucket within its channel's cycle, in ticks.
    pub offset: Ticks,
}

/// Multichannel group shape: how many synchronized channels, and what one
/// retune costs the client in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupConfig {
    /// Total number of channels in the group (≥ 1). For
    /// [`IndexedGroupScheme`] this includes the index channel 0.
    pub channels: u32,
    /// Air time one channel retune costs the client, in ticks.
    pub switch_cost: Ticks,
}

impl GroupConfig {
    /// The degenerate single-channel group.
    pub const SINGLE: GroupConfig = GroupConfig {
        channels: 1,
        switch_cost: 0,
    };

    /// A group of `channels` channels with retunes costing `switch_cost`.
    pub fn new(channels: u32, switch_cost: Ticks) -> Result<Self> {
        if channels == 0 {
            return Err(BdaError::BadParams(
                "a channel group needs at least one channel".into(),
            ));
        }
        if channels > 64 {
            return Err(BdaError::BadParams(format!(
                "channel group too wide ({channels} > 64)"
            )));
        }
        Ok(GroupConfig {
            channels,
            switch_cost,
        })
    }
}

/// Derive channel `g`'s fault seed from the base seed: identity for the
/// home channel 0, an independent splitmix draw for every other channel.
/// Purity is preserved — the derived seed is a constant per `(seed, g)`.
pub fn remix_seed(seed: u64, g: u32) -> u64 {
    if g == 0 {
        return seed;
    }
    let mut z = seed
        ^ (u64::from(g)
            .wrapping_add(0x5EED)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Channel `g`'s view of the caller's [`ErrorModel`]: same loss rate,
/// remixed seed (identity at `g == 0`).
pub fn error_model_for(base: ErrorModel, g: u32) -> ErrorModel {
    ErrorModel {
        loss_prob: base.loss_prob,
        seed: remix_seed(base.seed, g),
    }
}

/// Channel `g`'s view of the caller's [`ChannelModel`]: every probability
/// and schedule shape unchanged, every seed remixed (identity at
/// `g == 0`). Carriers fade independently, but with the same severity.
pub fn channel_model_for(base: ChannelModel, g: u32) -> ChannelModel {
    if g == 0 {
        return base;
    }
    let loss = match base.loss {
        LossModel::Iid(m) => LossModel::Iid(error_model_for(m, g)),
        LossModel::Burst(m) => LossModel::Burst(crate::errors_model::BurstModel {
            seed: remix_seed(m.seed, g),
            ..m
        }),
    };
    let outages = if base.outages.is_none() {
        base.outages
    } else {
        OutageSchedule {
            seed: remix_seed(base.outages.seed, g),
            ..base.outages
        }
    };
    ChannelModel { loss, outages }
}

/// Split `n` records into `k` contiguous slice sizes, as even as
/// possible (the first `n % k` slices get one extra record). Every slice
/// is non-empty when `k <= n`.
pub fn even_partition(n: usize, k: usize) -> Vec<usize> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

// ---------------------------------------------------------------------------
// Striped groups: one self-contained inner program per channel.
// ---------------------------------------------------------------------------

/// Stripe any inner [`Scheme`] across a channel group: the key-sorted
/// dataset is split into `channels` contiguous slices and each slice is
/// built as a self-contained inner program on its own channel (with
/// [`Params::scaled`] dilation for equal aggregate bandwidth).
pub struct StripedScheme<S> {
    inner: S,
    config: GroupConfig,
    partition: Option<Vec<usize>>,
}

impl<S: Scheme> StripedScheme<S> {
    /// Stripe `inner` over `config.channels` channels with even contiguous
    /// slices.
    pub fn new(inner: S, config: GroupConfig) -> Self {
        StripedScheme {
            inner,
            config,
            partition: None,
        }
    }

    /// Stripe with an explicit slice-size partition (the air-time
    /// allocator's output). `sizes` must have one entry per channel, all
    /// positive, summing to the dataset length at build time.
    pub fn with_partition(inner: S, config: GroupConfig, sizes: Vec<usize>) -> Self {
        StripedScheme {
            inner,
            config,
            partition: Some(sizes),
        }
    }

    /// Lay out the group (program version 0 on every channel).
    pub fn build(&self, dataset: &Dataset, params: &Params) -> Result<StripedSystem<S::System>> {
        self.rebuild(dataset, params, 0)
    }

    /// Lay out the group with every channel's program stamped `version`.
    pub fn rebuild(
        &self,
        dataset: &Dataset,
        params: &Params,
        version: u64,
    ) -> Result<StripedSystem<S::System>> {
        if dataset.is_empty() {
            return Err(BdaError::BadParams("cannot stripe an empty dataset".into()));
        }
        let n = dataset.len();
        // Never spread fewer records than channels: idle channels would
        // break the "every channel is a self-contained program" invariant.
        let k = (self.config.channels as usize).min(n).max(1);
        let sizes = match &self.partition {
            None => even_partition(n, k),
            Some(sizes) => {
                if sizes.len() != k {
                    return Err(BdaError::BadParams(format!(
                        "partition has {} slices for {} channels",
                        sizes.len(),
                        k
                    )));
                }
                if sizes.contains(&0) || sizes.iter().sum::<usize>() != n {
                    return Err(BdaError::BadParams(format!(
                        "partition {sizes:?} does not cover {n} records"
                    )));
                }
                sizes.clone()
            }
        };
        let scaled = params.scaled(k as u32);
        let mut channels = Vec::with_capacity(k);
        let mut bounds = Vec::with_capacity(k);
        let mut lo = 0usize;
        for &len in &sizes {
            let slice = &dataset.records()[lo..lo + len];
            bounds.push(slice[0].key.0);
            let slice_ds = Dataset::new(slice.to_vec())?;
            channels.push(self.inner.rebuild(&slice_ds, &scaled, version)?);
            lo += len;
        }
        Ok(StripedSystem {
            channels,
            bounds,
            switch_cost: self.config.switch_cost,
        })
    }
}

/// A built striped group: one inner [`System`] per channel plus the
/// frozen routing directory (first key of each slice).
pub struct StripedSystem<S: System> {
    channels: Vec<S>,
    bounds: Vec<u64>,
    switch_cost: Ticks,
}

impl<S: System> StripedSystem<S> {
    /// Assemble a striped system from already-built per-channel programs.
    /// `bounds[g]` is the first key of channel `g`'s slice; keys route to
    /// the last channel whose bound is ≤ the key (keys below every bound
    /// route to channel 0). Used by the dynamic-broadcast wrapper, whose
    /// channels are versioned servers rather than frozen systems.
    pub fn from_parts(channels: Vec<S>, bounds: Vec<u64>, switch_cost: Ticks) -> Self {
        assert_eq!(channels.len(), bounds.len());
        assert!(!channels.is_empty());
        StripedSystem {
            channels,
            bounds,
            switch_cost,
        }
    }

    /// Number of channels in the group.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Air time one retune costs, in ticks.
    pub fn switch_cost(&self) -> Ticks {
        self.switch_cost
    }

    /// Channel `g`'s inner program.
    pub fn channel_system(&self, g: usize) -> &S {
        &self.channels[g]
    }

    /// The routing directory: first key of each channel's slice.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The channel a query for `key` tunes to: the slice whose key range
    /// covers it (absent keys route to the covering range too, so the
    /// inner scheme answers not-found from the air).
    pub fn route(&self, key: Key) -> usize {
        self.bounds
            .partition_point(|&b| b <= key.0)
            .saturating_sub(1)
    }

    fn route_with_cost(&self, key: Key) -> (usize, Ticks) {
        let g = self.route(key);
        let sw = if g == 0 { 0 } else { self.switch_cost };
        (g, sw)
    }
}

/// Patch a walk's final outcome with the up-front channel-switch cost:
/// the retune elapses air time before the walk's clock starts, so it is
/// pure access time (a retuning radio is deaf — tuning is untouched).
pub fn patch_outcome(mut out: AccessOutcome, sw: Ticks) -> AccessOutcome {
    out.access = out.access.saturating_add(sw);
    out
}

/// Patch a walk's phase spans with the up-front channel-switch cost as
/// one [`Phase::ChannelSwitch`] span (omitted when the query stayed on
/// its home channel, keeping switch-free spans bit-identical).
pub fn patch_spans(mut spans: PhaseSpans, sw: Ticks) -> PhaseSpans {
    if sw > 0 {
        spans.add(Phase::ChannelSwitch, sw, 0);
    }
    spans
}

/// A stepping query wrapping an inner walk that started after a channel
/// switch: steps pass through, the final outcome gains the switch cost.
pub struct SwitchedRun<R> {
    inner: R,
    sw: Ticks,
}

impl<R: QueryRun> SwitchedRun<R> {
    /// Wrap `inner` (already started `sw` ticks after the query's real
    /// tune-in) so its final outcome charges the retune.
    pub fn new(inner: R, sw: Ticks) -> Self {
        SwitchedRun { inner, sw }
    }
}

impl<R: QueryRun> QueryRun for SwitchedRun<R> {
    fn step(&mut self) -> WalkStep {
        match self.inner.step() {
            WalkStep::Done(out) => WalkStep::Done(patch_outcome(out, self.sw)),
            step => step,
        }
    }

    fn now(&self) -> Ticks {
        self.inner.now()
    }
}

/// The reusable [`QuerySlot`] of a striped group: routes each query to
/// its channel at [`QuerySlot::start`], arms an inner [`Walk`] behind the
/// channel's derived fault model, and patches the switch cost into the
/// final outcome.
pub struct StripedSlot<'a, S: System> {
    system: &'a StripedSystem<S>,
    walk: Option<Walk<'a, S::Payload, S::Machine>>,
    base: ChannelModel,
    policy: RetryPolicy,
    ff: bool,
    pending: Ticks,
}

impl<'a, S: System> StripedSlot<'a, S> {
    /// An empty slot over the group behind `base` faults; arm with
    /// [`QuerySlot::start`].
    pub fn with_channel(
        system: &'a StripedSystem<S>,
        base: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        StripedSlot {
            system,
            walk: None,
            base,
            policy,
            ff: false,
            pending: 0,
        }
    }
}

impl<S: System> QuerySlot for StripedSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        let (g, sw) = self.system.route_with_cost(key);
        let sys = &self.system.channels[g];
        let mut walk = Walk::with_channel(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            channel_model_for(self.base, g as u32),
            self.policy,
        );
        walk.set_fast_forward(self.ff);
        self.walk = Some(walk);
        self.pending = sw;
    }

    fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
        if let Some(walk) = self.walk.as_mut() {
            walk.set_fast_forward(enabled);
        }
    }

    fn step(&mut self) -> WalkStep {
        let step = self
            .walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step();
        match step {
            WalkStep::Done(out) => WalkStep::Done(patch_outcome(out, self.pending)),
            s => s,
        }
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, Walk::is_done)
    }
}

/// The instrumented counterpart of [`StripedSlot`]: inner spans plus one
/// [`Phase::ChannelSwitch`] span when the query paid a retune, exposed
/// after completion (so the exposed totals equal the patched outcome).
pub struct ObservedStripedSlot<'a, S: System> {
    system: &'a StripedSystem<S>,
    walk: Option<Walk<'a, S::Payload, S::Machine, SpanRecorder>>,
    base: ChannelModel,
    policy: RetryPolicy,
    ff: bool,
    pending: Ticks,
    patched: Option<PhaseSpans>,
}

impl<'a, S: System> ObservedStripedSlot<'a, S> {
    /// An empty instrumented slot; arm with [`QuerySlot::start`].
    pub fn with_channel(
        system: &'a StripedSystem<S>,
        base: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        ObservedStripedSlot {
            system,
            walk: None,
            base,
            policy,
            ff: false,
            pending: 0,
            patched: None,
        }
    }
}

impl<S: System> QuerySlot for ObservedStripedSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        let (g, sw) = self.system.route_with_cost(key);
        let sys = &self.system.channels[g];
        let mut walk = Walk::with_channel_recorder(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            channel_model_for(self.base, g as u32),
            self.policy,
            SpanRecorder::new(),
        );
        walk.set_fast_forward(self.ff);
        self.walk = Some(walk);
        self.pending = sw;
        self.patched = None;
    }

    fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
        if let Some(walk) = self.walk.as_mut() {
            walk.set_fast_forward(enabled);
        }
    }

    fn step(&mut self) -> WalkStep {
        let step = self
            .walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step();
        match step {
            WalkStep::Done(out) => {
                let spans = self
                    .walk
                    .as_ref()
                    .map(|w| w.recorder().spans)
                    .unwrap_or_default();
                self.patched = Some(patch_spans(spans, self.pending));
                WalkStep::Done(patch_outcome(out, self.pending))
            }
            s => s,
        }
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, Walk::is_done)
    }

    fn spans(&self) -> Option<&PhaseSpans> {
        self.patched
            .as_ref()
            .or_else(|| self.walk.as_ref().map(|w| &w.recorder().spans))
    }
}

impl<S: System> DynSystem for StripedSystem<S>
where
    S::Machine: 'static,
{
    fn scheme_name(&self) -> &'static str {
        self.channels[0].scheme_name()
    }

    fn cycle_len(&self) -> Ticks {
        // The group's period is its slowest channel's cycle: after that
        // many ticks every channel has completed a whole number of... no —
        // channels are *not* harmonically related in general, so this is
        // the longest per-channel cycle, the natural back-off unit.
        self.channels
            .iter()
            .map(|c| c.channel().cycle_len())
            .max()
            .unwrap_or(0)
    }

    fn num_buckets(&self) -> usize {
        self.channels
            .iter()
            .map(|c| c.channel().num_buckets())
            .sum()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        patch_outcome(
            run_machine(sys.channel(), sys.query(key), tune_in.saturating_add(sw)),
            sw,
        )
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        self.probe_with_policy(key, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        patch_outcome(
            run_machine_with_policy(
                sys.channel(),
                sys.query(key),
                tune_in.saturating_add(sw),
                error_model_for(errors, g as u32),
                policy,
            ),
            sw,
        )
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        let walk = Walk::new(sys.channel(), sys.query(key), tune_in.saturating_add(sw));
        if sw == 0 {
            Box::new(walk)
        } else {
            Box::new(SwitchedRun { inner: walk, sw })
        }
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        let walk = Walk::with_policy(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            error_model_for(errors, g as u32),
            policy,
        );
        if sw == 0 {
            Box::new(walk)
        } else {
            Box::new(SwitchedRun { inner: walk, sw })
        }
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        Box::new(StripedSlot::with_channel(
            self,
            ChannelModel::NONE,
            RetryPolicy::UNBOUNDED,
        ))
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(StripedSlot::with_channel(self, errors.into(), policy))
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        let (out, spans) = run_machine_observed(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            error_model_for(errors, g as u32),
            policy,
        );
        (patch_outcome(out, sw), patch_spans(spans, sw))
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedStripedSlot::with_channel(
            self,
            errors.into(),
            policy,
        ))
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        patch_outcome(
            run_machine_with_channel(
                sys.channel(),
                sys.query(key),
                tune_in.saturating_add(sw),
                channel_model_for(channel, g as u32),
                policy,
            ),
            sw,
        )
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        let (out, spans) = run_machine_observed_channel(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            channel_model_for(channel, g as u32),
            policy,
        );
        (patch_outcome(out, sw), patch_spans(spans, sw))
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let sys = &self.channels[g];
        let walk = Walk::with_channel(
            sys.channel(),
            sys.query(key),
            tune_in.saturating_add(sw),
            channel_model_for(channel, g as u32),
            policy,
        );
        if sw == 0 {
            Box::new(walk)
        } else {
            Box::new(SwitchedRun { inner: walk, sw })
        }
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(StripedSlot::with_channel(self, channel, policy))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedStripedSlot::with_channel(self, channel, policy))
    }
}

// ---------------------------------------------------------------------------
// Indexed groups: a cross-channel directory on channel 0.
// ---------------------------------------------------------------------------

/// Bucket payloads of an indexed channel group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupPayload {
    /// Channel-0 root bucket: one `(first key, directory offset)` entry
    /// per directory bucket in this root's block.
    Root {
        /// `(first key of the directory bucket's range, channel-0 cycle
        /// offset of that directory bucket)`, sorted by key.
        entries: Vec<(u64, Ticks)>,
        /// First key of the *next* root bucket's first entry, if any — a
        /// scanning client stops at the root where the key is below this.
        next_first: Option<u64>,
        /// Ticks from this bucket's end to the next occurrence of root
        /// bucket 0 (the published resynchronization offset).
        to_root: Ticks,
    },
    /// Channel-0 directory bucket: exact key → cross-channel data-bucket
    /// address.
    Dir {
        /// `(key, data-bucket address)`, sorted by key.
        entries: Vec<(u64, BucketRef)>,
        /// First key of the next directory bucket's range, if any — a key
        /// inside `[entries[0].0, next_first)` that is not listed is
        /// *provably absent*, answered not-found from the air.
        next_first: Option<u64>,
        /// Ticks from this bucket's end to the next occurrence of root
        /// bucket 0.
        to_root: Ticks,
    },
    /// Data bucket on channels `1..K`: one record.
    Data {
        /// The record's primary key.
        key: u64,
    },
}

/// An indexed channel group: a two-level directory on channel 0 whose
/// leaves point across channels at data buckets striped over `1..K`.
///
/// Channel 0's cycle is `[root_0 .. root_{R-1}, dir_0 .. dir_{D-1}]` with
/// `D = ⌈n / fanout⌉` and `R = ⌈D / fanout⌉` (fanout =
/// [`Params::index_entries_per_bucket`], scale-invariant). The program is
/// frozen — the dynamic/churn path applies to striped groups, whose
/// channels are self-contained programs.
pub struct IndexedGroupScheme {
    config: GroupConfig,
    placement: Option<Vec<(u32, u32)>>,
}

impl IndexedGroupScheme {
    /// An indexed group over `config.channels` total channels (≥ 2: one
    /// index channel plus at least one data channel), data striped evenly
    /// and contiguously over channels `1..K`.
    pub fn new(config: GroupConfig) -> Result<Self> {
        if config.channels < 2 {
            return Err(BdaError::BadParams(
                "an indexed group needs an index channel plus at least one data channel".into(),
            ));
        }
        Ok(IndexedGroupScheme {
            config,
            placement: None,
        })
    }

    /// An indexed group with an explicit per-record `(channel, slot)`
    /// placement (the air-time allocator's output): `placement[i]` locates
    /// record `i` of the key-sorted dataset, channels in `1..config.channels`,
    /// and each channel's slots must be exactly `0..n_d`.
    pub fn with_placement(config: GroupConfig, placement: Vec<(u32, u32)>) -> Result<Self> {
        let mut s = IndexedGroupScheme::new(config)?;
        s.placement = Some(placement);
        Ok(s)
    }

    /// Lay out the group.
    pub fn build(&self, dataset: &Dataset, params: &Params) -> Result<IndexedGroupSystem> {
        if dataset.is_empty() {
            return Err(BdaError::BadParams("cannot index an empty dataset".into()));
        }
        let n = dataset.len();
        let total = self.config.channels as usize;
        let data_channels = total - 1;
        let scaled = params.scaled(self.config.channels);
        scaled.validate()?;
        let bs = Ticks::from(scaled.data_bucket_size());

        // Per-record (channel, slot) placement: allocator-provided or
        // contiguous even striping over the data channels.
        let placement: Vec<(u32, u32)> = match &self.placement {
            Some(p) => {
                if p.len() != n {
                    return Err(BdaError::BadParams(format!(
                        "placement has {} entries for {} records",
                        p.len(),
                        n
                    )));
                }
                p.clone()
            }
            None => {
                let sizes = even_partition(n, data_channels.min(n));
                let mut p = Vec::with_capacity(n);
                for (d, &len) in sizes.iter().enumerate() {
                    for slot in 0..len {
                        p.push((d as u32 + 1, slot as u32));
                    }
                }
                p
            }
        };

        // Validate the placement is a per-channel permutation and build
        // the data channels.
        let mut slots: Vec<Vec<Option<u64>>> = vec![Vec::new(); data_channels];
        for (i, &(ch, slot)) in placement.iter().enumerate() {
            if ch == 0 || ch as usize >= total {
                return Err(BdaError::BadParams(format!(
                    "record {i} placed on channel {ch} outside 1..{total}"
                )));
            }
            let lane = &mut slots[ch as usize - 1];
            let slot = slot as usize;
            if lane.len() <= slot {
                lane.resize(slot + 1, None);
            }
            if lane[slot].is_some() {
                return Err(BdaError::BadParams(format!(
                    "two records placed at channel {ch} slot {slot}"
                )));
            }
            lane[slot] = Some(dataset.record(i).key.0);
        }
        let mut data = Vec::with_capacity(data_channels);
        for (d, lane) in slots.into_iter().enumerate() {
            if lane.is_empty() {
                return Err(BdaError::BadParams(format!(
                    "data channel {} carries no records",
                    d + 1
                )));
            }
            let buckets: Result<Vec<Bucket<GroupPayload>>> = lane
                .into_iter()
                .enumerate()
                .map(|(slot, key)| match key {
                    Some(key) => Ok(Bucket::new(
                        scaled.data_bucket_size(),
                        GroupPayload::Data { key },
                    )),
                    None => Err(BdaError::BadParams(format!(
                        "channel {} slot {slot} left empty by placement",
                        d + 1
                    ))),
                })
                .collect();
            data.push(Channel::new(buckets?)?);
        }

        // Directory buckets: fanout keys each, entries pointing across
        // channels at the records' placed buckets.
        let fanout = scaled.index_entries_per_bucket();
        let dirs = n.div_ceil(fanout);
        let roots = dirs.div_ceil(fanout);
        let cycle0 = (roots + dirs) as Ticks * bs;
        let dir_first = |j: usize| dataset.record(j * fanout).key.0;
        let mut buckets = Vec::with_capacity(roots + dirs);
        for r in 0..roots {
            let blk_lo = r * fanout;
            let blk_hi = ((r + 1) * fanout).min(dirs);
            let entries = (blk_lo..blk_hi)
                .map(|j| (dir_first(j), (roots + j) as Ticks * bs))
                .collect();
            let next_first = (blk_hi < dirs).then(|| dir_first(blk_hi));
            let end = (r + 1) as Ticks * bs;
            buckets.push(Bucket::new(
                scaled.data_bucket_size(),
                GroupPayload::Root {
                    entries,
                    next_first,
                    to_root: cycle0 - end,
                },
            ));
        }
        for j in 0..dirs {
            let lo = j * fanout;
            let hi = ((j + 1) * fanout).min(n);
            let entries = (lo..hi)
                .map(|i| {
                    let (ch, slot) = placement[i];
                    (
                        dataset.record(i).key.0,
                        BucketRef {
                            channel: ch,
                            offset: Ticks::from(slot) * bs,
                        },
                    )
                })
                .collect();
            let next_first = (hi < n).then(|| dataset.record(hi).key.0);
            let end = (roots + j + 1) as Ticks * bs;
            buckets.push(Bucket::new(
                scaled.data_bucket_size(),
                GroupPayload::Dir {
                    entries,
                    next_first,
                    to_root: cycle0 - end,
                },
            ));
        }
        Ok(IndexedGroupSystem {
            index: Channel::new(buckets)?,
            data,
            config: self.config,
            bucket_size: bs,
            num_roots: roots,
        })
    }
}

/// A built indexed channel group.
pub struct IndexedGroupSystem {
    index: Channel<GroupPayload>,
    data: Vec<Channel<GroupPayload>>,
    config: GroupConfig,
    bucket_size: Ticks,
    num_roots: usize,
}

impl IndexedGroupSystem {
    /// The index channel (channel 0).
    pub fn index(&self) -> &Channel<GroupPayload> {
        &self.index
    }

    /// Data channel `d` (group channel `d + 1`).
    pub fn data_channel(&self, d: usize) -> &Channel<GroupPayload> {
        &self.data[d]
    }

    /// Total channels in the group (index included).
    pub fn num_channels(&self) -> usize {
        self.data.len() + 1
    }

    /// The group shape this system was built with.
    pub fn config(&self) -> GroupConfig {
        self.config
    }

    /// Uniform on-air bucket size of every channel, in ticks.
    pub fn bucket_size(&self) -> Ticks {
        self.bucket_size
    }

    /// Number of root buckets at the head of channel 0's cycle.
    pub fn num_roots(&self) -> usize {
        self.num_roots
    }

    /// Where `key`'s record airs, per the directory — `None` for absent
    /// keys. Layout tests pin this against the placement.
    pub fn bucket_ref(&self, key: Key) -> Option<BucketRef> {
        self.index.buckets().iter().find_map(|b| match &b.payload {
            GroupPayload::Dir { entries, .. } => entries
                .binary_search_by_key(&key.0, |e| e.0)
                .ok()
                .map(|i| entries[i].1),
            _ => None,
        })
    }
}

/// What the group walk is about to do.
#[derive(Clone, Copy)]
enum GroupPending {
    /// Tune to channel 0 at (or after) `at` and read the next complete
    /// index bucket.
    Probe { at: Ticks },
    /// Read bucket `idx` of channel `ch` at its occurrence starting
    /// `start`.
    ReadAt { ch: u32, idx: usize, start: Ticks },
    /// Retune to the data channel holding `dref`.
    Switch { dref: BucketRef },
    /// Finished.
    Finished(AccessOutcome),
}

/// The single client protocol of an [`IndexedGroupSystem`], used verbatim
/// by every execution driver (probe, stepping run, slot) — cross-driver
/// bit-identity holds by construction.
///
/// Protocol: probe channel 0, resynchronize to the root block, scan roots
/// forward to the directory bucket covering the key, read it, then either
/// answer not-found from the air or retune (paying
/// [`GroupConfig::switch_cost`]) to the data channel and read the record
/// at its next occurrence — forward-only at every hop. Corrupted reads
/// consult the [`RetryPolicy`] exactly like the single-channel walker:
/// recovery dozes are whole cycles of the *current* channel, outage
/// streaks escalate the back-off, and exhausted budgets abandon
/// truthfully.
pub struct GroupWalk<'a> {
    system: &'a IndexedGroupSystem,
    key: Key,
    tune_in: Ticks,
    base: ChannelModel,
    policy: RetryPolicy,
    now: Ticks,
    pending: GroupPending,
    spans: PhaseSpans,
    tuning: Ticks,
    probes: u32,
    retries: u32,
    streak: u32,
    first_read: bool,
    budget: u32,
}

impl<'a> GroupWalk<'a> {
    /// A walk for `key` tuning in at `tune_in` behind `base` faults
    /// (channel `g`'s view is [`channel_model_for`]`(base, g)`).
    pub fn new(
        system: &'a IndexedGroupSystem,
        key: Key,
        tune_in: Ticks,
        base: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        // Same budget discipline as the single-channel walker: linear in
        // the program size, scaled for loss and outages, so a protocol
        // bug aborts instead of spinning forever.
        let num_buckets = system.index.num_buckets()
            + system.data.iter().map(Channel::num_buckets).sum::<usize>();
        let mut budget = (num_buckets as u32).saturating_mul(4).saturating_add(64);
        let worst = base.worst_loss();
        if worst > 0.0 {
            let factor = (1.0 / (1.0 - worst.min(0.99))).ceil() as u32 + 4;
            budget = budget.saturating_mul(factor);
        }
        if base.has_outages() {
            budget = budget.saturating_mul(4).saturating_add(256);
        }
        GroupWalk {
            system,
            key,
            tune_in,
            base,
            policy,
            now: tune_in,
            pending: GroupPending::Probe { at: tune_in },
            spans: PhaseSpans::new(),
            tuning: 0,
            probes: 0,
            retries: 0,
            streak: 0,
            first_read: true,
            budget,
        }
    }

    /// Whether the walk has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.pending, GroupPending::Finished(_))
    }

    /// The per-phase span decomposition recorded so far (always on — the
    /// group walk's accounting is cheap enough to never switch off).
    pub fn spans(&self) -> &PhaseSpans {
        &self.spans
    }

    fn channel_of(&self, ch: u32) -> &'a Channel<GroupPayload> {
        if ch == 0 {
            &self.system.index
        } else {
            &self.system.data[ch as usize - 1]
        }
    }

    /// Seal the walk's outcome; the next [`QueryRun::step`] reports it.
    fn complete(&mut self, found: bool, abandoned: bool, aborted: bool) {
        let out = AccessOutcome {
            found,
            access: self.now - self.tune_in,
            tuning: self.tuning,
            probes: self.probes,
            false_drops: 0,
            retries: self.retries,
            abandoned,
            aborted,
            stale_restarts: 0,
            version_skews: 0,
        };
        self.pending = GroupPending::Finished(out);
    }

    /// Handle a corrupted read of bucket `idx` on channel `ch` (the
    /// transmission started at `start` and ended at `self.now`): pay the
    /// retry, consult the policy, and either abandon or schedule the
    /// recovery re-read.
    fn recover(&mut self, ch: u32, idx: usize, start: Ticks, probe: bool) {
        self.retries += 1;
        self.streak += 1;
        if self.policy.gives_up(self.retries, self.now - self.tune_in) {
            self.complete(false, true, false);
            return;
        }
        let chan = self.channel_of(ch);
        let in_outage = channel_model_for(self.base, ch).in_outage(start);
        let cycles = self.policy.recovery_cycles(self.streak, in_outage);
        let wake = self
            .now
            .saturating_add(Ticks::from(cycles).saturating_mul(chan.cycle_len()));
        self.pending = if probe {
            GroupPending::Probe { at: wake }
        } else {
            GroupPending::ReadAt {
                ch,
                idx,
                start: chan.occurrence_at_or_after(idx, wake),
            }
        };
    }

    /// Dispatch a cleanly read channel-0 bucket: set the next pending
    /// action (possibly sealing the outcome). `idx` is its index in the
    /// cycle; `end` the absolute read end.
    fn dispatch_index(&mut self, idx: usize, end: Ticks) {
        let key = self.key.0;
        let system = self.system;
        match &system.index.bucket(idx).payload {
            GroupPayload::Root {
                entries,
                next_first,
                to_root,
            } => {
                if let Some(nf) = next_first {
                    if key >= *nf {
                        // Target directory lives under a later root:
                        // roots are contiguous, keep listening.
                        self.pending = GroupPending::ReadAt {
                            ch: 0,
                            idx: idx + 1,
                            start: end,
                        };
                        return;
                    }
                }
                if idx > 0 && entries.first().is_some_and(|e| key < e.0) {
                    // Landed mid-root-block on a root that starts above
                    // the key: resynchronize to the next root block.
                    self.pending = GroupPending::Probe {
                        at: end.saturating_add(*to_root),
                    };
                    return;
                }
                // Last entry with first-key ≤ key covers the target
                // (everything below the very first entry falls into
                // directory bucket 0 and is answered absent there).
                let pos = entries.partition_point(|e| e.0 <= key).saturating_sub(1);
                let dir_off = entries[pos].1;
                let dir_idx = (dir_off / self.system.bucket_size) as usize;
                self.pending = GroupPending::ReadAt {
                    ch: 0,
                    idx: dir_idx,
                    start: self.system.index.occurrence_at_or_after(dir_idx, end),
                };
            }
            GroupPayload::Dir {
                entries,
                next_first,
                to_root,
            } => {
                let covers = (entries.first().is_some_and(|e| e.0 <= key)
                    && next_first.map_or(true, |nf| key < nf))
                    || (idx == self.system.num_roots && key < entries[0].0);
                if !covers {
                    // A directory bucket we were not steered to (initial
                    // probe landed here): resynchronize to the roots.
                    self.pending = GroupPending::Probe {
                        at: end.saturating_add(*to_root),
                    };
                    return;
                }
                match entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        self.pending = GroupPending::Switch { dref: entries[i].1 };
                    }
                    // Provably absent: the covering directory bucket does
                    // not list the key.
                    Err(_) => self.complete(false, false, false),
                }
            }
            GroupPayload::Data { .. } => self.complete(false, false, true),
        }
    }
}

impl QueryRun for GroupWalk<'_> {
    fn step(&mut self) -> WalkStep {
        loop {
            match self.pending {
                GroupPending::Finished(out) => return WalkStep::Done(out),
                GroupPending::Probe { at } => {
                    if at > self.now {
                        self.spans.add(Phase::Doze, at - self.now, 0);
                        self.now = at;
                        return WalkStep::Doze { until: at };
                    }
                    if self.probes.saturating_add(self.retries) >= self.budget {
                        self.complete(false, false, true);
                        continue;
                    }
                    let (idx, start) = self.system.index.first_complete_at(self.now);
                    let end = start.saturating_add(self.system.bucket_size);
                    let from = self.now;
                    let listened = end - from;
                    self.tuning += listened;
                    self.now = end;
                    if channel_model_for(self.base, 0).corrupted(start) {
                        self.spans.add(Phase::Retry, listened, listened);
                        self.recover(0, idx, start, true);
                    } else {
                        self.streak = 0;
                        self.probes += 1;
                        let phase = if self.first_read {
                            Phase::InitialProbe
                        } else {
                            Phase::IndexTraversal
                        };
                        self.first_read = false;
                        self.spans.add(phase, listened, listened);
                        self.dispatch_index(idx, end);
                    }
                    return WalkStep::Read {
                        bucket: idx,
                        from,
                        until: end,
                    };
                }
                GroupPending::ReadAt { ch, idx, start } => {
                    if start > self.now {
                        self.spans.add(Phase::Doze, start - self.now, 0);
                        self.now = start;
                        return WalkStep::Doze { until: start };
                    }
                    if self.probes.saturating_add(self.retries) >= self.budget {
                        self.complete(false, false, true);
                        continue;
                    }
                    let chan = self.channel_of(ch);
                    let end = start.saturating_add(self.system.bucket_size);
                    let from = self.now;
                    let listened = end - from;
                    self.tuning += listened;
                    self.now = end;
                    self.first_read = false;
                    if channel_model_for(self.base, ch).corrupted(start) {
                        self.spans.add(Phase::Retry, listened, listened);
                        self.recover(ch, idx, start, false);
                    } else {
                        self.streak = 0;
                        self.probes += 1;
                        if ch == 0 {
                            self.spans.add(Phase::IndexTraversal, listened, listened);
                            self.dispatch_index(idx, end);
                        } else {
                            self.spans.add(Phase::DataRead, listened, listened);
                            match &chan.bucket(idx).payload {
                                GroupPayload::Data { key } if *key == self.key.0 => {
                                    self.complete(true, false, false);
                                }
                                // The directory pointed at a bucket that
                                // does not carry the key: a layout bug,
                                // reported as an abort, never a silent
                                // wrong answer.
                                _ => self.complete(false, false, true),
                            }
                        }
                    }
                    return WalkStep::Read {
                        bucket: idx,
                        from,
                        until: end,
                    };
                }
                GroupPending::Switch { dref } => {
                    let sw = self.system.config.switch_cost;
                    let chan = self.channel_of(dref.channel);
                    let idx = (dref.offset / self.system.bucket_size) as usize;
                    let arrive = self.now.saturating_add(sw);
                    self.pending = GroupPending::ReadAt {
                        ch: dref.channel,
                        idx,
                        start: chan.occurrence_at_or_after(idx, arrive),
                    };
                    if sw > 0 {
                        self.spans.add(Phase::ChannelSwitch, sw, 0);
                        self.now = arrive;
                        return WalkStep::Doze { until: arrive };
                    }
                }
            }
        }
    }

    fn now(&self) -> Ticks {
        self.now
    }
}

/// The reusable [`QuerySlot`] of an indexed group: one [`GroupWalk`] per
/// query, re-armed in place. `observed` controls whether
/// [`QuerySlot::spans`] exposes the walk's (always recorded) spans.
pub struct GroupSlot<'a> {
    system: &'a IndexedGroupSystem,
    walk: Option<GroupWalk<'a>>,
    base: ChannelModel,
    policy: RetryPolicy,
    observed: bool,
}

impl<'a> GroupSlot<'a> {
    /// An empty slot; arm with [`QuerySlot::start`].
    pub fn new(
        system: &'a IndexedGroupSystem,
        base: ChannelModel,
        policy: RetryPolicy,
        observed: bool,
    ) -> Self {
        GroupSlot {
            system,
            walk: None,
            base,
            policy,
            observed,
        }
    }
}

impl QuerySlot for GroupSlot<'_> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        self.walk = Some(GroupWalk::new(
            self.system,
            key,
            tune_in,
            self.base,
            self.policy,
        ));
    }

    fn step(&mut self) -> WalkStep {
        self.walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step()
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, GroupWalk::is_done)
    }

    fn spans(&self) -> Option<&PhaseSpans> {
        if self.observed {
            self.walk.as_ref().map(GroupWalk::spans)
        } else {
            None
        }
    }

    // Fast-forward stays a no-op: the group walk's step count is already
    // O(directory depth), not O(cycle length).
}

fn drain_walk(mut walk: GroupWalk<'_>) -> (AccessOutcome, PhaseSpans) {
    loop {
        if let WalkStep::Done(out) = walk.step() {
            return (out, *walk.spans());
        }
    }
}

impl DynSystem for IndexedGroupSystem {
    fn scheme_name(&self) -> &'static str {
        "indexed-group"
    }

    fn cycle_len(&self) -> Ticks {
        self.data
            .iter()
            .map(Channel::cycle_len)
            .chain([self.index.cycle_len()])
            .max()
            .unwrap_or(0)
    }

    fn num_buckets(&self) -> usize {
        self.index.num_buckets() + self.data.iter().map(Channel::num_buckets).sum::<usize>()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        self.probe_with_channel(key, tune_in, ChannelModel::NONE, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        self.probe_with_channel(key, tune_in, errors.into(), RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        self.probe_with_channel(key, tune_in, errors.into(), policy)
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        self.begin_with_channel(key, tune_in, ChannelModel::NONE, RetryPolicy::UNBOUNDED)
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        self.begin_with_channel(key, tune_in, errors.into(), policy)
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        self.make_slot_channel(ChannelModel::NONE, RetryPolicy::UNBOUNDED)
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        self.make_slot_channel(errors.into(), policy)
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        self.probe_recorded_channel(key, tune_in, errors.into(), policy)
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        self.make_slot_channel_observed(errors.into(), policy)
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        drain_walk(GroupWalk::new(self, key, tune_in, channel, policy)).0
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        drain_walk(GroupWalk::new(self, key, tune_in, channel, policy))
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(GroupWalk::new(self, key, tune_in, channel, policy))
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(GroupSlot::new(self, channel, policy, false))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(GroupSlot::new(self, channel, policy, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatScheme;
    use crate::record::Record;
    use crate::scheme::drain;

    fn dataset(n: usize) -> Dataset {
        Dataset::new((0..n).map(|i| Record::keyed(i as u64 * 10)).collect()).unwrap()
    }

    #[test]
    fn even_partition_covers_everything() {
        for n in [1usize, 5, 8, 64, 100] {
            for k in [1usize, 2, 3, 4, 8] {
                if k > n {
                    continue;
                }
                let sizes = even_partition(n, k);
                assert_eq!(sizes.len(), k);
                assert_eq!(sizes.iter().sum::<usize>(), n);
                assert!(sizes.iter().all(|&s| s > 0));
                assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
            }
        }
    }

    #[test]
    fn remix_identity_on_home_channel_and_decorrelated_elsewhere() {
        assert_eq!(remix_seed(42, 0), 42);
        assert_ne!(remix_seed(42, 1), 42);
        assert_ne!(remix_seed(42, 1), remix_seed(42, 2));
        let base = ChannelModel::iid(ErrorModel::new(0.2, 7));
        assert_eq!(channel_model_for(base, 0), base);
        let derived = channel_model_for(base, 3);
        assert_eq!(derived.worst_loss(), base.worst_loss());
        assert_ne!(derived, base);
    }

    #[test]
    fn k1_striped_flat_probe_is_bit_identical() {
        let ds = dataset(16);
        let params = Params::paper();
        let single = FlatScheme.build(&ds, &params).unwrap();
        let striped = StripedScheme::new(FlatScheme, GroupConfig::SINGLE)
            .build(&ds, &params)
            .unwrap();
        for i in 0..16u64 {
            for t in [0u64, 100, 5_000, 123_456] {
                let key = Key(i * 10);
                assert_eq!(
                    DynSystem::probe(&single, key, t),
                    DynSystem::probe(&striped, key, t)
                );
            }
        }
        assert_eq!(
            DynSystem::cycle_len(&single),
            DynSystem::cycle_len(&striped)
        );
        assert_eq!(
            DynSystem::num_buckets(&single),
            DynSystem::num_buckets(&striped)
        );
    }

    #[test]
    fn striped_routing_and_switch_cost_are_exact() {
        let ds = dataset(16);
        let params = Params::paper();
        let cfg = GroupConfig::new(4, 1_000).unwrap();
        let sys = StripedScheme::new(FlatScheme, cfg)
            .build(&ds, &params)
            .unwrap();
        assert_eq!(sys.num_channels(), 4);
        // Slices of 4 records each: keys 0..30 on ch0, 40..70 on ch1, ...
        assert_eq!(sys.route(Key(0)), 0);
        assert_eq!(sys.route(Key(35)), 0, "absent key clamps to covering slice");
        assert_eq!(sys.route(Key(40)), 1);
        assert_eq!(sys.route(Key(150)), 3);
        assert_eq!(sys.route(Key(9_999)), 3);
        // A channel-0 query pays no switch; any other pays exactly 1000
        // more than the same walk started 1000 ticks later would alone.
        let home = sys.probe(Key(0), 0);
        assert_eq!(home.access, {
            let inner = sys.channel_system(0);
            run_machine(inner.channel(), inner.query(Key(0)), 0).access
        });
        let away = sys.probe(Key(40), 0);
        let inner = sys.channel_system(1);
        let raw = run_machine(inner.channel(), inner.query(Key(40)), 1_000);
        assert_eq!(away.access, raw.access + 1_000);
        assert_eq!(away.tuning, raw.tuning, "retuning radio is not listening");
    }

    #[test]
    fn striped_drivers_agree() {
        let ds = dataset(32);
        let params = Params::paper();
        let cfg = GroupConfig::new(4, 256).unwrap();
        let sys = StripedScheme::new(FlatScheme, cfg)
            .build(&ds, &params)
            .unwrap();
        let errors = ErrorModel::new(0.2, 11);
        let policy = RetryPolicy::bounded(4);
        let mut slot = sys.make_slot_with_faults(errors, policy);
        let mut obs = sys.make_slot_observed(errors, policy);
        for i in [0u64, 5, 13, 31] {
            for t in [0u64, 777, 44_000] {
                let key = Key(i * 10);
                let fast = sys.probe_with_policy(key, t, errors, policy);
                let mut run = sys.begin_with_faults(key, t, errors, policy);
                assert_eq!(drain(run.as_mut()), fast);
                slot.start(key, t);
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert_eq!(stepped, fast);
                obs.start(key, t);
                let observed = loop {
                    if let WalkStep::Done(out) = obs.step() {
                        break out;
                    }
                };
                assert_eq!(observed, fast);
                let spans = obs.spans().unwrap();
                assert_eq!(spans.total_access(), fast.access);
                assert_eq!(spans.total_tuning(), fast.tuning);
            }
        }
    }

    #[test]
    fn indexed_group_finds_every_record_and_rejects_absent_keys() {
        let ds = dataset(64);
        let params = Params::paper();
        let cfg = GroupConfig::new(4, 512).unwrap();
        let sys = IndexedGroupScheme::new(cfg)
            .unwrap()
            .build(&ds, &params)
            .unwrap();
        assert_eq!(sys.num_channels(), 4);
        for i in 0..64u64 {
            for t in [0u64, 1_234, 98_765] {
                let out = sys.probe(Key(i * 10), t);
                assert!(out.found, "key {} at t={t} not found", i * 10);
                assert!(!out.aborted);
                assert!(out.tuning <= out.access);
            }
        }
        for absent in [5u64, 315, 999, 100_000] {
            let out = sys.probe(Key(absent), 0);
            assert!(!out.found);
            assert!(!out.aborted, "absent key must be answered, not aborted");
        }
    }

    #[test]
    fn indexed_group_spans_are_exact_and_attribute_switches() {
        let ds = dataset(64);
        let cfg = GroupConfig::new(4, 512).unwrap();
        let sys = IndexedGroupScheme::new(cfg)
            .unwrap()
            .build(&ds, &Params::paper())
            .unwrap();
        let (out, spans) =
            sys.probe_recorded_channel(Key(400), 7, ChannelModel::NONE, RetryPolicy::UNBOUNDED);
        assert!(out.found);
        assert_eq!(spans.total_access(), out.access);
        assert_eq!(spans.total_tuning(), out.tuning);
        let sw = spans.get(Phase::ChannelSwitch);
        assert_eq!(sw.access, 512, "exactly one retune on a lossless walk");
        assert_eq!(sw.tuning, 0);
    }

    #[test]
    fn indexed_group_drivers_agree_under_loss() {
        let ds = dataset(48);
        let cfg = GroupConfig::new(3, 200).unwrap();
        let sys = IndexedGroupScheme::new(cfg)
            .unwrap()
            .build(&ds, &Params::paper())
            .unwrap();
        let model = ChannelModel::iid(ErrorModel::new(0.15, 0xFA57));
        let policy = RetryPolicy::bounded(6);
        let mut slot = sys.make_slot_channel(model, policy);
        for i in [0u64, 7, 23, 47] {
            for t in [0u64, 31_337] {
                let key = Key(i * 10);
                let fast = sys.probe_with_channel(key, t, model, policy);
                let mut run = sys.begin_with_channel(key, t, model, policy);
                assert_eq!(drain(run.as_mut()), fast);
                slot.start(key, t);
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert_eq!(stepped, fast);
            }
        }
    }

    #[test]
    fn bucket_refs_point_at_the_placed_records() {
        let ds = dataset(40);
        let cfg = GroupConfig::new(5, 0).unwrap();
        let sys = IndexedGroupScheme::new(cfg)
            .unwrap()
            .build(&ds, &Params::paper())
            .unwrap();
        for i in 0..40usize {
            let r = sys.bucket_ref(Key(i as u64 * 10)).unwrap();
            assert!(r.channel >= 1 && r.channel <= 4);
            let idx = (r.offset / sys.bucket_size()) as usize;
            match &sys.data_channel(r.channel as usize - 1).bucket(idx).payload {
                GroupPayload::Data { key } => assert_eq!(*key, i as u64 * 10),
                p => panic!("ref points at non-data payload {p:?}"),
            }
        }
        assert_eq!(sys.bucket_ref(Key(5)), None);
    }
}
