//! Broadcast parameters shared by every access method.

use crate::error::{BdaError, Result};

/// Physical sizing of records, keys and bucket framing, in bytes.
///
/// These are the knobs of Table 1 of the paper plus the low-level framing
/// constants every scheme needs to lay buckets out:
///
/// * `record_size` — payload bytes of one data record (paper: 500),
/// * `key_size` — bytes of a primary key (paper: 25),
/// * `ptr_size` — bytes of one offset pointer stored inside a bucket,
/// * `header_size` — fixed per-bucket framing overhead (type tag, bucket id,
///   "offset to next index segment" slot, …).
///
/// The paper's *record/key ratio* experiment (Fig. 6) sweeps
/// `record_size / key_size`; use [`Params::with_record_key_ratio`] to build
/// the corresponding configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Payload bytes of one data record.
    pub record_size: u32,
    /// Bytes of one primary key.
    pub key_size: u32,
    /// Bytes of one offset pointer stored in a bucket.
    pub ptr_size: u32,
    /// Fixed framing bytes at the start of every bucket.
    pub header_size: u32,
}

impl Params {
    /// The configuration of Table 1 of the paper: 500-byte records,
    /// 25-byte keys, and modest framing overhead.
    pub const fn paper() -> Self {
        Params {
            record_size: 500,
            key_size: 25,
            ptr_size: 4,
            header_size: 8,
        }
    }

    /// Build a configuration with the given *record/key ratio* while keeping
    /// the record size at the paper's 500 bytes (Fig. 6 sweeps the ratio from
    /// 5 to 100, i.e. key sizes from 100 down to 5 bytes).
    pub fn with_record_key_ratio(ratio: u32) -> Result<Self> {
        if ratio == 0 {
            return Err(BdaError::BadParams(
                "record/key ratio must be positive".into(),
            ));
        }
        let record_size = 500;
        let key_size = (record_size / ratio).max(1);
        let p = Params {
            record_size,
            key_size,
            ..Params::paper()
        };
        p.validate()?;
        Ok(p)
    }

    /// Size in bytes of one **data bucket**: framing header, the record's
    /// primary key, and the record payload.
    ///
    /// All schemes in the paper broadcast exactly one record per data bucket,
    /// and B+-tree based schemes use the same size for index buckets so that
    /// the channel is a uniform sequence (the `Dt` of §2).
    pub fn data_bucket_size(&self) -> u32 {
        self.header_size + self.key_size + self.record_size
    }

    /// The record/key ratio of this configuration, rounded down.
    pub fn record_key_ratio(&self) -> u32 {
        self.record_size / self.key_size.max(1)
    }

    /// Number of `(key, pointer)` index entries that fit in one bucket of
    /// [`Params::data_bucket_size`] bytes — the `n` of the paper's B+-tree
    /// analysis ("number of indices contained in an index bucket").
    ///
    /// B+-tree schemes clamp this to at least 2 so a tree can always be
    /// built.
    pub fn index_entries_per_bucket(&self) -> usize {
        let budget = self.data_bucket_size().saturating_sub(self.header_size);
        let per_entry = self.key_size + self.ptr_size;
        ((budget / per_entry.max(1)) as usize).max(2)
    }

    /// Dilate every sizing field by `k`, modelling a channel whose raw bit
    /// rate is `1/k` of the baseline.
    ///
    /// Splitting one broadcast channel into `k` parallel channels of equal
    /// aggregate bandwidth slows each channel down by `k×`: every byte now
    /// takes `k` ticks of the shared group clock to air. Rather than thread
    /// a tick-per-byte ratio through every scheme, the multichannel layer
    /// scales the *byte sizes* themselves — `scaled(k).data_bucket_size()`
    /// is exactly `k * data_bucket_size()`, and the index fanout
    /// ([`Params::index_entries_per_bucket`]) is unchanged because every
    /// term of its ratio scales together. `scaled(1)` is the identity.
    pub fn scaled(&self, k: u32) -> Self {
        Params {
            record_size: self.record_size * k,
            key_size: self.key_size * k,
            ptr_size: self.ptr_size * k,
            header_size: self.header_size * k,
        }
    }

    /// Validate that the configuration can frame at least one record and one
    /// index entry per bucket.
    pub fn validate(&self) -> Result<()> {
        if self.record_size == 0 {
            return Err(BdaError::BadParams("record_size must be positive".into()));
        }
        if self.key_size == 0 {
            return Err(BdaError::BadParams("key_size must be positive".into()));
        }
        if self.ptr_size == 0 {
            return Err(BdaError::BadParams("ptr_size must be positive".into()));
        }
        if self.key_size > self.record_size {
            return Err(BdaError::BadParams(format!(
                "key_size ({}) larger than record_size ({})",
                self.key_size, self.record_size
            )));
        }
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let p = Params::paper();
        assert_eq!(p.record_size, 500);
        assert_eq!(p.key_size, 25);
        assert_eq!(p.record_key_ratio(), 20);
        assert_eq!(p.data_bucket_size(), 8 + 25 + 500);
        p.validate().unwrap();
    }

    #[test]
    fn ratio_constructor_covers_fig6_range() {
        for ratio in [5u32, 10, 20, 50, 100] {
            let p = Params::with_record_key_ratio(ratio).unwrap();
            assert_eq!(p.record_size, 500);
            // The achieved ratio matches the requested one exactly for
            // divisors of 500 (all Fig. 6 sweep points are).
            assert_eq!(p.record_key_ratio(), ratio);
        }
    }

    #[test]
    fn ratio_zero_rejected() {
        assert!(Params::with_record_key_ratio(0).is_err());
    }

    #[test]
    fn index_fanout_grows_with_ratio() {
        let small = Params::with_record_key_ratio(5).unwrap();
        let large = Params::with_record_key_ratio(100).unwrap();
        assert!(large.index_entries_per_bucket() > small.index_entries_per_bucket());
        assert!(small.index_entries_per_bucket() >= 2);
    }

    #[test]
    fn scaled_dilates_exactly_and_preserves_fanout() {
        let p = Params::paper();
        assert_eq!(p.scaled(1), p);
        for k in [2u32, 4, 8] {
            let s = p.scaled(k);
            assert_eq!(s.data_bucket_size(), k * p.data_bucket_size());
            assert_eq!(
                s.index_entries_per_bucket(),
                p.index_entries_per_bucket(),
                "fanout is a ratio of sizes and must be scale-invariant"
            );
            s.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut p = Params::paper();
        p.record_size = 0;
        assert!(p.validate().is_err());

        let mut p = Params::paper();
        p.key_size = 0;
        assert!(p.validate().is_err());

        let mut p = Params::paper();
        p.key_size = 1000;
        assert!(p.validate().is_err());

        let mut p = Params::paper();
        p.ptr_size = 0;
        assert!(p.validate().is_err());
    }
}
