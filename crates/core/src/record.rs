//! Broadcast records and datasets.

use crate::error::{BdaError, Result};
use crate::key::Key;

/// One broadcast data item.
///
/// Mirrors the paper's `Record` testbed object: "each record has a primary
/// key and a few attributes" (§3). The attributes are opaque 64-bit values;
/// signature indexing superimposes a hash of *every* attribute (including
/// the key, which is attribute 0 by convention of `bda-datagen`) into the
/// record signature, so the attribute list is what determines false-drop
/// behaviour.
///
/// The 500-byte record *payload* of Table 1 is not materialised — only its
/// size matters to the byte-time model, and that comes from
/// [`crate::Params::record_size`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Primary key; unique within a [`Dataset`].
    pub key: Key,
    /// Attribute values (signature indexing hashes each of these).
    pub attrs: Box<[u64]>,
}

impl Record {
    /// Build a record from a key and attribute values.
    pub fn new(key: Key, attrs: impl Into<Box<[u64]>>) -> Self {
        Record {
            key,
            attrs: attrs.into(),
        }
    }

    /// Build a record whose only attribute is its key — the minimal shape
    /// used by unit tests.
    pub fn keyed(key: u64) -> Self {
        Record::new(Key(key), vec![key])
    }
}

/// An immutable, key-sorted collection of records — the information the
/// server broadcasts.
///
/// Construction validates the two invariants every access protocol relies
/// on: records are strictly sorted by key, and keys are unique. Index
/// construction, hashing layout and the analytical models all assume both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    records: Vec<Record>,
}

impl Dataset {
    /// Validate and wrap a record collection. Records must already be
    /// strictly sorted by key; duplicates are rejected.
    pub fn new(records: Vec<Record>) -> Result<Self> {
        if records.is_empty() {
            return Err(BdaError::EmptyDataset);
        }
        for i in 1..records.len() {
            if records[i].key < records[i - 1].key {
                return Err(BdaError::UnsortedDataset { index: i });
            }
            if records[i].key == records[i - 1].key {
                return Err(BdaError::DuplicateKey {
                    key: records[i].key.value(),
                });
            }
        }
        Ok(Dataset { records })
    }

    /// Sort the given records by key, then validate uniqueness.
    pub fn from_unsorted(mut records: Vec<Record>) -> Result<Self> {
        records.sort_by_key(|r| r.key);
        Dataset::new(records)
    }

    /// Number of records (`Nr` in the paper's notation).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// A dataset is never empty (enforced at construction); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in key order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Record at position `i` in key order.
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }

    /// Position of `key` in key order, if present.
    pub fn find(&self, key: Key) -> Option<usize> {
        self.records.binary_search_by_key(&key, |r| r.key).ok()
    }

    /// Whether `key` is broadcast at all — drives the paper's *data
    /// availability* experiments (Fig. 5).
    pub fn contains(&self, key: Key) -> bool {
        self.find(key).is_some()
    }

    /// Smallest broadcast key.
    pub fn min_key(&self) -> Key {
        self.records.first().expect("dataset is non-empty").key
    }

    /// Largest broadcast key.
    pub fn max_key(&self) -> Key {
        self.records.last().expect("dataset is non-empty").key
    }

    /// Iterator over keys in broadcast (key) order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.records.iter().map(|r| r.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(keys: &[u64]) -> Result<Dataset> {
        Dataset::new(keys.iter().map(|&k| Record::keyed(k)).collect())
    }

    #[test]
    fn construction_validates_invariants() {
        assert_eq!(Dataset::new(vec![]), Err(BdaError::EmptyDataset));
        assert_eq!(ds(&[3, 1]), Err(BdaError::UnsortedDataset { index: 1 }));
        assert_eq!(ds(&[1, 1]), Err(BdaError::DuplicateKey { key: 1 }));
        assert!(ds(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn from_unsorted_sorts_first() {
        let d = Dataset::from_unsorted(vec![Record::keyed(5), Record::keyed(1), Record::keyed(3)])
            .unwrap();
        let keys: Vec<u64> = d.keys().map(Key::value).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn lookup_and_bounds() {
        let d = ds(&[10, 20, 30]).unwrap();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.find(Key(20)), Some(1));
        assert_eq!(d.find(Key(25)), None);
        assert!(d.contains(Key(10)));
        assert!(!d.contains(Key(11)));
        assert_eq!(d.min_key(), Key(10));
        assert_eq!(d.max_key(), Key(30));
        assert_eq!(d.record(2).key, Key(30));
    }

    #[test]
    fn record_constructors() {
        let r = Record::new(Key(7), vec![7, 8, 9]);
        assert_eq!(r.attrs.len(), 3);
        let r = Record::keyed(4);
        assert_eq!(r.key, Key(4));
        assert_eq!(&*r.attrs, &[4]);
    }
}
