//! Scheme and system traits — the uniform surface every access method
//! exposes to the testbed and benchmark harness.

use crate::channel::Channel;
use crate::error::Result;
use crate::errors_model::{ChannelModel, ErrorModel, RetryPolicy};
use crate::key::Key;
use crate::machine::{
    run_machine, run_machine_observed, run_machine_observed_channel, run_machine_with_channel,
    run_machine_with_policy, AccessOutcome, ProtocolMachine, Walk, WalkStep,
};
use crate::params::Params;
use crate::record::Dataset;
use crate::Ticks;
use bda_obs::{PhaseSpans, Recorder, SpanRecorder};

/// A broadcast access method: given a dataset and sizing parameters, lay
/// out a broadcast cycle.
///
/// This corresponds to the paper's testbed step "depending on which
/// indexing scheme is selected, the `BroadcastServer` creates the
/// corresponding `Channel` object" (§3). The returned [`System`] bundles
/// the laid-out channel with everything needed to spawn client protocol
/// machines.
pub trait Scheme {
    /// The built broadcast system this scheme produces.
    type System: System;

    /// Lay out the broadcast cycle for `dataset` under `params`.
    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System>;

    /// Lay out a broadcast cycle for `dataset` stamped with program
    /// `version` — the rebuild path a dynamic broadcast server takes at
    /// every cycle boundary where updates were applied. Identical to
    /// [`Scheme::build`] except that the channel and every bucket header
    /// carry `version` instead of 0.
    fn rebuild(&self, dataset: &Dataset, params: &Params, version: u64) -> Result<Self::System> {
        let mut sys = self.build(dataset, params)?;
        sys.channel_mut().set_version(version);
        Ok(sys)
    }
}

/// A fully built broadcast system: a channel plus the ability to start
/// client queries against it.
pub trait System: Send + Sync {
    /// Scheme-specific bucket payload type.
    type Payload: Send + Sync;
    /// The client protocol machine type for this scheme.
    type Machine: ProtocolMachine<Self::Payload> + Send;

    /// Human-readable scheme name ("flat", "(1,m)", "distributed",
    /// "hashing", "signature", …).
    fn scheme_name(&self) -> &'static str;

    /// The broadcast cycle.
    fn channel(&self) -> &Channel<Self::Payload>;

    /// Mutable access to the broadcast cycle, so a dynamic server can stamp
    /// a freshly rebuilt program with its cycle version (see
    /// [`Scheme::rebuild`]).
    fn channel_mut(&mut self) -> &mut Channel<Self::Payload>;

    /// Create a protocol machine that searches for `key`.
    fn query(&self, key: Key) -> Self::Machine;
}

/// A stepping client query with type-erased internals, used by the
/// discrete-event testbed to interleave many concurrent clients.
///
/// Each [`QueryRun::step`] performs exactly one protocol action (one bucket
/// read, one doze, or completion), so the event engine can schedule the
/// client's next wake-up faithfully.
pub trait QueryRun {
    /// Perform the next protocol action.
    fn step(&mut self) -> WalkStep;

    /// Absolute time the client has reached so far.
    fn now(&self) -> Ticks;
}

impl<T: QueryRun + ?Sized> QueryRun for Box<T> {
    fn step(&mut self) -> WalkStep {
        (**self).step()
    }

    fn now(&self) -> Ticks {
        (**self).now()
    }
}

impl<P, M: ProtocolMachine<P>, R: Recorder> QueryRun for Walk<'_, P, M, R> {
    fn step(&mut self) -> WalkStep {
        Walk::step(self)
    }

    fn now(&self) -> Ticks {
        Walk::now(self)
    }
}

/// A **reusable** stepping-query slot: the allocation-free counterpart of
/// [`DynSystem::begin`].
///
/// [`DynSystem::begin`] boxes a fresh walker per request, which caps how
/// many concurrent clients a simulation can sustain. A `QuerySlot` is
/// allocated once (per *concurrent client slot*, not per request) and then
/// re-armed with [`QuerySlot::start`] for each new query, so a steady-state
/// simulation with a bounded client population performs no per-request heap
/// allocation at all. The discrete-event engine in `bda-sim` keeps a slab
/// of these.
///
/// `Send` is a supertrait so a slab of slots can be owned by a worker
/// thread: the sharded engine partitions clients across cores, and each
/// shard's arena (slots included) lives on that shard's thread. Every
/// slot implementation is plain data plus `&`-references into a
/// [`System`] (which is `Sync`), so the bound is free.
pub trait QuerySlot: Send {
    /// (Re)arm the slot for a new query on `key` tuning in at `tune_in`.
    /// Any previous query's state is discarded; internal storage is reused.
    fn start(&mut self, key: Key, tune_in: Ticks);

    /// Perform the next protocol action of the current query.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never started.
    fn step(&mut self) -> WalkStep;

    /// Absolute time the current query has reached.
    fn now(&self) -> Ticks;

    /// Whether the current query has completed (also true before the first
    /// [`QuerySlot::start`]).
    fn is_done(&self) -> bool;

    /// The current query's per-phase span decomposition, when this slot
    /// records one (see [`DynSystem::make_slot_observed`]). The default —
    /// and every uninstrumented slot — returns `None`.
    fn spans(&self) -> Option<&PhaseSpans> {
        None
    }

    /// Ask the slot's subsequent queries to use analytical fast-forward
    /// (see [`Walk::set_fast_forward`]): bit-identical outcomes and
    /// accounting, O(1) walk steps per interesting bucket. The default is
    /// a no-op — slots that cannot fast-forward (e.g. walks over a
    /// *dynamic* broadcast program, whose cycle may change under the
    /// scan) simply keep stepping bucket by bucket.
    fn set_fast_forward(&mut self, enabled: bool) {
        let _ = enabled;
    }
}

/// The canonical [`QuerySlot`] for any [`System`]: an in-place
/// [`Walk`], rebuilt (not reallocated) on every [`QuerySlot::start`].
pub struct WalkSlot<'a, S: System> {
    system: &'a S,
    walk: Option<Walk<'a, S::Payload, S::Machine>>,
    channel: ChannelModel,
    policy: RetryPolicy,
    ff: bool,
}

impl<'a, S: System> WalkSlot<'a, S> {
    /// An empty slot for `system` over a lossless channel; call
    /// [`QuerySlot::start`] to arm it.
    pub fn new(system: &'a S) -> Self {
        WalkSlot::with_faults(system, ErrorModel::NONE, RetryPolicy::UNBOUNDED)
    }

    /// An empty slot whose queries all run over the given error-prone
    /// channel with the given client retry policy — the fault-injection
    /// counterpart of [`WalkSlot::new`] used by the event engine.
    pub fn with_faults(system: &'a S, errors: ErrorModel, policy: RetryPolicy) -> Self {
        WalkSlot::with_channel(system, errors.into(), policy)
    }

    /// An empty slot whose queries run behind a unified [`ChannelModel`]
    /// (burst loss, outages, or both).
    pub fn with_channel(system: &'a S, channel: ChannelModel, policy: RetryPolicy) -> Self {
        WalkSlot {
            system,
            walk: None,
            channel,
            policy,
            ff: false,
        }
    }
}

impl<S: System> QuerySlot for WalkSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        let mut walk = Walk::with_channel(
            self.system.channel(),
            self.system.query(key),
            tune_in,
            self.channel,
            self.policy,
        );
        walk.set_fast_forward(self.ff);
        self.walk = Some(walk);
    }

    fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
        if let Some(walk) = self.walk.as_mut() {
            walk.set_fast_forward(enabled);
        }
    }

    fn step(&mut self) -> WalkStep {
        self.walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step()
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, Walk::is_done)
    }
}

/// The instrumented counterpart of [`WalkSlot`]: each query runs with a
/// [`SpanRecorder`], and the accumulated per-phase spans are exposed via
/// [`QuerySlot::spans`] until the next [`QuerySlot::start`].
pub struct ObservedWalkSlot<'a, S: System> {
    system: &'a S,
    walk: Option<Walk<'a, S::Payload, S::Machine, SpanRecorder>>,
    channel: ChannelModel,
    policy: RetryPolicy,
    ff: bool,
}

impl<'a, S: System> ObservedWalkSlot<'a, S> {
    /// An empty instrumented slot; call [`QuerySlot::start`] to arm it.
    pub fn with_faults(system: &'a S, errors: ErrorModel, policy: RetryPolicy) -> Self {
        ObservedWalkSlot::with_channel(system, errors.into(), policy)
    }

    /// An empty instrumented slot behind a unified [`ChannelModel`].
    pub fn with_channel(system: &'a S, channel: ChannelModel, policy: RetryPolicy) -> Self {
        ObservedWalkSlot {
            system,
            walk: None,
            channel,
            policy,
            ff: false,
        }
    }
}

impl<S: System> QuerySlot for ObservedWalkSlot<'_, S> {
    fn start(&mut self, key: Key, tune_in: Ticks) {
        let mut walk = Walk::with_channel_recorder(
            self.system.channel(),
            self.system.query(key),
            tune_in,
            self.channel,
            self.policy,
            SpanRecorder::new(),
        );
        walk.set_fast_forward(self.ff);
        self.walk = Some(walk);
    }

    fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
        if let Some(walk) = self.walk.as_mut() {
            walk.set_fast_forward(enabled);
        }
    }

    fn step(&mut self) -> WalkStep {
        self.walk
            .as_mut()
            .expect("QuerySlot::step before start")
            .step()
    }

    fn now(&self) -> Ticks {
        self.walk
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.walk.as_ref().map_or(true, Walk::is_done)
    }

    fn spans(&self) -> Option<&PhaseSpans> {
        self.walk.as_ref().map(|w| &w.recorder().spans)
    }
}

/// Object-safe view of a [`System`], so the testbed and harness can treat
/// heterogeneous schemes uniformly (`Box<dyn DynSystem>`).
///
/// Every [`System`] implements this automatically (blanket impl), so
/// `probe`/`begin` are available on concrete systems too — import this
/// trait to use them. Keeping `probe` on exactly one trait avoids method
/// ambiguity when both traits are in scope.
pub trait DynSystem: Send + Sync {
    /// Human-readable scheme name.
    fn scheme_name(&self) -> &'static str;

    /// Broadcast cycle length in bytes (`Bt`).
    fn cycle_len(&self) -> Ticks;

    /// Buckets per cycle.
    fn num_buckets(&self) -> usize;

    /// Run one complete query to completion (fast path).
    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome;

    /// Run one complete query over an error-prone channel (extension; see
    /// [`ErrorModel`]), retrying forever.
    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome;

    /// Run one complete query over an error-prone channel under an
    /// explicit client [`RetryPolicy`] — the direct-walker path the
    /// differential lossy suite checks both engines against.
    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome;

    /// Start a stepping query for the event-driven testbed.
    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_>;

    /// Start a stepping query over an error-prone channel with a client
    /// retry policy (fault-injection counterpart of [`DynSystem::begin`]).
    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_>;

    /// Allocate a reusable client slot. One slot serves many sequential
    /// queries via [`QuerySlot::start`]; the slab-based event engine keeps
    /// one per concurrent client instead of boxing a walker per request.
    fn make_slot(&self) -> Box<dyn QuerySlot + '_>;

    /// Allocate a reusable client slot whose queries run over an
    /// error-prone channel with a client retry policy (fault-injection
    /// counterpart of [`DynSystem::make_slot`]).
    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_>;

    /// Run one complete query with span instrumentation, returning the
    /// outcome together with its per-phase access/tuning decomposition
    /// (whose totals equal the outcome's `access`/`tuning` exactly).
    ///
    /// The default runs the uninstrumented probe and returns empty spans —
    /// honest (never fabricated attributions) but uninformative; the
    /// blanket impl for real systems overrides it with true span recording.
    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        (
            self.probe_with_policy(key, tune_in, errors, policy),
            PhaseSpans::default(),
        )
    }

    /// Allocate a reusable client slot whose queries record per-phase
    /// spans, exposed via [`QuerySlot::spans`] after each completion.
    ///
    /// The default falls back to an uninstrumented slot (`spans()` stays
    /// `None`); the blanket impl overrides it.
    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        self.make_slot_with_faults(errors, policy)
    }

    /// Run one complete query behind a unified [`ChannelModel`] (burst
    /// loss, outage windows, or both).
    ///
    /// The default handles degenerate channels (i.i.d. loss, no outages)
    /// by delegating to [`DynSystem::probe_with_policy`] and panics on
    /// correlated ones, so existing implementations stay correct without
    /// silently ignoring burst configs; the blanket impl overrides it with
    /// full support.
    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        match channel.as_iid() {
            Some(errors) => self.probe_with_policy(key, tune_in, errors, policy),
            None => unimplemented!(
                "{}: this DynSystem implementation does not support correlated channels",
                self.scheme_name()
            ),
        }
    }

    /// [`DynSystem::probe_with_channel`] with span instrumentation. Same
    /// degenerate-only default as `probe_with_channel`.
    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        match channel.as_iid() {
            Some(errors) => self.probe_recorded(key, tune_in, errors, policy),
            None => unimplemented!(
                "{}: this DynSystem implementation does not support correlated channels",
                self.scheme_name()
            ),
        }
    }

    /// Start a stepping query behind a unified [`ChannelModel`]. Same
    /// degenerate-only default as [`DynSystem::probe_with_channel`].
    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        match channel.as_iid() {
            Some(errors) => self.begin_with_faults(key, tune_in, errors, policy),
            None => unimplemented!(
                "{}: this DynSystem implementation does not support correlated channels",
                self.scheme_name()
            ),
        }
    }

    /// Allocate a reusable client slot behind a unified [`ChannelModel`].
    /// Same degenerate-only default as [`DynSystem::probe_with_channel`].
    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        match channel.as_iid() {
            Some(errors) => self.make_slot_with_faults(errors, policy),
            None => unimplemented!(
                "{}: this DynSystem implementation does not support correlated channels",
                self.scheme_name()
            ),
        }
    }

    /// Allocate a reusable instrumented slot behind a unified
    /// [`ChannelModel`]. Same degenerate-only default as
    /// [`DynSystem::probe_with_channel`].
    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        match channel.as_iid() {
            Some(errors) => self.make_slot_observed(errors, policy),
            None => unimplemented!(
                "{}: this DynSystem implementation does not support correlated channels",
                self.scheme_name()
            ),
        }
    }
}

impl<S: System> DynSystem for S
where
    S::Machine: 'static,
{
    fn scheme_name(&self) -> &'static str {
        System::scheme_name(self)
    }

    fn cycle_len(&self) -> Ticks {
        self.channel().cycle_len()
    }

    fn num_buckets(&self) -> usize {
        self.channel().num_buckets()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        run_machine(self.channel(), self.query(key), tune_in)
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        self.probe_with_policy(key, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_machine_with_policy(self.channel(), self.query(key), tune_in, errors, policy)
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        Box::new(Walk::new(self.channel(), self.query(key), tune_in))
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(Walk::with_policy(
            self.channel(),
            self.query(key),
            tune_in,
            errors,
            policy,
        ))
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        Box::new(WalkSlot::new(self))
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(WalkSlot::with_faults(self, errors, policy))
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_machine_observed(self.channel(), self.query(key), tune_in, errors, policy)
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedWalkSlot::with_faults(self, errors, policy))
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_machine_with_channel(self.channel(), self.query(key), tune_in, channel, policy)
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_machine_observed_channel(self.channel(), self.query(key), tune_in, channel, policy)
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(Walk::with_channel(
            self.channel(),
            self.query(key),
            tune_in,
            channel,
            policy,
        ))
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(WalkSlot::with_channel(self, channel, policy))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedWalkSlot::with_channel(self, channel, policy))
    }
}

/// Drive a [`QueryRun`] to completion — reference implementation used by
/// tests to check step-wise and one-shot execution agree.
pub fn drain(run: &mut dyn QueryRun) -> AccessOutcome {
    loop {
        if let WalkStep::Done(out) = run.step() {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatScheme;
    use crate::record::Record;

    fn tiny_dataset() -> Dataset {
        Dataset::new((0..8).map(|i| Record::keyed(i * 10)).collect()).unwrap()
    }

    #[test]
    fn dyn_system_matches_typed_system() {
        let ds = tiny_dataset();
        let params = Params::paper();
        let sys = FlatScheme.build(&ds, &params).unwrap();
        let dynsys: &dyn DynSystem = &sys;

        assert_eq!(dynsys.scheme_name(), "flat");
        assert_eq!(dynsys.num_buckets(), 8);
        assert_eq!(dynsys.cycle_len(), 8 * u64::from(params.data_bucket_size()));

        for t in [0u64, 17, 1000, 5555] {
            let a = run_machine(sys.channel(), sys.query(Key(30)), t);
            let b = dynsys.probe(Key(30), t);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reused_slot_agrees_with_one_shot_probe() {
        let ds = tiny_dataset();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let dynsys: &dyn DynSystem = &sys;
        let mut slot = dynsys.make_slot();
        assert!(slot.is_done(), "fresh slot is idle");
        // One slot serves many sequential queries.
        for key in [Key(0), Key(50), Key(55), Key(20)] {
            for t in [0u64, 123, 4096] {
                slot.start(key, t);
                assert!(!slot.is_done());
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert!(slot.is_done());
                assert_eq!(stepped, dynsys.probe(key, t));
            }
        }
    }

    #[test]
    fn fault_armed_slot_agrees_with_policy_probe() {
        let ds = tiny_dataset();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let dynsys: &dyn DynSystem = &sys;
        let errors = ErrorModel::new(0.2, 11);
        let policy = RetryPolicy::bounded(3);
        let mut slot = dynsys.make_slot_with_faults(errors, policy);
        for key in [Key(0), Key(50), Key(55), Key(20)] {
            for t in [0u64, 123, 4096] {
                slot.start(key, t);
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert_eq!(stepped, dynsys.probe_with_policy(key, t, errors, policy));
                let mut run = dynsys.begin_with_faults(key, t, errors, policy);
                assert_eq!(drain(run.as_mut()), stepped);
            }
        }
    }

    #[test]
    fn observed_slot_and_probe_agree_with_plain_ones() {
        let ds = tiny_dataset();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let dynsys: &dyn DynSystem = &sys;
        let errors = ErrorModel::new(0.2, 11);
        let policy = RetryPolicy::bounded(3);
        let mut slot = dynsys.make_slot_observed(errors, policy);
        assert!(slot.spans().is_none(), "unarmed slot has no spans");
        for key in [Key(0), Key(50), Key(55), Key(20)] {
            for t in [0u64, 123, 4096] {
                let plain = dynsys.probe_with_policy(key, t, errors, policy);
                let (recorded, spans) = dynsys.probe_recorded(key, t, errors, policy);
                assert_eq!(plain, recorded);
                assert_eq!(spans.total_access(), plain.access);
                assert_eq!(spans.total_tuning(), plain.tuning);

                slot.start(key, t);
                let stepped = loop {
                    if let WalkStep::Done(out) = slot.step() {
                        break out;
                    }
                };
                assert_eq!(stepped, plain);
                let slot_spans = slot.spans().expect("observed slot exposes spans");
                assert_eq!(*slot_spans, spans);
            }
        }
    }

    #[test]
    fn stepping_run_agrees_with_one_shot_probe() {
        let ds = tiny_dataset();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let dynsys: &dyn DynSystem = &sys;
        for key in [Key(0), Key(50), Key(55)] {
            for t in [0u64, 123, 4096] {
                let fast = dynsys.probe(key, t);
                let mut run = dynsys.begin(key, t);
                let stepped = drain(run.as_mut());
                assert_eq!(fast, stepped);
            }
        }
    }
}
