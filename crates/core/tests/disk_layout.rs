//! Property suite for broadcast-disk layouts (see `bda_core::disks`).
//!
//! The five load-bearing properties of a repetition schedule:
//!
//! 1. every record appears at least once per major cycle;
//! 2. hot-record occurrences are evenly spaced (exactly in minor-cycle
//!    index space; within a chunk-imbalance tolerance in byte space);
//! 3. repetition counts are monotone in popularity rank;
//! 4. routing always resolves to a *forward* occurrence — no wrap-around
//!    miss: a client never skips its record's next broadcast;
//! 5. `D = 1` reduces exactly to the single-disk (flat-cycle) program.

use std::collections::HashMap;

use bda_core::{
    Dataset, DiskConfig, DiskLayout, DynSystem, FlatDisksScheme, FlatScheme, Key, Params, Record,
    Scheme, System, Ticks,
};
use proptest::prelude::*;

fn layout(n: usize, d: usize) -> DiskLayout {
    DiskLayout::new(n, &DiskConfig::new(d))
}

proptest! {
    /// Property 1+3: every record is scheduled at least once per major
    /// cycle, the per-record occurrence count matches the schedule, and
    /// repetition counts never increase with popularity rank.
    #[test]
    fn coverage_and_monotonicity(n in 1usize..300, d in 1usize..5) {
        let l = layout(n, d);
        let mut seen = vec![0u32; n];
        for r in l.schedule().sequence() {
            seen[r as usize] += 1;
        }
        for (r, &count) in seen.iter().enumerate() {
            prop_assert!(count >= 1, "record {r} missing from the major cycle");
            prop_assert_eq!(count, l.occurrences(r), "record {r}");
        }
        // Identity ranking: rank == record index, so counts are
        // non-increasing in record index.
        for r in 1..n {
            prop_assert!(
                l.occurrences(r) <= l.occurrences(r - 1),
                "repetitions must be monotone in rank: r={r}"
            );
        }
        // Counts are the disk speeds: 2^(D-1-d).
        let m = 1u32 << (l.effective_disks() - 1);
        for r in 0..n {
            let (disk, _) = l.assignment(r);
            prop_assert_eq!(l.occurrences(r), m >> disk);
        }
    }

    /// Property 2 (exact form): a record on disk `d` appears in minor
    /// cycles `c, c + 2^d, c + 2·2^d, …` — perfectly even spacing in
    /// minor-cycle index space.
    #[test]
    fn minor_cycle_spacing_is_exact(n in 1usize..300, d in 1usize..5) {
        let l = layout(n, d);
        let s = l.schedule();
        for r in 0..n {
            let (disk, chunk) = l.assignment(r);
            let stride = 1usize << disk;
            let cycles: Vec<usize> = (0..s.num_minor_cycles())
                .filter(|&j| s.minor_cycle(j).contains(&(r as u32)))
                .collect();
            let expect: Vec<usize> = (chunk as usize..s.num_minor_cycles())
                .step_by(stride)
                .collect();
            prop_assert_eq!(cycles, expect, "record {}", r);
        }
    }

    /// Property 2 (byte form): on the built flat-disks channel, the gaps
    /// between consecutive occurrences of a repeated record differ by at
    /// most the chunk-imbalance bound (minor cycles differ by at most
    /// `D - 1` records, so a `2^d`-minor gap wobbles by at most
    /// `2^d · (D-1)` buckets).
    #[test]
    fn byte_spacing_is_even_within_tolerance(n in 8usize..200, d in 2usize..4) {
        let p = Params::paper();
        let ds = Dataset::new((0..n as u64).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatDisksScheme::new(DiskConfig::new(d)).build(&ds, &p).unwrap();
        let l = layout(n, d);
        let ch = sys.channel();
        let bucket = Ticks::from(p.data_bucket_size());

        let mut positions: HashMap<u32, Vec<Ticks>> = HashMap::new();
        for (i, b) in ch.buckets().iter().enumerate() {
            positions.entry(b.payload.record_index).or_default().push(ch.start_of(i));
        }
        for (r, pos) in positions {
            let k = pos.len();
            prop_assert_eq!(k as u32, l.occurrences(r as usize));
            if k < 2 {
                continue;
            }
            let (disk, _) = l.assignment(r as usize);
            let slack = (1u64 << disk) * (l.effective_disks() as u64 - 1) * bucket;
            let mut gaps = Vec::with_capacity(k);
            for i in 0..k {
                let next = pos[(i + 1) % k];
                let gap = if next > pos[i] {
                    next - pos[i]
                } else {
                    ch.cycle_len() - pos[i] + next
                };
                gaps.push(gap);
            }
            let min = *gaps.iter().min().unwrap();
            let max = *gaps.iter().max().unwrap();
            prop_assert!(
                max - min <= slack,
                "record {r}: gaps {min}..{max} exceed slack {slack}"
            );
        }
    }

    /// Property 4: retrieval is forward-exact — a flat-disks client always
    /// downloads its record at the record's *next* complete occurrence,
    /// never a later one (no wrap-around miss past a repetition).
    #[test]
    fn retrieval_hits_the_next_occurrence(n in 1usize..120, d in 1usize..4, seed in any::<u64>()) {
        let p = Params::paper();
        let ds = Dataset::new((0..n as u64).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let sys = FlatDisksScheme::new(DiskConfig::new(d)).build(&ds, &p).unwrap();
        let ch = sys.channel();
        let key_index = (seed % n as u64) as usize;
        let key = Key(key_index as u64 * 2);
        let t = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (3 * ch.cycle_len());
        // Earliest complete occurrence of the key's bucket at or after t.
        let expect = (0..ch.num_buckets())
            .filter(|&i| ch.bucket(i).payload.key == key)
            .map(|i| ch.occurrence_at_or_after(i, t) + Ticks::from(ch.bucket(i).size))
            .min()
            .expect("key is broadcast");
        let out = sys.probe(key, t);
        prop_assert!(out.found);
        prop_assert_eq!(t + out.access, expect, "client must use the next occurrence");
    }

    /// Property 5: one disk is the identity — the layout is the plain
    /// 0..n sequence and the built program is bit-identical to
    /// `FlatScheme`'s, outcomes included.
    #[test]
    fn d1_reduces_to_the_single_disk_program(n in 1usize..200, t in 0u64..1 << 30) {
        let l = layout(n, 1);
        prop_assert_eq!(l.effective_disks(), 1);
        prop_assert_eq!(l.schedule().num_minor_cycles(), 1);
        prop_assert_eq!(
            l.schedule().sequence().collect::<Vec<_>>(),
            (0..n as u32).collect::<Vec<_>>()
        );

        let p = Params::paper();
        let ds = Dataset::new((0..n as u64).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        let base = FlatScheme.build(&ds, &p).unwrap();
        let disks = FlatDisksScheme::new(DiskConfig::new(1)).build(&ds, &p).unwrap();
        prop_assert_eq!(base.channel().buckets(), disks.channel().buckets());
        let key = Key(t % (n as u64 * 2 + 1));
        prop_assert_eq!(base.probe(key, t), disks.probe(key, t));
    }
}

/// Deterministic spot-check of the clamping rule: every chunk of every
/// disk is non-empty for all dataset sizes (tiny ones clamp `D` down).
#[test]
fn every_chunk_is_populated_for_all_sizes() {
    for n in 1..=64usize {
        for d in 1..=4usize {
            let l = layout(n, d);
            let eff = l.effective_disks();
            let mut chunk_fill: HashMap<(u8, u32), usize> = HashMap::new();
            for r in 0..n {
                *chunk_fill.entry(l.assignment(r)).or_default() += 1;
            }
            let expected_chunks: usize = (0..eff).map(|disk| 1usize << disk).sum();
            assert_eq!(
                chunk_fill.len(),
                expected_chunks,
                "n={n} d={d}: every chunk must hold at least one record"
            );
        }
    }
}
