//! Property suite for multichannel group layouts (see
//! `bda_core::multichannel`).
//!
//! The four load-bearing properties of a channel group:
//!
//! 1. striping covers every record exactly once per major cycle — the
//!    union of the per-channel programs is the dataset, with no record
//!    duplicated, dropped, or reordered across the slice boundaries (and
//!    the indexed group's directory pointers all land on the bucket that
//!    actually carries the key);
//! 2. cross-channel routing is forward-only — a pointer is always
//!    resolved at or after the instant it was read, so the completion
//!    instant is monotone in the tune-in instant;
//! 3. switch-cost accounting is tick-exact — a query homed away from
//!    channel 0 pays exactly `switch_cost` ticks of access time (and one
//!    `ChannelSwitch` span), no more, no less, and tuning is untouched;
//! 4. `K = 1` is byte-identical to the flat single-channel program,
//!    buckets and outcomes included.

use bda_core::{
    Dataset, DynSystem, ErrorModel, FlatScheme, GroupConfig, GroupPayload, IndexedGroupScheme, Key,
    Params, Record, RetryPolicy, Scheme, StripedScheme, System, Ticks,
};
use bda_obs::Phase;
use proptest::prelude::*;

/// Key-sorted dataset with odd keys absent (key = 2·index).
fn dataset(n: usize) -> Dataset {
    Dataset::new((0..n as u64).map(|i| Record::keyed(i * 2)).collect()).unwrap()
}

fn striped(
    n: usize,
    channels: u32,
    switch_cost: Ticks,
) -> bda_core::StripedSystem<bda_core::FlatSystem> {
    let config = GroupConfig::new(channels, switch_cost).unwrap();
    StripedScheme::new(FlatScheme, config)
        .build(&dataset(n), &Params::paper())
        .unwrap()
}

fn indexed(n: usize, channels: u32, switch_cost: Ticks) -> bda_core::IndexedGroupSystem {
    let config = GroupConfig::new(channels, switch_cost).unwrap();
    IndexedGroupScheme::new(config)
        .unwrap()
        .build(&dataset(n), &Params::paper())
        .unwrap()
}

proptest! {
    /// Property 1 (striped): the per-channel programs partition the
    /// key-sorted dataset into contiguous slices — every record airs on
    /// exactly one channel, exactly once per that channel's cycle, in
    /// dataset order, and the routing directory holds each slice's first
    /// key.
    #[test]
    fn striping_covers_every_record_exactly_once(n in 1usize..200, k in 1u32..7) {
        let sys = striped(n, k, 97);
        prop_assert_eq!(sys.num_channels(), (k as usize).min(n));
        let mut aired: Vec<u64> = Vec::with_capacity(n);
        for g in 0..sys.num_channels() {
            let ch = sys.channel_system(g).channel();
            let keys: Vec<u64> = ch.buckets().iter().map(|b| b.payload.key.0).collect();
            prop_assert_eq!(
                sys.bounds()[g],
                keys[0],
                "directory bound must be the slice's first key (channel {})", g
            );
            // Every key of the slice routes back to its channel.
            for &key in &keys {
                prop_assert_eq!(sys.route(Key(key)), g);
            }
            aired.extend(keys);
        }
        let expect: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
        prop_assert_eq!(aired, expect, "stripes must cover the dataset exactly once, in order");
    }

    /// Property 1 (indexed): the data channels carry every record exactly
    /// once, and every directory entry's cross-channel pointer lands on
    /// the data bucket that actually airs that key.
    #[test]
    fn indexed_pointers_land_on_their_records(n in 5usize..150, k in 2u32..6) {
        let sys = indexed(n, k, 31);
        let bs = sys.bucket_size();
        let mut aired: Vec<u64> = Vec::new();
        for d in 0..sys.num_channels() - 1 {
            for b in sys.data_channel(d).buckets() {
                match &b.payload {
                    GroupPayload::Data { key } => aired.push(*key),
                    other => prop_assert!(false, "non-data payload on a data channel: {other:?}"),
                }
            }
        }
        aired.sort_unstable();
        let expect: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
        prop_assert_eq!(aired, expect, "data channels must cover the dataset exactly once");
        for i in 0..n {
            let key = Key(i as u64 * 2);
            let r = sys.bucket_ref(key).expect("present key must be indexed");
            prop_assert!(r.channel >= 1 && (r.channel as usize) < sys.num_channels());
            prop_assert_eq!(r.offset % bs, 0, "pointers address bucket starts");
            let ch = sys.data_channel(r.channel as usize - 1);
            prop_assert!(r.offset < ch.cycle_len(), "pointer offset must be cycle-relative");
            let slot = (r.offset / bs) as usize;
            prop_assert_eq!(&ch.bucket(slot).payload, &GroupPayload::Data { key: key.0 });
        }
        // Absent keys resolve to no pointer — the directory answers them.
        prop_assert_eq!(sys.bucket_ref(Key(1)), None);
    }

    /// Property 2: forward-only routing means a client that tunes in
    /// later can never finish earlier — the completion instant
    /// `tune_in + access` is non-decreasing in `tune_in`. A pointer
    /// resolved backward in time would violate this immediately.
    #[test]
    fn completion_is_monotone_in_tune_in(
        n in 1usize..120,
        k in 1u32..6,
        seed in any::<u64>(),
        t in 0u64..200_000,
        dt in 1u64..30_000,
    ) {
        let key = Key((seed % n as u64) * 2);
        let s = striped(n, k, 53);
        let (a, b) = (s.probe(key, t), s.probe(key, t + dt));
        prop_assert!(a.found && b.found);
        prop_assert!(
            t + a.access <= t + dt + b.access,
            "striped: tune-in {t}+{dt} finished at {} before {}",
            t + dt + b.access,
            t + a.access
        );
        // Indexed groups need at least one record per data channel.
        if n >= k as usize - 1 && k >= 2 {
            let s = indexed(n, k, 53);
            let (a, b) = (s.probe(key, t), s.probe(key, t + dt));
            prop_assert!(a.found && b.found);
            prop_assert!(
                t + a.access <= t + dt + b.access,
                "indexed: a later tune-in must not finish earlier"
            );
        }
    }

    /// Property 3 (striped): tick-exact switch accounting. A query homed
    /// on channel `g > 0` against a group with switch cost `sw` behaves
    /// exactly like the same query against the `sw = 0` group tuned in
    /// `sw` ticks later, plus `sw` ticks of access — and one
    /// `ChannelSwitch` span of exactly `(access = sw, tuning = 0)`.
    /// Home-channel queries are bit-identical to the `sw = 0` group.
    #[test]
    fn switch_cost_is_tick_exact(
        n in 2usize..150,
        k in 2u32..6,
        sw in 1u64..5_000,
        seed in any::<u64>(),
        t in 0u64..200_000,
    ) {
        let with = striped(n, k, sw);
        let without = striped(n, k, 0);
        let key = Key((seed % n as u64) * 2);
        let g = with.route(key);
        let (out, spans) =
            with.probe_recorded(key, t, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        let switch = spans.get(Phase::ChannelSwitch);
        if g == 0 {
            prop_assert_eq!(out, without.probe(key, t), "home channel must be switch-free");
            prop_assert_eq!((switch.access, switch.tuning, switch.count), (0, 0, 0));
        } else {
            let base = without.probe(key, t + sw);
            prop_assert_eq!(out.access, base.access + sw, "access must absorb exactly sw");
            prop_assert_eq!(out.tuning, base.tuning, "a retuning radio is deaf");
            prop_assert_eq!(
                (switch.access, switch.tuning, switch.count),
                (sw, 0, 1),
                "exactly one ChannelSwitch span of sw ticks"
            );
        }
    }

    /// Property 3 (indexed): a found key pays exactly one retune — the
    /// recorded `ChannelSwitch` span is `(sw, 0)` — while an absent key,
    /// answered from the channel-0 directory, never pays one.
    #[test]
    fn indexed_walks_pay_exactly_one_switch(
        n in 5usize..120,
        k in 2u32..6,
        sw in 1u64..5_000,
        seed in any::<u64>(),
        t in 0u64..200_000,
    ) {
        let sys = indexed(n, k, sw);
        let key = Key((seed % n as u64) * 2);
        let (out, spans) = sys.probe_recorded(key, t, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        prop_assert!(out.found);
        let switch = spans.get(Phase::ChannelSwitch);
        prop_assert_eq!((switch.access, switch.tuning, switch.count), (sw, 0, 1));
        let (absent, spans) =
            sys.probe_recorded(Key(key.0 + 1), t, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        prop_assert!(!absent.found);
        let switch = spans.get(Phase::ChannelSwitch);
        prop_assert_eq!((switch.access, switch.tuning, switch.count), (0, 0, 0));
    }

    /// Property 4: `K = 1` is the identity — the striped group's single
    /// channel is bit-identical to the plain flat program (buckets,
    /// outcomes and spans), and `Params::scaled(1)` dilates nothing.
    #[test]
    fn k1_is_byte_identical_to_the_flat_program(
        n in 1usize..200,
        t in 0u64..1u64 << 30,
        sw in 0u64..5_000,
    ) {
        let p = Params::paper();
        let ds = dataset(n);
        let base = FlatScheme.build(&ds, &p).unwrap();
        let group = StripedScheme::new(FlatScheme, GroupConfig::new(1, sw).unwrap())
            .build(&ds, &p)
            .unwrap();
        prop_assert_eq!(group.num_channels(), 1);
        prop_assert_eq!(base.channel().buckets(), group.channel_system(0).channel().buckets());
        // Every key routes to the lone home channel, so the switch cost
        // never applies regardless of its value.
        let key = Key(t % (n as u64 * 2 + 1));
        prop_assert_eq!(base.probe(key, t), group.probe(key, t));
        let (a, sa) = base.probe_recorded(key, t, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        let (b, sb) = group.probe_recorded(key, t, ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }
}
