//! Property tests for the channel substrate and walker.

use bda_core::{Bucket, Channel, DynSystem, ErrorModel, FlatScheme, Key, Params, Record, Scheme};
use proptest::prelude::*;

/// Arbitrary non-empty channels with 1–64 buckets of 1–4096 bytes.
fn arb_channel() -> impl Strategy<Value = Channel<usize>> {
    prop::collection::vec(1u32..4096, 1..64).prop_map(|sizes| {
        Channel::new(
            sizes
                .into_iter()
                .enumerate()
                .map(|(i, s)| Bucket::new(s, i))
                .collect(),
        )
        .expect("non-empty, positive sizes")
    })
}

proptest! {
    /// `first_complete_at` returns a bucket boundary at or after `t`, no
    /// further than one full cycle away, and is periodic in the cycle.
    #[test]
    fn first_complete_at_is_sound(ch in arb_channel(), t in 0u64..1 << 40) {
        let (idx, start) = ch.first_complete_at(t);
        prop_assert!(start >= t);
        prop_assert!(start - t <= ch.cycle_len());
        prop_assert_eq!(ch.pos(start), ch.start_of(idx));
        // No bucket starts strictly between t and start.
        for i in 0..ch.num_buckets() {
            let occ = ch.occurrence_at_or_after(i, t);
            prop_assert!(occ >= start || occ == start, "bucket {i} sneaks in");
        }
        // Periodicity.
        let (idx2, start2) = ch.first_complete_at(t + ch.cycle_len());
        prop_assert_eq!(idx, idx2);
        prop_assert_eq!(start2 - start, ch.cycle_len());
    }

    /// `delta_from` always lands on the target bucket's start, within one
    /// cycle.
    #[test]
    fn delta_from_lands_on_target(ch in arb_channel(), from in 0u64..1 << 40, which in any::<proptest::sample::Index>()) {
        let idx = which.index(ch.num_buckets());
        let d = ch.delta_from(from, idx);
        prop_assert!(d < ch.cycle_len() + u64::from(ch.bucket(idx).size));
        prop_assert_eq!(ch.pos(from + d), ch.start_of(idx));
    }

    /// Flat broadcast over arbitrary key sets: exact retrieval semantics
    /// and the tuning == access identity, lossless and lossy.
    #[test]
    fn flat_protocol_is_exact(
        keys in prop::collection::btree_set(0u64..1 << 48, 1..80),
        t in 0u64..1 << 40,
        probe_key in 0u64..1 << 48,
        loss in 0.0f64..0.3,
    ) {
        let records: Vec<Record> = keys.iter().map(|&k| Record::keyed(k)).collect();
        let ds = bda_core::Dataset::new(records).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let expect = keys.contains(&probe_key);
        let out = sys.probe(Key(probe_key), t);
        prop_assert_eq!(out.found, expect);
        prop_assert_eq!(out.tuning, out.access, "flat never dozes");
        prop_assert!(!out.aborted);
        // Lossy channel: same verdict, never aborted.
        let lossy = sys.probe_with_errors(Key(probe_key), t, ErrorModel::new(loss, 7));
        prop_assert_eq!(lossy.found, expect);
        prop_assert!(!lossy.aborted);
        prop_assert!(lossy.access >= out.access || lossy.retries == 0);
    }
}
