//! Property tests for the channel substrate and walker.

use bda_core::{
    Bucket, BurstModel, Channel, DynSystem, ErrorModel, FlatScheme, Key, OutageSchedule, Params,
    Record, RetryPolicy, Scheme,
};
use proptest::prelude::*;

/// Arbitrary non-empty channels with 1–64 buckets of 1–4096 bytes.
fn arb_channel() -> impl Strategy<Value = Channel<usize>> {
    prop::collection::vec(1u32..4096, 1..64).prop_map(|sizes| {
        Channel::new(
            sizes
                .into_iter()
                .enumerate()
                .map(|(i, s)| Bucket::new(s, i))
                .collect(),
        )
        .expect("non-empty, positive sizes")
    })
}

proptest! {
    /// `first_complete_at` returns a bucket boundary at or after `t`, no
    /// further than one full cycle away, and is periodic in the cycle.
    #[test]
    fn first_complete_at_is_sound(ch in arb_channel(), t in 0u64..1 << 40) {
        let (idx, start) = ch.first_complete_at(t);
        prop_assert!(start >= t);
        prop_assert!(start - t <= ch.cycle_len());
        prop_assert_eq!(ch.pos(start), ch.start_of(idx));
        // No bucket starts strictly between t and start.
        for i in 0..ch.num_buckets() {
            let occ = ch.occurrence_at_or_after(i, t);
            prop_assert!(occ >= start || occ == start, "bucket {i} sneaks in");
        }
        // Periodicity.
        let (idx2, start2) = ch.first_complete_at(t + ch.cycle_len());
        prop_assert_eq!(idx, idx2);
        prop_assert_eq!(start2 - start, ch.cycle_len());
    }

    /// `delta_from` always lands on the target bucket's start, within one
    /// cycle.
    #[test]
    fn delta_from_lands_on_target(ch in arb_channel(), from in 0u64..1 << 40, which in any::<proptest::sample::Index>()) {
        let idx = which.index(ch.num_buckets());
        let d = ch.delta_from(from, idx);
        prop_assert!(d < ch.cycle_len() + u64::from(ch.bucket(idx).size));
        prop_assert_eq!(ch.pos(from + d), ch.start_of(idx));
    }

    /// Flat broadcast over arbitrary key sets: exact retrieval semantics
    /// and the tuning == access identity, lossless and lossy.
    #[test]
    fn flat_protocol_is_exact(
        keys in prop::collection::btree_set(0u64..1 << 48, 1..80),
        t in 0u64..1 << 40,
        probe_key in 0u64..1 << 48,
        loss in 0.0f64..0.3,
    ) {
        let records: Vec<Record> = keys.iter().map(|&k| Record::keyed(k)).collect();
        let ds = bda_core::Dataset::new(records).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let expect = keys.contains(&probe_key);
        let out = sys.probe(Key(probe_key), t);
        prop_assert_eq!(out.found, expect);
        prop_assert_eq!(out.tuning, out.access, "flat never dozes");
        prop_assert!(!out.aborted);
        // Lossy channel: same verdict, never aborted.
        let lossy = sys.probe_with_errors(Key(probe_key), t, ErrorModel::new(loss, 7));
        prop_assert_eq!(lossy.found, expect);
        prop_assert!(!lossy.aborted);
        prop_assert!(lossy.access >= out.access || lossy.retries == 0);
    }

    /// The error model is a pure function of (bucket start, seed): clones
    /// agree everywhere, and distinct seeds decorrelate the corruption
    /// pattern.
    #[test]
    fn error_model_is_deterministic_and_seed_sensitive(
        loss in 0.01f64..0.99,
        seed in any::<u64>(),
        starts in prop::collection::vec(0u64..1 << 50, 1..200),
    ) {
        let m = ErrorModel::new(loss, seed);
        let clone = m;
        prop_assert_eq!(m, clone);
        for &s in &starts {
            prop_assert_eq!(m.corrupted(s), clone.corrupted(s), "clone diverged at {}", s);
        }
        // A different seed must not reproduce the same pattern on any
        // reasonably long sample (probability ~loss^n of a false alarm).
        if starts.len() >= 64 {
            let other = ErrorModel::new(loss, seed ^ 0x9E37_79B9_7F4A_7C15);
            let agree = starts.iter().filter(|&&s| m.corrupted(s) == other.corrupted(s)).count();
            prop_assert!(agree < starts.len(), "seeds {} and friend fully correlated", seed);
        }
    }

    /// Edge rates: `loss = 0` never corrupts, `loss = 1` always corrupts.
    #[test]
    fn error_model_edge_rates(seed in any::<u64>(), start in 0u64..1 << 50) {
        prop_assert!(!ErrorModel::new(0.0, seed).corrupted(start));
        prop_assert!(!ErrorModel::NONE.corrupted(start));
        prop_assert!(ErrorModel::new(1.0, seed).corrupted(start));
    }

    /// For a fixed seed the corrupted set is pointwise monotone in the
    /// loss probability: the same hash is compared against the threshold,
    /// so p1 <= p2 implies corrupted(p1) ⊆ corrupted(p2) *exactly* — not
    /// just statistically.
    #[test]
    fn error_model_corruption_is_monotone_in_loss(
        seed in any::<u64>(),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
        starts in prop::collection::vec(0u64..1 << 50, 1..300),
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let weak = ErrorModel::new(lo, seed);
        let strong = ErrorModel::new(hi, seed);
        let mut weak_hits = 0usize;
        let mut strong_hits = 0usize;
        for &s in &starts {
            if weak.corrupted(s) {
                weak_hits += 1;
                prop_assert!(strong.corrupted(s), "lost corruption at {} raising {} -> {}", s, lo, hi);
            }
            if strong.corrupted(s) {
                strong_hits += 1;
            }
        }
        prop_assert!(weak_hits <= strong_hits);
    }

    /// Cycle-boundary exactness: at any bucket's exact start time (in any
    /// cycle), `first_complete_at` returns *that* bucket with zero wait,
    /// `occurrence_at_or_after` is a fixed point, and `delta_from` the
    /// bucket's own start is zero.
    #[test]
    fn boundary_alignment_is_exact(
        ch in arb_channel(),
        cyc in 0u64..1 << 20,
        which in any::<proptest::sample::Index>(),
    ) {
        let i = which.index(ch.num_buckets());
        let t = cyc * ch.cycle_len() + ch.start_of(i);
        let (idx, start) = ch.first_complete_at(t);
        prop_assert_eq!(idx, i);
        prop_assert_eq!(start, t);
        prop_assert_eq!(ch.occurrence_at_or_after(i, t), t);
        prop_assert_eq!(ch.delta_from(ch.start_of(i), i), 0);
        // The cycle boundary itself is bucket 0's start.
        let (idx0, s0) = ch.first_complete_at(cyc * ch.cycle_len());
        prop_assert_eq!(idx0, 0);
        prop_assert_eq!(s0, cyc * ch.cycle_len());
    }

    /// Near `Ticks::MAX` the channel arithmetic saturates instead of
    /// overflowing: results never wrap around to a past instant, and
    /// whenever the clamp did not engage they still land on a true bucket
    /// boundary.
    #[test]
    fn channel_arithmetic_is_overflow_free_near_ticks_max(
        ch in arb_channel(),
        back in 0u64..1 << 20,
        which in any::<proptest::sample::Index>(),
    ) {
        use bda_core::Ticks;
        let t = Ticks::MAX - back;
        let (idx, start) = ch.first_complete_at(t);
        prop_assert!(idx < ch.num_buckets());
        prop_assert!(start >= t, "wrapped into the past: {} < {}", start, t);
        if start != Ticks::MAX {
            prop_assert_eq!(ch.pos(start), ch.start_of(idx));
        }
        let i = which.index(ch.num_buckets());
        let occ = ch.occurrence_at_or_after(i, t);
        prop_assert!(occ >= t, "occurrence wrapped into the past");
        if occ != Ticks::MAX {
            prop_assert_eq!(ch.pos(occ), ch.start_of(i));
        }
        // `delta_from` is cycle-local: bounded by two cycles for any input
        // magnitude, and the landing position is exact.
        let from = t % ch.cycle_len();
        let d = ch.delta_from(from, i);
        prop_assert!(d < 2 * ch.cycle_len());
        prop_assert_eq!(ch.pos(from + d), ch.start_of(i));
    }

    /// The empirical loss rate over a large sample tracks `loss_prob`
    /// (binomial concentration: ±5 σ bound, deterministic per seed).
    #[test]
    fn error_model_empirical_rate_tracks_loss_prob(
        seed in any::<u64>(),
        loss in 0.05f64..0.95,
    ) {
        let m = ErrorModel::new(loss, seed);
        let n = 20_000u64;
        // Irregular stride so starts don't share low-bit structure.
        let hits = (0..n).filter(|i| m.corrupted(i * 6_700_417)).count() as f64;
        let rate = hits / n as f64;
        let sigma = (loss * (1.0 - loss) / n as f64).sqrt();
        prop_assert!(
            (rate - loss).abs() < 5.0 * sigma + 1e-3,
            "empirical {} vs nominal {} (seed {})", rate, loss, seed
        );
    }

    /// The Gilbert–Elliott skip-ahead is *exact*: for any chain parameters
    /// and any instant, the backward monotone-coupling resolution returns
    /// the same fading state as stepping the chain forward tick by tick
    /// from its t = 0 anchor — which is what makes burst corruption a pure
    /// function of (bucket instant, seed) and keeps shard merges and
    /// fast-forward hops bit-exact.
    #[test]
    fn burst_skip_ahead_equals_naive_forward_walk(
        p in 0.001f64..0.9,
        q in 0.001f64..0.9,
        lg in 0.0f64..0.5,
        lb in 0.5f64..1.0,
        seed in any::<u64>(),
        t in 0u64..30_000,
    ) {
        let m = BurstModel::new(p, q, lg, lb, seed);
        prop_assert_eq!(
            m.state_at(t),
            m.state_at_naive(t),
            "skip-ahead diverged from the forward walk at t={} (p={}, q={}, seed={})",
            t, p, q, seed
        );
        // Purity: re-asking gives the same answer (no hidden state).
        prop_assert_eq!(m.state_at(t), m.state_at(t));
    }

    /// Over a long sample the chain's empirical corruption rate converges
    /// to the stationary closed form `(q·lg + p·lb) / (p + q)`. The
    /// sample mean of a two-state chain concentrates like the i.i.d.
    /// binomial inflated by the mixing factor `(2 − p − q)/(p + q)`, so a
    /// 5 σ bound on the inflated deviation is deterministic-safe.
    #[test]
    fn burst_empirical_rate_tracks_stationary_loss(
        p in 0.05f64..0.95,
        q in 0.05f64..0.95,
        lb in 0.4f64..1.0,
        seed in any::<u64>(),
    ) {
        let lg = 0.02;
        let m = BurstModel::new(p, q, lg, lb, seed);
        let expect = m.stationary_loss();
        prop_assert!((expect - (q * lg + p * lb) / (p + q)).abs() < 1e-12);
        let n = 30_000u64;
        let hits = (0..n).filter(|&t| m.corrupted(t)).count() as f64;
        let rate = hits / n as f64;
        let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
        let inflation = ((2.0 - p - q) / (p + q)).sqrt().max(1.0);
        prop_assert!(
            (rate - expect).abs() < 5.0 * sigma * inflation + 5e-3,
            "empirical {} vs stationary {} (p={}, q={}, seed={})",
            rate, expect, p, q, seed
        );
    }

    /// Outage spans are seed-deterministic, stay inside their frame (so
    /// consecutive spans can never overlap), occupy exactly `len` ticks,
    /// and `in_outage` agrees pointwise with the span arithmetic.
    #[test]
    fn outage_spans_are_disjoint_and_deterministic(
        every in 1u64..100_000,
        len in 1u64..100_000,
        seed in any::<u64>(),
        k in 0u64..1 << 30,
    ) {
        let sched = OutageSchedule::new(every, len, seed);
        let clone = sched;
        let (start, end) = sched.span(k).expect("non-degenerate schedule");
        prop_assert_eq!(sched.span(k), clone.span(k), "spans drifted between clones");
        // The span sits inside frame k and is exactly len (clamped) long.
        prop_assert!(start >= k * every, "span starts before its frame");
        prop_assert!(end <= (k + 1) * every, "span spills into the next frame");
        prop_assert_eq!(end - start, len.min(every));
        // Disjointness with the neighbour frame follows from containment.
        let (next_start, _) = sched.span(k + 1).expect("same schedule");
        prop_assert!(end <= next_start, "consecutive spans overlap");
        // in_outage agrees with the span arithmetic at the edges. The
        // first tick past the span is clear unless it is already the
        // *next* frame's span (possible when len == every).
        prop_assert!(sched.in_outage(start));
        prop_assert!(sched.in_outage(end - 1));
        if end < next_start {
            prop_assert!(!sched.in_outage(end));
        }
        if start > k * every {
            prop_assert!(!sched.in_outage(start - 1));
        }
    }

    /// Back-off jitter is a pure function of `(jitter_seed, attempt)`:
    /// clones agree, draws stay in `[1, base]`, outage recovery always
    /// dozes at least one cycle with the doubling capped, and removing the
    /// jitter seed restores the deterministic exponential sequence.
    #[test]
    fn backoff_jitter_is_deterministic_per_seed_and_attempt(
        seed in any::<u64>(),
        cap_pow in 0u32..8,
        attempt in 1u32..64,
    ) {
        let cap = 1u32 << cap_pow;
        let plain = RetryPolicy::bounded(64).with_backoff_cap(cap);
        let jittered = plain.with_jitter(seed);
        for outage in [false, true] {
            let base = plain.recovery_cycles(attempt, outage);
            let j1 = jittered.recovery_cycles(attempt, outage);
            let j2 = jittered.recovery_cycles(attempt, outage);
            prop_assert_eq!(j1, j2, "jitter not deterministic per (seed, attempt)");
            if base == 0 {
                prop_assert_eq!(j1, 0);
            } else {
                prop_assert!(j1 >= 1 && j1 <= base, "jitter {} outside [1, {}]", j1, base);
            }
            if outage {
                prop_assert!(base >= 1, "outage recovery must doze at least one cycle");
                prop_assert!(base <= cap.max(1), "outage doze {} exceeds cap {}", base, cap);
            }
        }
        // Without jitter the exponential sequence is exact: 1,2,4,… capped.
        let expect = 1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX).min(u64::from(cap)) as u32;
        prop_assert_eq!(plain.recovery_cycles(attempt, true), expect.max(1));
    }
}
