//! Synthetic dictionary generation.
//!
//! The paper's data source is "a dictionary database consisting of about
//! 35,000 records" of text (Table 1: data type *text*, record size 500
//! bytes, key size 25 bytes). We reproduce its *shape* with a deterministic
//! generator of pronounceable words: every word is distinct, words sort
//! lexicographically, and each word yields the attribute material
//! (length, initial, category, a 64-bit content hash) that signature
//! indexing superimposes into record signatures.

use crate::rng::{mix64, Prng};

/// A deterministic synthetic dictionary.
#[derive(Debug, Clone)]
pub struct Dictionary {
    words: Vec<String>,
}

const ONSETS: &[&str] = &[
    "b", "bl", "br", "c", "ch", "cl", "cr", "d", "dr", "f", "fl", "fr", "g", "gl", "gr", "h", "j",
    "k", "l", "m", "n", "p", "ph", "pl", "pr", "qu", "r", "s", "sc", "sh", "sk", "sl", "sm", "sn",
    "sp", "st", "str", "sw", "t", "th", "tr", "v", "w", "wh", "z",
];
const NUCLEI: &[&str] = &[
    "a", "ai", "au", "e", "ea", "ee", "ei", "i", "ia", "ie", "o", "oa", "oi", "oo", "ou", "u",
    "ue", "y",
];
const CODAS: &[&str] = &[
    "", "b", "ck", "ct", "d", "ft", "g", "k", "l", "ll", "lt", "m", "mp", "n", "nd", "ng", "nk",
    "nt", "p", "r", "rd", "rk", "rm", "rn", "rt", "s", "sh", "sk", "sp", "ss", "st", "t", "th",
    "x",
];

/// Generate one pronounceable word from an ordinal, deterministically.
fn synth_word(ordinal: u64) -> String {
    let mut h = mix64(ordinal.wrapping_mul(0x9E37_79B9) ^ 0xD1C7_10FF);
    let mut take = |n: usize| -> usize {
        let v = (h % n as u64) as usize;
        h = mix64(h);
        v
    };
    let syllables = 2 + take(2); // 2..=3 syllables
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[take(ONSETS.len())]);
        w.push_str(NUCLEI[take(NUCLEI.len())]);
        w.push_str(CODAS[take(CODAS.len())]);
    }
    // Disambiguate hash collisions in word space by appending the ordinal
    // in base-26 letters, keeping the result "wordy".
    let mut o = ordinal;
    loop {
        w.push((b'a' + (o % 26) as u8) as char);
        o /= 26;
        if o == 0 {
            break;
        }
    }
    w
}

impl Dictionary {
    /// Generate `n` distinct words, sorted lexicographically, from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = Prng::new(seed ^ 0xD1C7);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut words = Vec::with_capacity(n);
        let mut ord = rng.below(1 << 16);
        while words.len() < n {
            let w = synth_word(ord);
            // The base-26 ordinal suffix makes cross-ordinal collisions
            // essentially impossible, but guard anyway so `len() == n`
            // holds unconditionally.
            if seen.insert(w.clone()) {
                words.push(w);
            }
            // Stride through ordinal space pseudo-randomly. The small
            // stride keeps ordinals (and hence base-26 suffixes) short so
            // words stay within a 25-byte key.
            ord = ord.wrapping_add(1 + rng.below(48));
        }
        words.sort_unstable();
        Dictionary { words }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word at sorted position `i`.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// All words, sorted.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Attribute tuple for word `i` — the material signature indexing
    /// hashes. Mirrors a dictionary entry's searchable fields: content
    /// hash, length, initial letter, and a coarse category.
    pub fn attrs(&self, i: usize) -> [u64; 4] {
        let w = &self.words[i];
        let bytes = w.as_bytes();
        let mut content = 0xcbf29ce484222325u64; // FNV-1a
        for &b in bytes {
            content ^= u64::from(b);
            content = content.wrapping_mul(0x100000001b3);
        }
        [
            content,
            bytes.len() as u64,
            u64::from(bytes[0]),
            content % 17, // coarse "category"
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dictionary::generate(500, 1);
        let b = Dictionary::generate(500, 1);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn seeds_change_content() {
        let a = Dictionary::generate(100, 1);
        let b = Dictionary::generate(100, 2);
        assert_ne!(a.words(), b.words());
    }

    #[test]
    fn words_are_distinct_and_sorted() {
        let d = Dictionary::generate(5_000, 3);
        assert_eq!(d.len(), 5_000);
        assert!(!d.is_empty());
        for i in 1..d.len() {
            assert!(d.word(i - 1) < d.word(i), "sorted & distinct at {i}");
        }
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let d = Dictionary::generate(1_000, 4);
        for w in d.words() {
            assert!(!w.is_empty());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn words_fit_a_25_byte_key() {
        // The paper's keys are 25 bytes; our words should mostly fit so the
        // "dictionary key" framing is honest.
        let d = Dictionary::generate(10_000, 5);
        let over = d.words().iter().filter(|w| w.len() > 25).count();
        assert!(
            over * 100 < d.len(),
            "fewer than 1% of words exceed 25 bytes (got {over})"
        );
    }

    #[test]
    fn attrs_are_stable_and_distinguish_words() {
        let d = Dictionary::generate(200, 6);
        let a0 = d.attrs(0);
        assert_eq!(a0, d.attrs(0));
        assert_eq!(a0[1], d.word(0).len() as u64);
        assert_eq!(a0[2], u64::from(d.word(0).as_bytes()[0]));
        let distinct_hashes: std::collections::HashSet<u64> =
            (0..d.len()).map(|i| d.attrs(i)[0]).collect();
        assert!(distinct_hashes.len() > 195, "content hashes nearly unique");
    }
}
