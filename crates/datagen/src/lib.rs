//! # bda-datagen — deterministic data sources and workloads for the testbed
//!
//! The paper evaluates its indexing schemes over "a dictionary database
//! consisting of about 35,000 records" (§4.1) with 500-byte records and
//! 25-byte keys, querying it with requests generated from an exponential
//! distribution. That database is not available, so this crate provides the
//! closest synthetic equivalent (see DESIGN.md, *Substitutions*):
//!
//! * [`dictionary`] — a deterministic generator of pronounceable dictionary
//!   words used as record content and attribute material;
//! * [`records`] — [`DatasetBuilder`]: seeds → a key-sorted
//!   [`bda_core::Dataset`] of any size with distinct pseudo-random keys;
//! * [`workload`] — request workloads: exponential inter-arrival times
//!   ([`Arrivals`]), uniform or Zipf key popularity, and the *data
//!   availability* knob of Fig. 5 ([`QueryWorkload`]);
//! * [`popularity`] — the Zipf workload's rank→record correspondence and
//!   per-rank request weights, consumed by broadcast-disk program
//!   construction and the repetition-schedule analytical model;
//! * [`rng`] — a small, fully deterministic PRNG (SplitMix64-seeded
//!   xoshiro256++) implemented from scratch so results are bit-identical
//!   across platforms and toolchain versions.
//!
//! Everything is seeded; the same seed always produces the same dataset and
//! the same request stream, which is what makes the experiment harness
//! reproducible.

pub mod dictionary;
pub mod popularity;
pub mod records;
pub mod rng;
pub mod workload;

pub use dictionary::Dictionary;
pub use popularity::{zipf_ranking, zipf_weights};
pub use records::DatasetBuilder;
pub use rng::Prng;
pub use workload::{Arrivals, Popularity, QueryWorkload};
