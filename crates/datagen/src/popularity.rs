//! Popularity ranking — the bridge between the Zipf query workload and
//! broadcast-disk program construction.
//!
//! [`crate::QueryWorkload`]'s Zipf model draws rank `i` (0-based) with
//! probability proportional to `1/(i+1)^θ` and maps rank `i` to the `i`-th
//! dataset key **in key order**. The popularity ranking of a dataset under
//! that model is therefore the *identity permutation*: record index `i` is
//! popularity rank `i`. `bda_core::DiskLayout::new` bakes in the same
//! identity ranking, so a disk-stratified program built for a dataset is
//! automatically aligned with the workload generator's notion of "hot".
//! These helpers make that correspondence explicit, give analytical models
//! the exact per-record request weights, and are the natural seam for
//! future non-identity rankings (e.g. measured access frequencies fed back
//! through `UpdateStream` re-ranking).

/// The popularity ranking the Zipf workload induces on a dataset of `n`
/// records: `ranking[rank] = record_index`. Identity by construction —
/// see the module docs.
pub fn zipf_ranking(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// Normalized per-rank request probabilities of the Zipf workload:
/// `weights[i] ∝ 1/(i+1)^θ`, summing to 1. `θ = 0` is uniform. Matches
/// [`crate::QueryWorkload`]'s CDF increments exactly (same harmonic
/// normalization), so analytical access-time models weighted with these
/// agree with simulated Zipf workloads.
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "weights over an empty dataset");
    let mut w: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
    let total: f64 = w.iter().sum();
    for v in &mut w {
        *v /= total;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_the_identity() {
        assert_eq!(zipf_ranking(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(zipf_ranking(1), vec![0]);
    }

    #[test]
    fn weights_are_normalized_and_strictly_monotone() {
        for theta in [0.4, 0.8, 1.2] {
            let w = zipf_weights(100, theta);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for i in 1..w.len() {
                assert!(w[i] < w[i - 1], "θ={theta} rank {i}");
            }
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let w = zipf_weights(10, 0.0);
        for v in w {
            assert!((v - 0.1).abs() < 1e-12);
        }
    }
}
