//! Dataset construction.

use bda_core::{Dataset, Key, Record, Result};

use crate::dictionary::Dictionary;
use crate::rng::Prng;

/// Builds key-sorted datasets that mimic the paper's dictionary database.
///
/// Keys are distinct pseudo-random 64-bit ordinals (so simple hashing's
/// modulo function sees a well-spread key population, like a real key
/// attribute after encoding), and each record carries the dictionary-entry
/// attributes that signature indexing superimposes. The builder also hands
/// out an *absent-key pool*: keys guaranteed not to be broadcast, used to
/// drive the data-availability experiments of Fig. 5.
///
/// ```
/// use bda_datagen::DatasetBuilder;
///
/// let (dataset, absent) = DatasetBuilder::new(1_000, 42)
///     .build_with_absent_pool(100)
///     .unwrap();
/// assert_eq!(dataset.len(), 1_000);
/// assert!(absent.iter().all(|k| !dataset.contains(*k)));
/// // Same seed, same dataset — experiments are reproducible.
/// assert_eq!(dataset, DatasetBuilder::new(1_000, 42).build().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    num_records: usize,
    seed: u64,
    attrs_per_record: usize,
}

impl DatasetBuilder {
    /// A builder for `num_records` records from `seed`.
    pub fn new(num_records: usize, seed: u64) -> Self {
        DatasetBuilder {
            num_records,
            seed,
            attrs_per_record: 4,
        }
    }

    /// Override how many attributes each record carries (default 4 — a
    /// dictionary entry's content hash, length, initial and category).
    /// Signature indexing superimposes one hash per attribute, so this is
    /// the paper's "number of attributes" false-drop knob.
    pub fn attrs_per_record(mut self, n: usize) -> Self {
        self.attrs_per_record = n.max(1);
        self
    }

    /// Generate the dataset.
    pub fn build(&self) -> Result<Dataset> {
        let (dataset, _) = self.build_with_absent_pool(0)?;
        Ok(dataset)
    }

    /// Generate the dataset plus `absent` keys that are guaranteed not to
    /// appear in it (for availability < 100 % workloads).
    pub fn build_with_absent_pool(&self, absent: usize) -> Result<(Dataset, Vec<Key>)> {
        let mut rng = Prng::new(self.seed);
        let mut key_rng = rng.fork();
        let dict = Dictionary::generate(self.num_records, rng.next_u64());

        // Distinct pseudo-random keys for the broadcast records. Keys are
        // unrestricted 64-bit values so modulo-style hash functions see the
        // same residue distribution a real key attribute would.
        let mut keys = std::collections::BTreeSet::new();
        while keys.len() < self.num_records {
            keys.insert(key_rng.next_u64());
        }

        let records = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let base = dict.attrs(i);
                let mut attrs = Vec::with_capacity(self.attrs_per_record);
                attrs.push(k); // attribute 0: the key itself
                for j in 1..self.attrs_per_record {
                    attrs.push(base[(j - 1) % base.len()].wrapping_add(j as u64));
                }
                Record::new(Key(k), attrs)
            })
            .collect();
        let dataset = Dataset::new(records)?;

        // Absent keys come from the same distribution, rejected on the
        // (astronomically unlikely) event of colliding with a broadcast key
        // so that queries for them behave statistically like real misses.
        let mut pool = Vec::with_capacity(absent);
        let mut pool_seen = std::collections::HashSet::new();
        while pool.len() < absent {
            let k = key_rng.next_u64();
            if !keys.contains(&k) && pool_seen.insert(k) {
                pool.push(Key(k));
            }
        }
        Ok((dataset, pool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_size_sorted_unique() {
        let ds = DatasetBuilder::new(1000, 7).build().unwrap();
        assert_eq!(ds.len(), 1000);
        for i in 1..ds.len() {
            assert!(ds.record(i - 1).key < ds.record(i).key);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetBuilder::new(256, 9).build().unwrap();
        let b = DatasetBuilder::new(256, 9).build().unwrap();
        assert_eq!(a, b);
        let c = DatasetBuilder::new(256, 10).build().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn absent_pool_never_intersects_dataset() {
        let (ds, pool) = DatasetBuilder::new(500, 11)
            .build_with_absent_pool(500)
            .unwrap();
        assert_eq!(pool.len(), 500);
        for k in &pool {
            assert!(!ds.contains(*k));
        }
        // Pool keys are distinct.
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), pool.len());
    }

    #[test]
    fn attribute_count_is_respected() {
        let ds = DatasetBuilder::new(50, 13)
            .attrs_per_record(6)
            .build()
            .unwrap();
        for r in ds.records() {
            assert_eq!(r.attrs.len(), 6);
            assert_eq!(r.attrs[0], r.key.value(), "attribute 0 is the key");
        }
    }

    #[test]
    fn keys_are_well_spread_for_hashing() {
        // Modulo-style hashing should see a near-uniform slot distribution.
        let ds = DatasetBuilder::new(2000, 15).build().unwrap();
        let slots = 100u64;
        let mut counts = vec![0u32; slots as usize];
        for r in ds.records() {
            counts[(r.key.value() % slots) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 40 && min > 5, "spread min={min} max={max}");
    }
}
