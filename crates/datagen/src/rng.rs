//! Deterministic pseudo-random number generation.
//!
//! Implemented from scratch (SplitMix64 for seeding, xoshiro256++ for the
//! stream) rather than depending on an external crate so that every
//! experiment in this repository is **bit-reproducible** across platforms,
//! Rust versions, and dependency upgrades. Both algorithms are public
//! domain (Blackman & Vigna).

/// SplitMix64 step — used to expand a 64-bit seed into xoshiro state and as
/// a cheap stateless mixing function elsewhere in the workspace (signature
/// bit selection, attribute hashing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Stateless mix of a single value through one SplitMix64 round — handy for
/// turning ids into well-distributed 64-bit hashes.
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut s = v;
    splitmix64(&mut s)
}

/// xoshiro256++ pseudo-random generator.
///
/// Fast, high-quality, and trivially portable. Not cryptographic — which is
/// fine: the testbed needs statistical quality and reproducibility, not
/// unpredictability.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed the generator. Any seed (including 0) is valid; SplitMix64
    /// expansion guarantees a non-zero internal state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased). `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean — the paper's
    /// request inter-arrival distribution (Table 1).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite and ≤ 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Derive an independent generator (for splitting streams between the
    /// request generator, the dataset builder, etc. without correlation).
    pub fn fork(&mut self) -> Prng {
        Prng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = Prng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = Prng::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = Prng::new(13);
        let n = 200_000;
        let mean = 40.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.exponential(mean);
            assert!(v >= 0.0);
            sum += v;
        }
        let got = sum / n as f64;
        assert!((got - mean).abs() < mean * 0.02, "got={got}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Prng::new(19);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn fork_produces_uncorrelated_stream() {
        let mut a = Prng::new(23);
        let mut b = a.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        let h1 = mix64(1);
        let h2 = mix64(2);
        assert_ne!(h1, h2);
        // Hamming distance should be substantial for adjacent inputs.
        assert!((h1 ^ h2).count_ones() > 16);
    }
}
