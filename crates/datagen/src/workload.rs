//! Request workloads: arrival processes and key-selection policies.

use bda_core::{Dataset, Key, Ticks};

use crate::rng::Prng;

/// Key popularity model for generated queries.
#[derive(Debug, Clone)]
pub enum Popularity {
    /// Every broadcast record equally likely — the paper's setting.
    Uniform,
    /// Zipf-distributed popularity with exponent `s` over key rank:
    /// P(rank i) ∝ 1 / i^s. Provided for workload-sensitivity studies
    /// beyond the paper.
    Zipf(f64),
}

/// Generates query keys with a configurable *data availability*: the
/// probability that a requested key is actually broadcast (Fig. 5 sweeps
/// this from 0 % to 100 %; the baseline experiments use 100 %).
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    present_keys: Vec<Key>,
    absent_keys: Vec<Key>,
    availability: f64,
    popularity: Popularity,
    /// Precomputed Zipf CDF over ranks (empty for uniform popularity).
    zipf_cdf: Vec<f64>,
    rng: Prng,
}

impl QueryWorkload {
    /// Build a workload over `dataset`. `absent_keys` is the pool of keys
    /// guaranteed not to be broadcast (see
    /// [`crate::DatasetBuilder::build_with_absent_pool`]); it may be empty
    /// iff `availability == 1.0`.
    pub fn new(
        dataset: &Dataset,
        absent_keys: Vec<Key>,
        availability: f64,
        popularity: Popularity,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be in [0,1]"
        );
        assert!(
            availability >= 1.0 || !absent_keys.is_empty(),
            "availability < 100% requires an absent-key pool"
        );
        let zipf_cdf = match popularity {
            Popularity::Uniform => Vec::new(),
            Popularity::Zipf(s) => {
                let mut cdf = Vec::with_capacity(dataset.len());
                let mut acc = 0.0;
                for i in 1..=dataset.len() {
                    acc += 1.0 / (i as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for v in &mut cdf {
                    *v /= total;
                }
                cdf
            }
        };
        QueryWorkload {
            present_keys: dataset.keys().collect(),
            absent_keys,
            availability,
            popularity,
            zipf_cdf,
            rng: Prng::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Convenience constructor: uniform popularity, 100 % availability.
    pub fn uniform(dataset: &Dataset, seed: u64) -> Self {
        QueryWorkload::new(dataset, Vec::new(), 1.0, Popularity::Uniform, seed)
    }

    /// Draw the next query key.
    pub fn next_key(&mut self) -> Key {
        if self.rng.chance(self.availability) {
            match self.popularity {
                Popularity::Uniform => *self.rng.choose(&self.present_keys),
                Popularity::Zipf(_) => {
                    let u = self.rng.f64();
                    let rank = self.zipf_cdf.partition_point(|&c| c < u);
                    self.present_keys[rank.min(self.present_keys.len() - 1)]
                }
            }
        } else {
            *self.rng.choose(&self.absent_keys)
        }
    }

    /// The configured availability.
    pub fn availability(&self) -> f64 {
        self.availability
    }
}

/// Poisson request arrival process: exponentially distributed inter-arrival
/// times with a configurable mean, in byte-ticks (Table 1: "request
/// interval — exponential distribution").
#[derive(Debug, Clone)]
pub struct Arrivals {
    mean_interval: f64,
    now: f64,
    rng: Prng,
}

impl Arrivals {
    /// Arrival process with the given mean inter-arrival time (bytes).
    pub fn new(mean_interval: f64, seed: u64) -> Self {
        assert!(mean_interval > 0.0);
        Arrivals {
            mean_interval,
            now: 0.0,
            rng: Prng::new(seed ^ 0x5851_F42D_4C95_7F2D),
        }
    }

    /// Absolute time of the next request arrival.
    pub fn next_arrival(&mut self) -> Ticks {
        self.now += self.rng.exponential(self.mean_interval);
        self.now as Ticks
    }
}

impl Iterator for Arrivals {
    type Item = Ticks;

    fn next(&mut self) -> Option<Ticks> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::DatasetBuilder;

    fn fixtures() -> (Dataset, Vec<Key>) {
        DatasetBuilder::new(400, 21)
            .build_with_absent_pool(400)
            .unwrap()
    }

    #[test]
    fn full_availability_only_draws_present_keys() {
        let (ds, _) = fixtures();
        let mut w = QueryWorkload::uniform(&ds, 1);
        for _ in 0..500 {
            assert!(ds.contains(w.next_key()));
        }
    }

    #[test]
    fn zero_availability_only_draws_absent_keys() {
        let (ds, pool) = fixtures();
        let mut w = QueryWorkload::new(&ds, pool, 0.0, Popularity::Uniform, 2);
        for _ in 0..500 {
            assert!(!ds.contains(w.next_key()));
        }
    }

    #[test]
    fn mid_availability_mixes_at_the_right_rate() {
        let (ds, pool) = fixtures();
        let mut w = QueryWorkload::new(&ds, pool, 0.4, Popularity::Uniform, 3);
        let present = (0..20_000).filter(|_| ds.contains(w.next_key())).count();
        let rate = present as f64 / 20_000.0;
        assert!((rate - 0.4).abs() < 0.02, "rate={rate}");
        assert!((w.availability() - 0.4).abs() < f64::EPSILON);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let (ds, _) = fixtures();
        let mut w = QueryWorkload::new(&ds, Vec::new(), 1.0, Popularity::Zipf(1.0), 4);
        let hot = ds.record(0).key;
        let hot_hits = (0..20_000).filter(|_| w.next_key() == hot).count();
        // Under uniform popularity rank 0 would get ~50 hits; Zipf(1)
        // should give it many times that.
        assert!(hot_hits > 500, "hot_hits={hot_hits}");
    }

    #[test]
    #[should_panic(expected = "absent-key pool")]
    fn partial_availability_without_pool_panics() {
        let (ds, _) = fixtures();
        let _ = QueryWorkload::new(&ds, Vec::new(), 0.5, Popularity::Uniform, 5);
    }

    #[test]
    fn arrivals_are_monotone_with_correct_mean() {
        let mut a = Arrivals::new(1000.0, 6);
        let mut prev = 0;
        let n = 50_000;
        let mut last = 0;
        for _ in 0..n {
            let t = a.next_arrival();
            assert!(t >= prev);
            prev = t;
            last = t;
        }
        let mean = last as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean={mean}");
    }

    #[test]
    fn arrivals_iterator_matches_method() {
        let a = Arrivals::new(500.0, 7);
        let b = Arrivals::new(500.0, 7);
        let xs: Vec<Ticks> = a.take(10).collect();
        let mut b = b;
        let ys: Vec<Ticks> = (0..10).map(|_| b.next_arrival()).collect();
        assert_eq!(xs, ys);
    }
}
