//! Zipf generator contract: rank-frequency monotonicity and determinism.
//!
//! Broadcast-disk construction relies on two properties of the Zipf query
//! workload: (1) lower ranks really are requested more often — otherwise
//! stratifying low record indices onto fast disks would be misaligned with
//! the load — and (2) the generator is a pure function of its seed, so
//! experiments and golden corpora are reproducible.

use bda_core::Key;
use bda_datagen::{zipf_ranking, zipf_weights, DatasetBuilder, Popularity, QueryWorkload};

const N: usize = 200;
const DRAWS: usize = 60_000;

fn frequencies(theta: f64, seed: u64) -> Vec<u64> {
    let ds = DatasetBuilder::new(N, 0xBEEF).build().unwrap();
    let mut w = QueryWorkload::new(&ds, Vec::new(), 1.0, Popularity::Zipf(theta), seed);
    let mut hits = vec![0u64; N];
    for _ in 0..DRAWS {
        let key = w.next_key();
        let idx = ds.find(key).expect("full availability draws present keys");
        hits[idx] += 1;
    }
    hits
}

#[test]
fn empirical_rank_frequencies_are_monotone_in_deciles() {
    for theta in [0.4, 0.8, 1.2] {
        let hits = frequencies(theta, 42);
        // Per-rank counts are noisy; decile aggregates must be strictly
        // decreasing for any meaningful skew.
        let decile = N / 10;
        let sums: Vec<u64> = (0..10)
            .map(|d| hits[d * decile..(d + 1) * decile].iter().sum())
            .collect();
        for d in 1..10 {
            assert!(
                sums[d] < sums[d - 1],
                "θ={theta}: decile {d} ({}) not below decile {} ({})",
                sums[d],
                d - 1,
                sums[d - 1]
            );
        }
        // And the top rank must dominate the bottom rank decisively.
        assert!(
            hits[0] > hits[N - 1].saturating_mul(3),
            "θ={theta}: rank 0 ({}) vs rank {} ({})",
            hits[0],
            N - 1,
            hits[N - 1]
        );
    }
}

#[test]
fn empirical_frequencies_track_analytic_weights() {
    let theta = 0.8;
    let hits = frequencies(theta, 7);
    let weights = zipf_weights(N, theta);
    // Compare aggregate mass of the hot head: analytic vs empirical within
    // a few percent at 60k draws.
    let head = N / 10;
    let analytic: f64 = weights[..head].iter().sum();
    let empirical = hits[..head].iter().sum::<u64>() as f64 / DRAWS as f64;
    assert!(
        (analytic - empirical).abs() < 0.02,
        "head mass: analytic {analytic:.4} vs empirical {empirical:.4}"
    );
}

#[test]
fn generator_is_deterministic_per_seed_and_sensitive_to_it() {
    let ds = DatasetBuilder::new(64, 0xF00D).build().unwrap();
    let draw = |seed: u64| -> Vec<Key> {
        let mut w = QueryWorkload::new(&ds, Vec::new(), 1.0, Popularity::Zipf(0.8), seed);
        (0..200).map(|_| w.next_key()).collect()
    };
    assert_eq!(draw(1), draw(1), "same seed must replay identically");
    assert_ne!(draw(1), draw(2), "distinct seeds must decorrelate");
}

#[test]
fn ranking_matches_the_workloads_rank_to_key_mapping() {
    // The ranking helper says rank i = record index i; verify against the
    // generator by construction: rank 0 is the dataset's first key.
    let ds = DatasetBuilder::new(32, 0xABCD).build().unwrap();
    let ranking = zipf_ranking(ds.len());
    assert_eq!(ranking[0], 0);
    assert_eq!(ranking.len(), ds.len());
    // Strong skew: the most frequent drawn key must be the rank-0 key.
    let mut w = QueryWorkload::new(&ds, Vec::new(), 1.0, Popularity::Zipf(2.0), 9);
    let mut hits = vec![0u32; ds.len()];
    for _ in 0..5_000 {
        hits[ds.find(w.next_key()).unwrap()] += 1;
    }
    let top = (0..ds.len()).max_by_key(|&i| hits[i]).unwrap();
    assert_eq!(top as u32, ranking[0]);
}
