//! The hash-function family.
//!
//! The paper notes that "depending on how good the hashing function is,
//! simple hashing achieves different average tuning times" (§4.2). This
//! module provides a spectrum from a well-mixed default to deliberately
//! clustered functions, so that sensitivity can be measured.

use bda_core::Key;

/// SplitMix64 finalizer — the same mixer `bda-datagen` uses, duplicated
/// here so the hash crate stays dependency-minimal.
#[inline]
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A hash function mapping keys to slot numbers `0..na`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashFn {
    /// Mix the key through SplitMix64, then reduce modulo `na`. A "good"
    /// hash function: slot loads are essentially Poisson regardless of key
    /// structure. The default, and what the paper's headline results use.
    #[default]
    Mixed,
    /// Plain `key mod na` — the textbook choice. Good when keys are already
    /// well spread (as `bda-datagen` keys are), degenerate when they are
    /// structured.
    Modulo,
    /// A deliberately poor function: only every `factor`-th slot can be
    /// hit, so chains average `factor` records and tuning time grows
    /// accordingly. `factor = 1` degenerates to [`HashFn::Mixed`].
    Clustered {
        /// Collision multiplier (≥ 1).
        factor: u32,
    },
}

impl HashFn {
    /// Slot number of `key` among `na` slots (`na ≥ 1`).
    pub fn slot(&self, key: Key, na: u64) -> u64 {
        debug_assert!(na >= 1);
        match *self {
            HashFn::Mixed => mix64(key.value()) % na,
            HashFn::Modulo => key.value() % na,
            HashFn::Clustered { factor } => {
                let f = u64::from(factor.max(1));
                let eff = (na / f).max(1);
                (mix64(key.value()) % eff) * f.min(na)
            }
        }
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match *self {
            HashFn::Mixed => "mixed".into(),
            HashFn::Modulo => "modulo".into(),
            HashFn::Clustered { factor } => format!("clustered×{factor}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_in_range() {
        for f in [
            HashFn::Mixed,
            HashFn::Modulo,
            HashFn::Clustered { factor: 4 },
        ] {
            for k in 0..1000u64 {
                assert!(f.slot(Key(k.wrapping_mul(0x12345)), 97) < 97);
            }
        }
    }

    #[test]
    fn mixed_spreads_sequential_keys() {
        let na = 100u64;
        let mut counts = vec![0u32; na as usize];
        for k in 0..10_000u64 {
            counts[HashFn::Mixed.slot(Key(k), na) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 150 && min > 60, "min={min} max={max}");
    }

    #[test]
    fn modulo_keeps_structure() {
        // Sequential even keys with even na: only even slots hit — the
        // classic failure a "good" hash avoids.
        let na = 10u64;
        let hit: std::collections::HashSet<u64> = (0..100u64)
            .map(|k| HashFn::Modulo.slot(Key(k * 2), na))
            .collect();
        assert!(hit.iter().all(|s| s % 2 == 0));
    }

    #[test]
    fn clustered_hits_fewer_slots() {
        let na = 100u64;
        let hit: std::collections::HashSet<u64> = (0..5_000u64)
            .map(|k| HashFn::Clustered { factor: 5 }.slot(Key(mix_for_test(k)), na))
            .collect();
        assert!(
            hit.len() <= 20,
            "only every 5th slot reachable, got {}",
            hit.len()
        );
    }

    fn mix_for_test(v: u64) -> u64 {
        v.wrapping_mul(0x9E3779B97F4A7C15) ^ (v << 7)
    }

    #[test]
    fn labels() {
        assert_eq!(HashFn::Mixed.label(), "mixed");
        assert_eq!(HashFn::Modulo.label(), "modulo");
        assert_eq!(HashFn::Clustered { factor: 3 }.label(), "clustered×3");
    }
}
