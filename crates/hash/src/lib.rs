//! # bda-hash — the simple hashing broadcast access scheme
//!
//! Implements the hashing scheme of Imielinski, Viswanathan & Badrinath
//! (*Power efficient filtering of data on air*, EDBT 1994), as evaluated in
//! §2.2 of the paper. There are no separate index buckets: every data
//! bucket's *control part* carries the hashing parameters —
//!
//! * a **shift value** in each of the first `Na` (initially allocated)
//!   buckets, pointing at the bucket where the records with that position's
//!   hash value actually start (collisions displace chains rightward);
//! * an **offset to the beginning of the next broadcast** in the remaining
//!   (overflow) buckets.
//!
//! The client protocol (§2.2) hashes the key, dozes to the *hashing
//! position*, follows the shift value to the *shift position*, then scans
//! the collision chain. Tuning time is therefore a small constant plus the
//! average overflow-chain length — the best of all schemes — while access
//! time is the worst, because empty slots and displaced chains inflate the
//! cycle and a missed position costs a full extra cycle.
//!
//! The [`hash_fn::HashFn`] family includes deliberately poor functions so
//! the paper's remark that tuning time depends on "how good the hashing
//! function is" can be reproduced (`ablation_hash_quality` bench).

pub mod hash_fn;
pub mod scheme;

pub use hash_fn::HashFn;
pub use scheme::{HashEntry, HashMachine, HashPayload, HashScheme, HashSystem};
