//! Channel layout and client protocol for simple hashing.

use bda_core::{
    Action, BdaError, Bucket, BucketMeta, Channel, Dataset, Key, Params, ProtocolFault,
    ProtocolMachine, Result, Scheme, StaleResponse, System, Ticks, Verdict,
};

use crate::hash_fn::HashFn;

/// The record carried by a non-empty hash bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// The record's primary key.
    pub key: Key,
    /// The record's hash value (its home slot).
    pub hash: u64,
    /// Position of the record in the dataset (diagnostics).
    pub record_index: u32,
}

/// On-air contents of one hashing bucket: the paper's *control part*
/// (physical position, shift value or next-broadcast offset) plus the
/// *data part* (the record, absent for never-used slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPayload {
    /// Physical bucket number within the cycle.
    pub phys: u32,
    /// For the first `Na` buckets: how many buckets ahead the chain for
    /// hash value `phys` starts (0 = this very bucket). `None` in the
    /// overflow region.
    pub shift_buckets: Option<u32>,
    /// Forward byte delta from the end of this bucket to the start of the
    /// next broadcast cycle.
    pub next_cycle_delta: Ticks,
    /// The record, or `None` for an empty (allocated but unused) slot.
    pub entry: Option<HashEntry>,
}

/// The simple hashing scheme.
///
/// ```
/// use bda_core::{Dataset, DynSystem, Params, Record, Scheme};
/// use bda_hash::HashScheme;
///
/// let dataset = Dataset::new((0..50).map(|i| Record::keyed(i * 7)).collect()).unwrap();
/// let system = HashScheme::new().build(&dataset, &Params::paper()).unwrap();
/// let out = system.probe(bda_core::Key(21), 99_999);
/// assert!(out.found);
/// // Hashing's tuning time is a handful of buckets, independent of size:
/// assert!(out.probes <= 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HashScheme {
    hash: HashFn,
    /// Target load factor `Nr / Na`; `Na = ceil(Nr / load_factor)`.
    load_factor: f64,
}

impl Default for HashScheme {
    fn default() -> Self {
        HashScheme::new()
    }
}

impl HashScheme {
    /// Hashing with the default well-mixed function at load factor 1
    /// (`Na = Nr`, the paper's setting).
    pub fn new() -> Self {
        HashScheme {
            hash: HashFn::Mixed,
            load_factor: 1.0,
        }
    }

    /// Select the hash function.
    pub fn with_hash(mut self, hash: HashFn) -> Self {
        self.hash = hash;
        self
    }

    /// Select the load factor (`Nr / Na`), clamped to `(0, …]`. Values
    /// below 1 allocate spare slots (fewer collisions, longer cycle).
    pub fn with_load_factor(mut self, load: f64) -> Self {
        self.load_factor = if load > 0.0 { load } else { 1.0 };
        self
    }
}

/// A built simple-hashing broadcast.
#[derive(Debug)]
pub struct HashSystem {
    channel: Channel<HashPayload>,
    hash: HashFn,
    na: u64,
    num_collisions: usize,
    num_empty: usize,
}

impl HashSystem {
    /// Number of initially allocated buckets `Na`.
    pub fn na(&self) -> u64 {
        self.na
    }

    /// Number of colliding buckets `Nc` (records displaced from their home
    /// slot).
    pub fn num_collisions(&self) -> usize {
        self.num_collisions
    }

    /// Number of empty (allocated but unused) slots in the cycle.
    pub fn num_empty(&self) -> usize {
        self.num_empty
    }

    /// The hash function in use.
    pub fn hash_fn(&self) -> HashFn {
        self.hash
    }
}

impl Scheme for HashScheme {
    type System = HashSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let nr = dataset.len();
        let na = ((nr as f64 / self.load_factor).ceil() as u64).max(1);

        // Bucket chains per slot, preserving key order within a chain.
        let mut chains: Vec<Vec<usize>> = vec![Vec::new(); na as usize];
        for (i, r) in dataset.records().iter().enumerate() {
            chains[self.hash.slot(r.key, na) as usize].push(i);
        }

        // Physical layout: concatenated chains; empty slots still occupy
        // one (empty) bucket so the first Na positions always exist.
        let mut chain_start = vec![0u32; na as usize];
        let mut phys_entries: Vec<Option<HashEntry>> = Vec::with_capacity(nr + na as usize);
        let mut num_collisions = 0;
        let mut num_empty = 0;
        for (h, chain) in chains.iter().enumerate() {
            chain_start[h] = phys_entries.len() as u32;
            if chain.is_empty() {
                phys_entries.push(None);
                num_empty += 1;
            } else {
                num_collisions += chain.len() - 1;
                for &ri in chain {
                    phys_entries.push(Some(HashEntry {
                        key: dataset.record(ri).key,
                        hash: h as u64,
                        record_index: ri as u32,
                    }));
                }
            }
        }

        let n = phys_entries.len();
        if (na as usize) > n {
            // Cannot happen: every slot contributes ≥ 1 bucket.
            return Err(BdaError::BuildError(
                "hashing layout shorter than Na".into(),
            ));
        }
        let size = params.data_bucket_size();
        let buckets = phys_entries
            .into_iter()
            .enumerate()
            .map(|(phys, entry)| {
                let shift_buckets = if (phys as u64) < na {
                    Some(chain_start[phys] - phys as u32)
                } else {
                    None
                };
                Bucket::new(
                    size,
                    HashPayload {
                        phys: phys as u32,
                        shift_buckets,
                        next_cycle_delta: ((n - phys - 1) as Ticks) * Ticks::from(size),
                        entry,
                    },
                )
            })
            .collect();

        Ok(HashSystem {
            channel: Channel::new(buckets)?,
            hash: self.hash,
            na,
            num_collisions,
            num_empty,
        })
    }
}

impl System for HashSystem {
    type Payload = HashPayload;
    type Machine = HashMachine;

    fn scheme_name(&self) -> &'static str {
        "hashing"
    }

    fn channel(&self) -> &Channel<HashPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<HashPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> HashMachine {
        HashMachine {
            key,
            target: self.hash.slot(key, self.na),
            state: St::Locate,
            scanned: 0,
            num_records: self.channel.num_buckets() as u32,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Navigating to the hashing position (physical bucket `target`).
    Locate,
    /// Reading the bucket at the hashing position (to get the shift value).
    AtSlot,
    /// Scanning the collision chain at the shift position.
    Scan,
}

/// Client protocol for simple hashing (paper §2.2).
#[derive(Debug, Clone)]
pub struct HashMachine {
    key: Key,
    /// `H(K)` — the key's slot, which is also a physical position within
    /// the first `Na` buckets.
    target: u64,
    state: St,
    /// Chain buckets inspected so far (terminates degenerate layouts where
    /// a single chain wraps the entire cycle).
    scanned: u32,
    /// Upper bound on any chain's length.
    num_records: u32,
}

impl HashMachine {
    /// Inspect a chain bucket at the shift position.
    fn scan(&mut self, p: &HashPayload) -> Action {
        self.scanned += 1;
        match p.entry {
            Some(e) if e.hash == self.target => {
                if e.key == self.key {
                    // Reading the bucket is the download.
                    Action::Finish(Verdict::found())
                } else if self.scanned >= self.num_records {
                    // Degenerate layout: the chain wraps the whole cycle
                    // (every record shares the slot) — all inspected.
                    Action::Finish(Verdict::not_found())
                } else {
                    // A colliding record: keep listening to the chain.
                    self.state = St::Scan;
                    Action::ReadNext
                }
            }
            // Empty slot or a different hash value: chain exhausted.
            _ => Action::Finish(Verdict::not_found()),
        }
    }
}

impl ProtocolMachine<HashPayload> for HashMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.state = St::Locate;
        self.scanned = 0;
        Action::ReadNext
    }

    /// Every hashing bucket carries both a control part and (maybe) a
    /// record, so classification follows what the read *delivers*: the
    /// client's own record makes it a data read, anything else is chain
    /// navigation.
    fn bucket_kind(&self, payload: &HashPayload) -> bda_core::BucketKind {
        match payload.entry {
            Some(e) if e.key == self.key => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    fn on_bucket(&mut self, p: &HashPayload, meta: BucketMeta) -> Action {
        let size = Ticks::from(meta.size);
        match self.state {
            St::Locate => {
                let phys = u64::from(p.phys);
                if p.shift_buckets.is_none() || phys > self.target {
                    // Overflow region, or the hashing position has already
                    // passed: wait for the beginning of the next broadcast
                    // and restart the protocol (costs one extra bucket read
                    // there, exactly as the paper's Tt analysis accounts).
                    Action::DozeTo(meta.end + p.next_cycle_delta)
                } else if phys == self.target {
                    // Already at the hashing position.
                    self.state = St::AtSlot;
                    self.on_slot_bucket(p, meta)
                } else {
                    // Buckets are uniform, so the arrival time of physical
                    // position `target` is pure arithmetic.
                    self.state = St::AtSlot;
                    Action::DozeTo(meta.end + (self.target - phys - 1) * size)
                }
            }
            St::AtSlot => self.on_slot_bucket(p, meta),
            St::Scan => self.scan(p),
        }
    }

    /// `target`, the doze arithmetic, and `num_records` all assume the
    /// cycle geometry (`Na`, chain layout) of the program the machine was
    /// built against; a rebuilt program invalidates every one of them.
    /// Respawn restarts the probe from scratch on the live program.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }
}

impl HashMachine {
    fn on_slot_bucket(&mut self, p: &HashPayload, meta: BucketMeta) -> Action {
        // Both checks guard against malformed buckets reaching the client:
        // a probe that lands off its computed slot, or an allocated bucket
        // missing its shift value. Typed faults, not worker panics.
        if u64::from(p.phys) != self.target {
            return Action::Fail(ProtocolFault::OffPosition);
        }
        let shift = match p.shift_buckets {
            Some(s) => s,
            None => return Action::Fail(ProtocolFault::MissingShift),
        };
        if shift == 0 {
            // The chain starts right here.
            self.scan(p)
        } else {
            self.state = St::Scan;
            Action::DozeTo(meta.end + Ticks::from(shift - 1) * Ticks::from(meta.size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        // Spread keys via a multiplier so Mixed and Modulo both behave.
        Dataset::from_unsorted(
            (0..n)
                .map(|i| Record::keyed(i.wrapping_mul(0x9E3779B97F4A7C15) >> 3))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn layout_accounting_matches_paper_identities() {
        let d = ds(500);
        let sys = HashScheme::new().build(&d, &Params::paper()).unwrap();
        // N = Na + Nc  (empty slots keep the identity: N = Nr + E,
        // Na + Nc = Na + Nr − (Na − E) = Nr + E).
        assert_eq!(
            sys.channel().num_buckets(),
            sys.na() as usize + sys.num_collisions()
        );
        assert_eq!(sys.channel().num_buckets(), 500 + sys.num_empty());
    }

    #[test]
    fn every_key_found_from_every_alignment() {
        let d = ds(200);
        let p = Params::paper();
        let sys = HashScheme::new().build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        for r in d.records() {
            for s in 0..8u64 {
                let out = sys.probe(r.key, s * cycle / 8 + 31);
                assert!(out.found, "key {} from slot {s}", r.key);
                assert!(!out.aborted);
                assert!(out.tuning <= out.access);
            }
        }
    }

    #[test]
    fn absent_keys_fail_after_reading_the_chain() {
        let d = ds(200);
        let p = Params::paper();
        let sys = HashScheme::new().build(&d, &p).unwrap();
        for miss in [3u64, 777, 424242] {
            let key = Key(miss.wrapping_mul(0x2545F4914F6CDD1D));
            if d.contains(key) {
                continue;
            }
            let out = sys.probe(key, 4321);
            assert!(!out.found);
            assert!(!out.aborted);
            // Locate (≤ 2 reads) + slot read + chain scan: small.
            assert!(out.probes <= 4 + 8, "probes={}", out.probes);
        }
    }

    #[test]
    fn tuning_time_is_flat_and_small() {
        let d = ds(1000);
        let p = Params::paper();
        let sys = HashScheme::new().build(&d, &p).unwrap();
        let dt = u64::from(p.data_bucket_size());
        let cycle = sys.channel().cycle_len();
        let mut total = 0u64;
        let mut n = 0u64;
        for (i, r) in d.records().iter().enumerate().step_by(17) {
            let out = sys.probe(r.key, (i as u64) * 131 % cycle);
            assert!(out.found);
            total += out.tuning;
            n += 1;
        }
        let avg = total / n;
        // Paper: ~4 probes + average chain overflow. Poisson(1) chains give
        // ≈ 0.6 extra reads; stay well under 6 buckets.
        assert!(avg <= 6 * dt, "avg tuning {avg} vs dt {dt}");
    }

    #[test]
    fn clustered_hash_worsens_tuning_but_stays_correct() {
        let d = ds(600);
        let p = Params::paper();
        let good = HashScheme::new().build(&d, &p).unwrap();
        let bad = HashScheme::new()
            .with_hash(HashFn::Clustered { factor: 8 })
            .build(&d, &p)
            .unwrap();
        assert!(bad.num_collisions() > good.num_collisions());
        let avg = |sys: &HashSystem| {
            let cycle = sys.channel().cycle_len();
            let mut total = 0u64;
            let mut n = 0u64;
            for (i, r) in d.records().iter().enumerate().step_by(13) {
                let out = sys.probe(r.key, (i as u64) * 977 % cycle);
                assert!(out.found);
                total += out.tuning;
                n += 1;
            }
            total as f64 / n as f64
        };
        // Chains average `factor` records, so scanning adds ≈ factor/2
        // extra bucket reads on top of the ~4-probe baseline.
        let dt = f64::from(p.data_bucket_size());
        assert!(
            avg(&bad) > avg(&good) + 2.0 * dt,
            "clustering must hurt tuning: good={} bad={}",
            avg(&good),
            avg(&bad)
        );
    }

    #[test]
    fn spare_slots_reduce_collisions() {
        let d = ds(600);
        let p = Params::paper();
        let tight = HashScheme::new().build(&d, &p).unwrap();
        let roomy = HashScheme::new()
            .with_load_factor(0.5)
            .build(&d, &p)
            .unwrap();
        assert!(roomy.na() > tight.na());
        assert!(roomy.num_collisions() < tight.num_collisions());
        // Still correct.
        for r in d.records().iter().step_by(29) {
            assert!(roomy.probe(r.key, 999).found);
        }
    }

    #[test]
    fn degenerate_single_chain_terminates() {
        // Nr = 1: the only chain wraps the whole cycle; an absent key's
        // scan must terminate after inspecting every record (regression
        // test for an unbounded chain walk).
        let d = Dataset::new(vec![Record::keyed(42)]).unwrap();
        let sys = HashScheme::new().build(&d, &Params::paper()).unwrap();
        let hit = sys.probe(Key(42), 0);
        assert!(hit.found && !hit.aborted);
        let miss = sys.probe(Key(7), 0);
        assert!(!miss.found && !miss.aborted);
        assert!(miss.probes <= 3, "probes={}", miss.probes);

        // A clustered hash mapping many records to one slot exercises the
        // same bound at larger sizes.
        let d = ds(40);
        let sys = HashScheme::new()
            .with_hash(HashFn::Clustered { factor: 64 })
            .build(&d, &Params::paper())
            .unwrap();
        for r in d.records() {
            assert!(sys.probe(r.key, 99).found);
        }
        let miss = sys.probe(Key(1), 99);
        assert!(!miss.found && !miss.aborted);
    }

    #[test]
    fn malformed_buckets_fail_typed_not_panic() {
        let d = ds(16);
        let sys = HashScheme::new().build(&d, &Params::paper()).unwrap();
        let meta = BucketMeta {
            index: 0,
            start: 0,
            end: 108,
            size: 108,
            version: 0,
        };

        // A probe that lands off its computed physical slot.
        let mut m = sys.query(d.records()[0].key);
        m.state = St::AtSlot;
        let off = HashPayload {
            phys: m.target as u32 + 1,
            shift_buckets: Some(0),
            next_cycle_delta: 0,
            entry: None,
        };
        assert_eq!(
            m.on_bucket(&off, meta),
            Action::Fail(ProtocolFault::OffPosition)
        );

        // An allocated bucket missing its shift value.
        let mut m = sys.query(d.records()[0].key);
        m.state = St::AtSlot;
        let noshift = HashPayload {
            phys: m.target as u32,
            shift_buckets: None,
            next_cycle_delta: 0,
            entry: None,
        };
        assert_eq!(
            m.on_bucket(&noshift, meta),
            Action::Fail(ProtocolFault::MissingShift)
        );
    }

    #[test]
    fn shift_values_point_at_chain_starts() {
        let d = ds(300);
        let sys = HashScheme::new().build(&d, &Params::paper()).unwrap();
        let ch = sys.channel();
        for b in ch.buckets() {
            let p = &b.payload;
            if let Some(shift) = p.shift_buckets {
                let tgt = ch.bucket((p.phys + shift) as usize).payload;
                // The chain-start bucket is either empty (hash value unused)
                // or begins the chain for hash value == phys.
                if let Some(e) = tgt.entry {
                    assert!(e.hash >= u64::from(p.phys));
                    if e.hash == u64::from(p.phys) && shift > 0 {
                        // The bucket before the chain start must not belong
                        // to the same hash value.
                        let prev = ch.bucket((p.phys + shift - 1) as usize).payload;
                        assert!(prev.entry.map_or(true, |pe| pe.hash != e.hash));
                    }
                }
            }
        }
    }
}
