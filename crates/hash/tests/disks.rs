//! Broadcast-disk wrapping of the hashing scheme: the chunked minor-cycle
//! construction must answer every query correctly from every alignment,
//! stay exact about verdicts, survive lossy channels, and reduce to the
//! plain hashing program at D = 1.

use bda_core::{
    Dataset, DiskConfig, DiskScheme, DynSystem, ErrorModel, Key, Params, Record, RetryPolicy,
    Scheme, System,
};
use bda_hash::HashScheme;

fn dataset(n: u64) -> Dataset {
    Dataset::new((0..n).map(|i| Record::keyed(i * 7 + 3)).collect()).unwrap()
}

#[test]
fn d1_wrapper_is_bit_identical_to_plain_hashing() {
    let ds = dataset(50);
    let p = Params::paper();
    let plain = HashScheme::new().build(&ds, &p).unwrap();
    let disks = DiskScheme::new(HashScheme::new(), DiskConfig::new(1))
        .build(&ds, &p)
        .unwrap();
    assert_eq!(plain.channel().num_buckets(), disks.channel().num_buckets());
    assert_eq!(plain.channel().cycle_len(), disks.channel().cycle_len());
    let cycle = plain.channel().cycle_len();
    for k in 0..50u64 {
        for s in 0..11u64 {
            let t = s * cycle / 11 + 5;
            assert_eq!(
                plain.probe(Key(k * 7 + 3), t),
                disks.probe(Key(k * 7 + 3), t),
                "key {k} t={t}"
            );
        }
    }
    // Absent keys too.
    for k in [0u64, 1, 9, 351] {
        assert_eq!(plain.probe(Key(k), 13), disks.probe(Key(k), 13));
    }
}

#[test]
fn every_key_found_from_every_alignment_at_d3() {
    let ds = dataset(70);
    let p = Params::paper();
    let sys = DiskScheme::new(HashScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    for k in 0..70u64 {
        for s in 0..13u64 {
            let out = sys.probe(Key(k * 7 + 3), s * cycle / 13 + 1);
            assert!(out.found, "key {k} slot {s}");
            assert!(!out.aborted);
            assert!(out.tuning <= out.access);
        }
    }
}

#[test]
fn absent_keys_are_rejected_not_fabricated_at_d3() {
    let ds = dataset(70);
    let p = Params::paper();
    let sys = DiskScheme::new(HashScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    // Keys below, between and above the broadcast range.
    for k in [0u64, 1, 4, 11, 352, 500, 1_000_000] {
        for s in 0..7u64 {
            let out = sys.probe(Key(k), s * cycle / 7 + 3);
            assert!(!out.found, "phantom key {k} slot {s}");
            assert!(!out.aborted);
        }
    }
}

#[test]
fn hot_keys_wait_less_than_cold_keys_at_d3() {
    let ds = dataset(70);
    let p = Params::paper();
    let sys = DiskScheme::new(HashScheme::new(), DiskConfig::new(3))
        .build(&ds, &p)
        .unwrap();
    let cycle = sys.cycle_len();
    let avg = |key: Key| {
        let mut total = 0u64;
        for s in 0..200u64 {
            let out = sys.probe(key, s * cycle / 200 + 1);
            assert!(out.found);
            total += out.access;
        }
        total / 200
    };
    // Record 0 sits on the fastest disk (4×/cycle), record 69 on the
    // slowest (1×/cycle).
    let hot = avg(Key(3));
    let cold = avg(Key(69 * 7 + 3));
    assert!(hot < cold, "hot={hot} cold={cold}");
}

#[test]
fn lossy_channel_still_terminates_with_exact_verdicts() {
    let ds = dataset(40);
    let p = Params::paper();
    let sys = DiskScheme::new(HashScheme::new(), DiskConfig::new(2))
        .build(&ds, &p)
        .unwrap();
    let errors = ErrorModel::new(0.15, 0xD15C);
    for k in 0..40u64 {
        let out = sys.probe_with_errors(Key(k * 7 + 3), 17 * k, errors);
        assert!(out.found, "key {k} lost under 15% loss");
        assert!(!out.aborted);
    }
    for k in [0u64, 5, 999] {
        let out = sys.probe_with_policy(Key(k), 11, errors, RetryPolicy::bounded(4));
        assert!(!out.found, "phantom key {k} under loss");
    }
}
