//! Property tests for the hashing layout and protocol against a reference
//! model.

use bda_core::{Dataset, DynSystem, Key, Params, Record, Scheme, System};
use bda_hash::{HashFn, HashScheme};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::btree_set(0u64..1 << 48, 1..300)
        .prop_map(|keys| Dataset::new(keys.into_iter().map(Record::keyed).collect()).unwrap())
}

fn arb_hash() -> impl Strategy<Value = HashFn> {
    prop_oneof![
        Just(HashFn::Mixed),
        Just(HashFn::Modulo),
        (2u32..16).prop_map(|factor| HashFn::Clustered { factor }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layout: chains are contiguous runs of equal hash values in
    /// non-decreasing order; shift values point at the first bucket of the
    /// slot's chain; the paper's `N = Na + Nc` identity holds.
    #[test]
    fn layout_reference_model(ds in arb_dataset(), hash in arb_hash(), load in 2u32..=10) {
        let scheme = HashScheme::new()
            .with_hash(hash)
            .with_load_factor(f64::from(load) / 5.0);
        let sys = scheme.build(&ds, &Params::paper()).unwrap();
        let ch = System::channel(&sys);

        prop_assert_eq!(ch.num_buckets(), sys.na() as usize + sys.num_collisions());
        prop_assert_eq!(ch.num_buckets(), ds.len() + sys.num_empty());

        // Record hash values are non-decreasing across the cycle.
        let mut last = 0u64;
        let mut seen = 0usize;
        for b in ch.buckets() {
            if let Some(e) = &b.payload.entry {
                prop_assert!(e.hash >= last);
                prop_assert_eq!(e.hash, sys.hash_fn().slot(e.key, sys.na()));
                last = e.hash;
                seen += 1;
            }
        }
        prop_assert_eq!(seen, ds.len(), "every record on air exactly once");

        // Shift targets: position phys+shift holds the first record of
        // chain `phys` (or a non-matching/empty bucket iff the chain is
        // empty).
        for b in ch.buckets() {
            let p = &b.payload;
            if let Some(shift) = p.shift_buckets {
                let tgt = &ch.bucket((p.phys + shift) as usize).payload;
                let chain_exists = ds
                    .records()
                    .iter()
                    .any(|r| sys.hash_fn().slot(r.key, sys.na()) == u64::from(p.phys));
                match (&tgt.entry, chain_exists) {
                    (Some(e), true) => {
                        prop_assert_eq!(e.hash, u64::from(p.phys), "chain head");
                        if shift > 0 {
                            let prev = &ch.bucket((p.phys + shift - 1) as usize).payload;
                            if let Some(pe) = &prev.entry {
                                prop_assert!(pe.hash < e.hash, "chain start boundary");
                            }
                        }
                    }
                    (_, false) => { /* empty chain: any terminator is fine */ }
                    (None, true) => prop_assert!(false, "chain head missing"),
                }
            }
        }
    }

    /// Protocol: exact retrieval for arbitrary keys, hash functions, load
    /// factors and tune-ins.
    #[test]
    fn protocol_is_exact(
        ds in arb_dataset(),
        hash in arb_hash(),
        t in 0u64..1 << 40,
        probe_key in 0u64..1 << 48,
        idx in any::<proptest::sample::Index>(),
    ) {
        let sys = HashScheme::new().with_hash(hash).build(&ds, &Params::paper()).unwrap();
        // A present key.
        let key = ds.record(idx.index(ds.len())).key;
        let out = sys.probe(key, t);
        prop_assert!(out.found && !out.aborted);
        prop_assert!(out.tuning <= out.access);
        // An arbitrary key: found iff broadcast.
        let out = sys.probe(Key(probe_key), t);
        prop_assert_eq!(out.found, ds.contains(Key(probe_key)));
        prop_assert!(!out.aborted);
    }
}
