//! # bda-hybrid — index tree + signatures on one broadcast
//!
//! The paper's §1 points at hybrid schemes "taking advantages of both index
//! tree and signature indexing techniques" (its references \[3\] and \[4\], Hu,
//! Lee & Lee, CIKM'99 / ICDE'00). This crate implements that combination on
//! top of the workspace's substrates:
//!
//! * the broadcast carries a **distributed B+-tree index** over the primary
//!   key (replicated upper levels, control indexes — exactly
//!   `bda-btree`'s layout), so *key lookups* pay only `O(k)` probes;
//! * every data bucket is preceded by its **record signature**
//!   (`bda-signature`'s superimposed coding), so *multi-attribute queries*
//!   can filter the data segments without understanding the tree — and key
//!   clients doze over the signature buckets entirely.
//!
//! The price is a cycle longer by one signature bucket per record (worse
//! access time than pure distributed indexing) in exchange for attribute
//! queries that pure B+-tree schemes cannot answer at all, at tuning cost
//! close to the pure signature scheme's. The `ext_hybrid` bench quantifies
//! both sides.
//!
//! Two client machines share the channel:
//!
//! * [`HybridKeyMachine`] — the distributed-indexing access protocol
//!   (delegates to [`bda_btree::BTreeMachine`]); leaf index entries point
//!   *past* the signature straight at the data bucket;
//! * [`HybridAttrMachine`] — the signature scan: read each record
//!   signature, doze over the data bucket unless it matches, and skip
//!   index segments wholesale via next-signature pointers.

pub mod machines;
pub mod payload;
pub mod scheme;

pub use machines::{HybridAttrMachine, HybridKeyMachine};
pub use payload::HybridPayload;
pub use scheme::{HybridScheme, HybridSystem};
