//! Client protocols for the hybrid broadcast.

use bda_btree::{BTreeMachine, BTreePayload, DataBucket};
use bda_core::{Action, BucketMeta, Coverage, Key, ProtocolMachine, StaleResponse, Ticks, Verdict};
use bda_signature::{QueryTarget, Signature};

use crate::payload::HybridPayload;

/// Key-lookup protocol: the distributed-indexing access protocol, running
/// over the hybrid channel.
///
/// Delegates to [`BTreeMachine`] by presenting each hybrid bucket in
/// B+-tree clothing: index buckets pass through, data buckets lose their
/// signature-navigation fields, and signature buckets (only ever seen as
/// the first complete bucket after tune-in) act as plain buckets carrying
/// the next-index-segment offset. Leaf index entries point directly at data
/// buckets, so a key client never spends tuning time on signatures.
#[derive(Debug, Clone)]
pub struct HybridKeyMachine {
    inner: BTreeMachine,
}

impl HybridKeyMachine {
    /// A query for `key` over a tree of `num_levels` levels.
    pub fn new(key: Key, num_levels: u32) -> Self {
        HybridKeyMachine {
            inner: BTreeMachine::new(key, num_levels),
        }
    }
}

impl ProtocolMachine<HybridPayload> for HybridKeyMachine {
    fn start(&mut self, tune_in: Ticks) -> Action {
        self.inner.start(tune_in)
    }

    /// The inner B+-tree descent holds pointers computed against the
    /// build-time layout; a version change invalidates them all.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }

    /// Index *and* signature buckets are navigation for a key client (it
    /// never inspects signatures, only rides past them); data buckets are
    /// data.
    fn bucket_kind(&self, payload: &HybridPayload) -> bda_core::BucketKind {
        match payload {
            HybridPayload::Data { .. } => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    fn on_bucket(&mut self, payload: &HybridPayload, meta: BucketMeta) -> Action {
        match payload {
            HybridPayload::Index { node, .. } => self
                .inner
                .on_bucket(&BTreePayload::Index(node.clone()), meta),
            HybridPayload::Data {
                key,
                record_index,
                next_seg_delta,
                ..
            } => self.inner.on_bucket(
                &BTreePayload::Data(DataBucket {
                    key: *key,
                    record_index: *record_index,
                    next_seg_delta: *next_seg_delta,
                }),
                meta,
            ),
            HybridPayload::Sig { next_seg_delta, .. } => {
                // Only reachable as the tune-in alignment read: act as an
                // anonymous bucket carrying the next-segment offset. The
                // sentinel key can never equal a real query key because the
                // dataset's keys are < MAX by construction of the walk —
                // and the inner machine only compares keys in its Fetch
                // state, which never targets a signature bucket.
                self.inner.on_bucket(
                    &BTreePayload::Data(DataBucket {
                        key: Key::MAX,
                        record_index: u32::MAX,
                        next_seg_delta: *next_seg_delta,
                    }),
                    meta,
                )
            }
        }
    }
}

/// Attribute-query protocol: scan record signatures, doze over data buckets
/// unless the signature matches, and skip index segments via
/// next-signature pointers.
#[derive(Debug, Clone)]
pub struct HybridAttrMachine {
    target: QueryTarget,
    query: Signature,
    data_size: Ticks,
    false_drops: u32,
    /// Delta from the end of the current record's data bucket to the next
    /// signature (captured from the signature bucket).
    next_after: Ticks,
    checking_data: bool,
    /// Records ruled out so far; absence is concluded at full coverage.
    coverage: Coverage,
}

impl HybridAttrMachine {
    /// A query for any record carrying attribute `value`; `query` is the
    /// attribute's signature.
    pub fn new(target: QueryTarget, query: Signature, num_records: u32, data_size: Ticks) -> Self {
        HybridAttrMachine {
            target,
            query,
            data_size,
            false_drops: 0,
            next_after: 0,
            checking_data: false,
            coverage: Coverage::new(num_records),
        }
    }

    fn reset(&mut self) {
        self.coverage.clear();
        self.false_drops = 0;
        self.next_after = 0;
        self.checking_data = false;
    }
}

impl ProtocolMachine<HybridPayload> for HybridAttrMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.reset();
        Action::ReadNext
    }

    /// Signatures and index segments are navigation; record downloads
    /// (hits and false drops alike) are data reads.
    fn bucket_kind(&self, payload: &HybridPayload) -> bda_core::BucketKind {
        match payload {
            HybridPayload::Data { .. } => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    fn on_bucket(&mut self, payload: &HybridPayload, meta: BucketMeta) -> Action {
        match payload {
            HybridPayload::Sig {
                sig,
                record_index,
                next_sig_after_data,
                ..
            } => {
                self.next_after = *next_sig_after_data;
                if sig.matches(&self.query) {
                    self.checking_data = true;
                    Action::ReadNext
                } else {
                    self.coverage.mark(*record_index);
                    if self.coverage.is_full() {
                        Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                    } else {
                        // Skip this record's data bucket and any index
                        // segment behind it, straight to the next signature.
                        Action::DozeTo(meta.end + self.data_size + self.next_after)
                    }
                }
            }
            HybridPayload::Data {
                key,
                attrs,
                record_index,
                ..
            } => {
                if self.target.satisfied_by(*key, attrs) {
                    // (Alignment reads may legitimately land on the target.)
                    return Action::Finish(Verdict::found().with_false_drops(self.false_drops));
                }
                let was_checking = std::mem::take(&mut self.checking_data);
                if was_checking {
                    self.false_drops += 1;
                }
                self.coverage.mark(*record_index);
                if self.coverage.is_full() {
                    Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                } else if was_checking {
                    Action::DozeTo(meta.end + self.next_after)
                } else {
                    // Alignment read: hop to the next signature bucket.
                    Action::DozeTo(meta.end + payload.next_sig_delta())
                }
            }
            HybridPayload::Index { .. } => {
                // Alignment read after tune-in (or recovery): hop to the
                // next signature bucket.
                Action::DozeTo(meta.end + payload.next_sig_delta())
            }
        }
    }

    fn on_corrupt(&mut self, _meta: BucketMeta) -> Action {
        // The corrupted record stays uncovered (re-examined next cycle);
        // realign on the next readable bucket.
        self.next_after = 0;
        self.checking_data = false;
        Action::ReadNext
    }

    /// Coverage indices and the signature frame geometry are bound to the
    /// build-time program; respawn restarts the attribute scan.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }
}

#[cfg(test)]
mod tests {
    //! Machine-level tests use hand-built payloads; end-to-end coverage
    //! lives in `scheme.rs` and the integration suite.

    use super::*;
    use bda_signature::SigParams;

    fn meta(end: Ticks) -> BucketMeta {
        BucketMeta {
            index: 0,
            start: end - 24,
            end,
            size: 24,
            version: 0,
        }
    }

    #[test]
    fn attr_machine_skips_nonmatching_records() {
        let sigp = SigParams::default();
        let query = sigp.attr_signature(42);
        let mut m = HybridAttrMachine::new(QueryTarget::Attribute(42), query, 10, 533);
        assert_eq!(m.start(0), Action::ReadNext);
        // Non-matching signature with 100 bytes of index segment after the
        // data bucket: doze data + 100.
        let sig = HybridPayload::Sig {
            sig: sigp.attr_signature(7),
            record_index: 0,
            next_seg_delta: 0,
            next_sig_after_data: 100,
        };
        assert_eq!(m.on_bucket(&sig, meta(24)), Action::DozeTo(24 + 533 + 100));
    }

    #[test]
    fn attr_machine_downloads_matches_and_counts_false_drops() {
        let sigp = SigParams::default();
        let query = sigp.attr_signature(42);
        let mut m = HybridAttrMachine::new(QueryTarget::Attribute(42), query.clone(), 10, 533);
        m.start(0);
        // Matching signature → read the data bucket.
        let mut rec_sig = sigp.attr_signature(1);
        rec_sig.superimpose(&query);
        let sig = HybridPayload::Sig {
            sig: rec_sig,
            record_index: 3,
            next_seg_delta: 0,
            next_sig_after_data: 0,
        };
        assert_eq!(m.on_bucket(&sig, meta(24)), Action::ReadNext);
        // Wrong record (false drop) → continue at next signature.
        let data = HybridPayload::Data {
            key: Key(1),
            record_index: 3,
            attrs: vec![1, 2].into(),
            next_seg_delta: 0,
            next_sig_delta: 0,
        };
        assert_eq!(m.on_bucket(&data, meta(600)), Action::DozeTo(600));
        // Right record → found with one false drop.
        let mut rec_sig = sigp.attr_signature(9);
        rec_sig.superimpose(&query);
        let sig = HybridPayload::Sig {
            sig: rec_sig,
            record_index: 5,
            next_seg_delta: 0,
            next_sig_after_data: 0,
        };
        assert_eq!(m.on_bucket(&sig, meta(700)), Action::ReadNext);
        let data = HybridPayload::Data {
            key: Key(9),
            record_index: 5,
            attrs: vec![42].into(),
            next_seg_delta: 0,
            next_sig_delta: 0,
        };
        assert_eq!(
            m.on_bucket(&data, meta(1300)),
            Action::Finish(Verdict::found().with_false_drops(1))
        );
    }

    #[test]
    fn alignment_reads_hop_to_next_signature() {
        let sigp = SigParams::default();
        let mut m =
            HybridAttrMachine::new(QueryTarget::Attribute(1), sigp.attr_signature(1), 5, 533);
        m.start(0);
        let idx = HybridPayload::Index {
            node: bda_btree::IndexBucket {
                level: 0,
                node: 0,
                min_key: Key(0),
                max_key: Key(10),
                segment_start: true,
                entries: vec![],
                control: vec![],
                next_seg_delta: 0,
            },
            next_sig_delta: 77,
        };
        assert_eq!(m.on_bucket(&idx, meta(24)), Action::DozeTo(24 + 77));
    }
}
