//! On-air bucket contents for the hybrid scheme.

use bda_btree::IndexBucket;
use bda_core::{Key, Ticks};
use bda_signature::Signature;

/// Bucket payload for the hybrid index-tree + signature broadcast.
///
/// Every variant carries two navigation offsets (forward byte deltas from
/// the end of the bucket): `next_seg_delta` toward the next *index segment*
/// (used by key clients orienting after tune-in) and `next_sig_delta`
/// toward the next *signature bucket* (used by attribute clients aligning
/// after tune-in and skipping index segments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridPayload {
    /// A B+-tree index bucket (its own `next_seg_delta` lives inside).
    Index {
        /// The tree node, identical in shape to distributed indexing.
        node: IndexBucket,
        /// Forward delta to the next signature bucket.
        next_sig_delta: Ticks,
    },
    /// A record-signature bucket, immediately preceding its data bucket.
    Sig {
        /// The record's superimposed signature.
        sig: Signature,
        /// Position of the signed record (diagnostics).
        record_index: u32,
        /// Forward delta to the next index segment.
        next_seg_delta: Ticks,
        /// Forward delta from the end of the *following data bucket* to
        /// the next signature bucket (0 when the next record's signature
        /// is adjacent; spans index segments otherwise).
        next_sig_after_data: Ticks,
    },
    /// A data bucket.
    Data {
        /// The record's primary key.
        key: Key,
        /// Position of the record (diagnostics).
        record_index: u32,
        /// Attribute values (attribute clients verify matches on these).
        attrs: Box<[u64]>,
        /// Forward delta to the next index segment.
        next_seg_delta: Ticks,
        /// Forward delta to the next signature bucket.
        next_sig_delta: Ticks,
    },
}

impl HybridPayload {
    /// Forward delta to the next index segment.
    pub fn next_seg_delta(&self) -> Ticks {
        match self {
            HybridPayload::Index { node, .. } => node.next_seg_delta,
            HybridPayload::Sig { next_seg_delta, .. } => *next_seg_delta,
            HybridPayload::Data { next_seg_delta, .. } => *next_seg_delta,
        }
    }

    /// Forward delta to the next signature bucket (for the `Sig` variant
    /// this is the *following* record's signature, skipping its own data
    /// bucket).
    pub fn next_sig_delta(&self) -> Ticks {
        match self {
            HybridPayload::Index { next_sig_delta, .. } => *next_sig_delta,
            HybridPayload::Sig {
                next_sig_after_data,
                ..
            } => *next_sig_after_data,
            HybridPayload::Data { next_sig_delta, .. } => *next_sig_delta,
        }
    }

    /// The index bucket, if this is one.
    pub fn as_index(&self) -> Option<&IndexBucket> {
        match self {
            HybridPayload::Index { node, .. } => Some(node),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_accessors_dispatch() {
        let data = HybridPayload::Data {
            key: Key(1),
            record_index: 0,
            attrs: vec![1].into(),
            next_seg_delta: 11,
            next_sig_delta: 22,
        };
        assert_eq!(data.next_seg_delta(), 11);
        assert_eq!(data.next_sig_delta(), 22);
        assert!(data.as_index().is_none());

        let sig = HybridPayload::Sig {
            sig: Signature::zero(8),
            record_index: 0,
            next_seg_delta: 33,
            next_sig_after_data: 44,
        };
        assert_eq!(sig.next_seg_delta(), 33);
        assert_eq!(sig.next_sig_delta(), 44);
    }
}
