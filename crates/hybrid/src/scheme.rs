//! Channel layout for the hybrid scheme.
//!
//! The cycle is the distributed-indexing layout with every data bucket
//! prefixed by its record-signature bucket:
//!
//! ```text
//! [replicated ancestors | subtree preorder | (sig data) (sig data) …] × segments
//! ```
//!
//! Buckets are *not* uniform (signature buckets are much smaller than
//! index/data buckets), so all pointers are computed over byte offsets
//! rather than bucket counts.

use std::collections::HashMap;

use bda_btree::optimal::optimal_r_ragged;
use bda_btree::{ControlEntry, IndexBucket, IndexEntry, IndexTree};
use bda_core::machine::run_machine;
use bda_core::{
    AccessOutcome, BdaError, Bucket, Channel, Dataset, Key, Params, Result, Scheme, System, Ticks,
};
use bda_signature::{QueryTarget, SigParams};

use crate::machines::{HybridAttrMachine, HybridKeyMachine};
use crate::payload::HybridPayload;

/// The hybrid index-tree + signature scheme.
///
/// ```
/// use bda_core::{Dataset, DynSystem, Params, Record, Scheme};
/// use bda_hybrid::HybridScheme;
///
/// let dataset = Dataset::new(
///     (0..60).map(|i| Record::new(bda_core::Key(i * 3), vec![i * 3, i + 900])).collect(),
/// ).unwrap();
/// let system = HybridScheme::new().build(&dataset, &Params::paper()).unwrap();
/// // Key lookups descend the tree (a handful of probes)…
/// let key_hit = system.probe(bda_core::Key(33), 7_777);
/// assert!(key_hit.found && key_hit.probes <= 8);
/// // …while attribute queries use the signatures:
/// assert!(system.probe_attr(911, 7_777).found);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridScheme {
    r: Option<usize>,
    sig: SigParams,
}

impl HybridScheme {
    /// Hybrid scheme with the optimal replication depth and default
    /// signature parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force a fixed number of replicated levels.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = Some(r);
        self
    }

    /// Override the signature parameters.
    pub fn with_sig(mut self, sig: SigParams) -> Self {
        self.sig = sig;
        self
    }
}

/// A built hybrid broadcast.
#[derive(Debug)]
pub struct HybridSystem {
    channel: Channel<HybridPayload>,
    num_levels: u32,
    r: usize,
    sig: SigParams,
    num_records: u32,
    data_size: Ticks,
}

impl HybridSystem {
    /// Number of index levels `k`.
    pub fn num_levels(&self) -> usize {
        self.num_levels as usize
    }

    /// Replicated levels in use.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The signature parameters in use.
    pub fn sig_params(&self) -> SigParams {
        self.sig
    }

    /// Start an attribute query: retrieve the first record carrying
    /// attribute `value`.
    pub fn attr_query(&self, value: u64) -> HybridAttrMachine {
        HybridAttrMachine::new(
            QueryTarget::Attribute(value),
            self.sig.attr_signature(value),
            self.num_records,
            self.data_size,
        )
    }

    /// Run one complete attribute query (convenience over
    /// [`bda_core::machine::run_machine`]).
    pub fn probe_attr(&self, value: u64, tune_in: Ticks) -> AccessOutcome {
        run_machine(&self.channel, self.attr_query(value), tune_in)
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Index {
        level: usize,
        node: usize,
        seg_start: bool,
    },
    Sig(usize),
    Data(usize),
}

impl Scheme for HybridScheme {
    type System = HybridSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let fanout = params.index_entries_per_bucket();
        let tree = IndexTree::build(dataset, fanout)?;
        let k = tree.num_levels();
        let r = self
            .r
            .unwrap_or_else(|| optimal_r_ragged(fanout, dataset.len()))
            .min(k - 1);

        // --- slot sequence (distributed layout, data prefixed by sigs) ---
        let mut slots = Vec::new();
        for s in 0..tree.level(r).len() {
            let mut first = true;
            for l in 0..r {
                let child_on_path = tree.ancestor(r, s, l + 1);
                if tree.leftmost_descendant(l + 1, child_on_path, r) == s {
                    slots.push(Slot::Index {
                        level: l,
                        node: tree.ancestor(r, s, l),
                        seg_start: std::mem::take(&mut first),
                    });
                }
            }
            let mut stack = vec![(r, s)];
            while let Some((l, i)) = stack.pop() {
                slots.push(Slot::Index {
                    level: l,
                    node: i,
                    seg_start: std::mem::take(&mut first),
                });
                if !tree.is_leaf_level(l) {
                    for j in (0..tree.node(l, i).num_children()).rev() {
                        stack.push((l + 1, tree.child(l, i, j)));
                    }
                }
            }
            let (lo, hi) = tree.data_range(r, s);
            for d in lo..hi {
                slots.push(Slot::Sig(d));
                slots.push(Slot::Data(d));
            }
        }

        // --- byte geometry -------------------------------------------------
        let dt = Ticks::from(params.data_bucket_size());
        let it = Ticks::from(params.header_size + self.sig.sig_bytes);
        let size_of = |s: &Slot| match s {
            Slot::Sig(_) => it,
            _ => dt,
        };
        let mut starts = Vec::with_capacity(slots.len());
        let mut at: Ticks = 0;
        for s in &slots {
            starts.push(at);
            at += size_of(s);
        }
        let cycle = at;
        let fwd = |from_end: Ticks, to_start: Ticks| -> Ticks {
            let from = from_end % cycle;
            if to_start >= from {
                to_start - from
            } else {
                cycle - from + to_start
            }
        };

        // --- occurrence bookkeeping ----------------------------------------
        let mut index_occ: HashMap<(usize, usize), Vec<Ticks>> = HashMap::new();
        let mut data_start: Vec<Option<Ticks>> = vec![None; dataset.len()];
        let mut sig_starts: Vec<Ticks> = Vec::with_capacity(dataset.len());
        let mut seg_starts: Vec<Ticks> = Vec::new();
        for (i, s) in slots.iter().enumerate() {
            match *s {
                Slot::Index {
                    level,
                    node,
                    seg_start,
                } => {
                    index_occ.entry((level, node)).or_default().push(starts[i]);
                    if seg_start {
                        seg_starts.push(starts[i]);
                    }
                }
                Slot::Sig(_) => sig_starts.push(starts[i]),
                Slot::Data(d) => {
                    if data_start[d].replace(starts[i]).is_some() {
                        return Err(BdaError::BuildError(format!("record {d} appears twice")));
                    }
                }
            }
        }
        if seg_starts.is_empty() || sig_starts.is_empty() {
            return Err(BdaError::BuildError(
                "hybrid cycle needs index segments and signatures".into(),
            ));
        }
        for (d, s) in data_start.iter().enumerate() {
            if s.is_none() {
                return Err(BdaError::BuildError(format!("record {d} never broadcast")));
            }
        }
        // Nearest forward start in a sorted list (starts are built in
        // ascending order).
        let next_in = |sorted: &[Ticks], from_end: Ticks| -> Ticks {
            let from = from_end % cycle;
            let i = sorted.partition_point(|&s| s < from);
            let target = if i == sorted.len() {
                sorted[0]
            } else {
                sorted[i]
            };
            fwd(from_end, target)
        };
        let nearest_occ = |occs: &[Ticks], from_end: Ticks| -> Ticks {
            occs.iter()
                .map(|&o| fwd(from_end, o))
                .min()
                .expect("non-empty")
        };

        // --- payload construction ------------------------------------------
        let leaf_level = k - 1;
        let mut buckets = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let end = starts[i] + size_of(slot);
            let payload = match *slot {
                Slot::Data(d) => HybridPayload::Data {
                    key: dataset.record(d).key,
                    record_index: d as u32,
                    attrs: dataset.record(d).attrs.clone(),
                    next_seg_delta: next_in(&seg_starts, end),
                    next_sig_delta: next_in(&sig_starts, end),
                },
                Slot::Sig(d) => {
                    let data_end = end + dt;
                    HybridPayload::Sig {
                        sig: self
                            .sig
                            .record_signature(dataset.record(d).key, &dataset.record(d).attrs),
                        record_index: d as u32,
                        next_seg_delta: next_in(&seg_starts, end),
                        next_sig_after_data: next_in(&sig_starts, data_end),
                    }
                }
                Slot::Index {
                    level,
                    node,
                    seg_start,
                } => {
                    let tnode = tree.node(level, node);
                    let entries = (0..tnode.num_children())
                        .map(|j| {
                            let target = if level == leaf_level {
                                let (lo, _) = tree.data_range(level, node);
                                data_start[lo + j].expect("validated above")
                            } else {
                                let child = tree.child(level, node, j);
                                let occs = index_occ.get(&(level + 1, child)).ok_or_else(|| {
                                    BdaError::BuildError(format!(
                                        "child ({}, {child}) never broadcast",
                                        level + 1
                                    ))
                                })?;
                                let d = nearest_occ(occs, end);
                                return Ok(IndexEntry {
                                    max_key: tnode.child_max[j],
                                    delta: d,
                                });
                            };
                            Ok(IndexEntry {
                                max_key: tnode.child_max[j],
                                delta: fwd(end, target),
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    let control = (0..level)
                        .map(|a| {
                            let anc = tree.ancestor(level, node, a);
                            let anode = tree.node(a, anc);
                            ControlEntry {
                                min_key: anode.min_key,
                                max_key: anode.max_key,
                                delta: nearest_occ(
                                    index_occ.get(&(a, anc)).expect("ancestors broadcast"),
                                    end,
                                ),
                            }
                        })
                        .collect();
                    HybridPayload::Index {
                        node: IndexBucket {
                            level: level as u32,
                            node: node as u32,
                            min_key: tnode.min_key,
                            max_key: tnode.max_key,
                            segment_start: seg_start,
                            entries,
                            control,
                            next_seg_delta: next_in(&seg_starts, end),
                        },
                        next_sig_delta: next_in(&sig_starts, end),
                    }
                }
            };
            buckets.push(Bucket::new(size_of(slot) as u32, payload));
        }

        Ok(HybridSystem {
            channel: Channel::new(buckets)?,
            num_levels: k as u32,
            r,
            sig: self.sig,
            num_records: dataset.len() as u32,
            data_size: dt,
        })
    }
}

impl System for HybridSystem {
    type Payload = HybridPayload;
    type Machine = HybridKeyMachine;

    fn scheme_name(&self) -> &'static str {
        "hybrid"
    }

    fn channel(&self) -> &Channel<HybridPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<HybridPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> HybridKeyMachine {
        HybridKeyMachine::new(key, self.num_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| Record::new(Key(i * 3), vec![i * 3, i + 5000, i % 11]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn layout_pairs_each_record_with_a_signature() {
        let d = ds(50);
        let sys = HybridScheme::new().build(&d, &Params::paper()).unwrap();
        let mut sigs = 0;
        let mut datas = 0;
        let mut prev_was_sig = false;
        for b in sys.channel().buckets() {
            match &b.payload {
                HybridPayload::Sig { .. } => {
                    assert!(!prev_was_sig, "signatures never adjacent");
                    prev_was_sig = true;
                    sigs += 1;
                }
                HybridPayload::Data { .. } => {
                    assert!(prev_was_sig, "every data bucket follows its signature");
                    prev_was_sig = false;
                    datas += 1;
                }
                HybridPayload::Index { .. } => {
                    assert!(!prev_was_sig, "no index bucket between sig and data");
                }
            }
        }
        assert_eq!(sigs, 50);
        assert_eq!(datas, 50);
    }

    #[test]
    fn key_queries_find_every_key_from_every_alignment() {
        let d = ds(120);
        let sys = HybridScheme::new().build(&d, &Params::paper()).unwrap();
        let cycle = sys.channel().cycle_len();
        for i in 0..120u64 {
            for s in 0..6u64 {
                let out = sys.probe(Key(i * 3), s * cycle / 6 + 19);
                assert!(out.found, "key {} slot {s}", i * 3);
                assert!(!out.aborted);
            }
        }
        // Absent keys fail fast through the index.
        for miss in [1u64, 44, 9999] {
            let out = sys.probe(Key(miss), 777);
            assert!(!out.found);
            assert!(out.probes <= 10);
        }
    }

    #[test]
    fn key_queries_never_pay_for_signatures() {
        let d = ds(200);
        let p = Params::paper();
        let sys = HybridScheme::new().build(&d, &p).unwrap();
        let dt = u64::from(p.data_bucket_size());
        let k = sys.num_levels() as u64;
        let cycle = sys.channel().cycle_len();
        let mut worst = 0;
        for i in (0..200u64).step_by(7) {
            let out = sys.probe(Key(i * 3), i * 131 % cycle);
            assert!(out.found);
            worst = worst.max(out.tuning);
        }
        // Same tuning class as pure distributed indexing: the signature
        // buckets are dozed over. (One initial read may be a signature
        // bucket, hence the small slack.)
        assert!(worst <= (k + 4) * dt, "worst tuning {worst}");
    }

    #[test]
    fn attr_queries_work_from_every_alignment() {
        let d = ds(120);
        let sys = HybridScheme::new().build(&d, &Params::paper()).unwrap();
        let cycle = sys.channel().cycle_len();
        for i in (0..120u64).step_by(5) {
            for s in 0..5u64 {
                let out = sys.probe_attr(i + 5000, s * cycle / 5 + 7);
                assert!(out.found, "attr {} slot {s}", i + 5000);
                assert!(!out.aborted);
            }
        }
        // Absent attribute: full signature scan, then give up.
        let out = sys.probe_attr(123_456_789, 99);
        assert!(!out.found);
        assert!(!out.aborted);
        assert!(out.probes >= 120);
    }

    #[test]
    fn attr_scan_dozes_over_index_segments() {
        let d = ds(300);
        let p = Params::paper();
        let sys = HybridScheme::new().build(&d, &p).unwrap();
        // An absent attribute forces a complete scan; tuning should be
        // dominated by signature bytes, not index or data buckets.
        let out = sys.probe_attr(987_654_321, 0);
        assert!(!out.found);
        let it = u64::from(p.header_size) + u64::from(sys.sig_params().sig_bytes);
        let budget = 300 * it // every signature
            + 10 * u64::from(p.data_bucket_size()); // alignment + false drops
        assert!(out.tuning <= budget, "tuning {} > {budget}", out.tuning);
    }

    #[test]
    fn cycle_is_distributed_plus_signatures() {
        let d = ds(100);
        let p = Params::paper();
        let hybrid = HybridScheme::new().build(&d, &p).unwrap();
        let pure = bda_btree::DistributedScheme::with_r(hybrid.r())
            .build(&d, &p)
            .unwrap();
        let it = u64::from(p.header_size) + u64::from(hybrid.sig_params().sig_bytes);
        assert_eq!(
            hybrid.channel().cycle_len(),
            bda_core::DynSystem::cycle_len(&pure) + 100 * it
        );
    }
}
