//! Exporters: the `bda-obs/v1` JSON schema, a Prometheus text renderer,
//! and a dependency-free validator for the JSON schema.
//!
//! # The `bda-obs/v1` JSON schema
//!
//! One object per (scheme, driver) hub:
//!
//! ```json
//! {
//!   "schema": "bda-obs/v1",
//!   "scheme": "flat",
//!   "completed": 100, "found": 100, "abandoned": 0,
//!   "phases": {
//!     "initial_probe":   {"access": 1, "tuning": 1, "count": 1},
//!     "index_traversal": {"access": 0, "tuning": 0, "count": 0},
//!     "doze":            {"access": 9, "tuning": 0, "count": 2},
//!     "data_read":       {"access": 5, "tuning": 5, "count": 1},
//!     "retry":           {"access": 0, "tuning": 0, "count": 0},
//!     "stale_recovery":  {"access": 0, "tuning": 0, "count": 0}
//!   },
//!   "access":      {"count": 100, "sum": 1, "min": 1, "max": 9,
//!                   "p50": 4, "p90": 8, "p99": 9, "p999": 9},
//!   "tuning":      { ...same shape... },
//!   "retry_depth": { ...same shape... },
//!   "gauges": {
//!     "in_flight": {"last": 0, "min": 0, "max": 7, "mean": 3.5,
//!                   "samples": 12},
//!     "slab_occupancy": { ... }, "wakeup_queue_depth": { ... },
//!     "free_list_len": { ... }
//!   }
//! }
//! ```
//!
//! Every phase and gauge key is always present (zeros included), so
//! downstream tooling never branches on key existence. [`validate`]
//! checks exactly this contract and is what the CI `obs-smoke` job runs
//! against freshly emitted files.
//!
//! When the hub carries a windowed [`crate::TimeSeries`], the document
//! additionally gets a `"timeline"` block — window width, the evicted
//! fold, and one object per live window (id, counters, per-phase
//! totals). The block is optional (absent for aggregate-only hubs), but
//! when present the validator checks it structurally *and* checks the
//! collector's core invariant: window sums (plus the evicted fold) equal
//! the top-level aggregates exactly.

use crate::gauges::Gauge;
use crate::metrics::MetricsHub;
use crate::phase::Phase;
use crate::recorder::PhaseSpans;
use crate::timeseries::WindowStats;

/// The schema identifier written into (and required of) every document.
pub const SCHEMA: &str = "bda-obs/v1";

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &crate::histogram::Histogram) -> String {
    let (p50, p90, p99, p999) = h.percentiles();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
        h.len(),
        h.sum(),
        h.min(),
        h.max(),
        p50,
        p90,
        p99,
        p999
    )
}

fn phases_json(spans: &PhaseSpans) -> String {
    let mut out = String::from("{");
    for (i, (phase, t)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"access\":{},\"tuning\":{},\"count\":{}}}",
            phase.name(),
            t.access,
            t.tuning,
            t.count
        ));
    }
    out.push('}');
    out
}

fn window_stats_json(w: &WindowStats) -> String {
    format!(
        "{{\"completions\":{},\"found\":{},\"abandoned\":{},\"corrupt_reads\":{},\
         \"stale_restarts\":{},\"version_skews\":{},\"access\":{},\"tuning\":{},\
         \"wake_batches\":{},\"in_flight_high\":{},\"busy_ticks\":{},\"phases\":{}}}",
        w.completions,
        w.found,
        w.abandoned,
        w.corrupt_reads,
        w.stale_restarts,
        w.version_skews,
        w.access_ticks,
        w.tuning_ticks,
        w.wake_batches,
        w.in_flight_high,
        w.busy_ticks,
        phases_json(&w.spans)
    )
}

/// Render `hub` as one `bda-obs/v1` JSON object.
pub fn to_json(scheme: &str, hub: &MetricsHub) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"scheme\":\"{}\",\"completed\":{},\"found\":{},\"abandoned\":{},",
        SCHEMA,
        escape(scheme),
        hub.completed,
        hub.found,
        hub.abandoned
    ));
    out.push_str(&format!("\"phases\":{},", phases_json(&hub.spans)));
    out.push_str(&format!("\"access\":{},", histogram_json(&hub.access)));
    out.push_str(&format!("\"tuning\":{},", histogram_json(&hub.tuning)));
    out.push_str(&format!(
        "\"retry_depth\":{},",
        histogram_json(&hub.retry_depth)
    ));
    out.push_str("\"gauges\":{");
    for (i, (gauge, s)) in hub.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"last\":{},\"min\":{},\"max\":{},\"mean\":{},\"samples\":{}}}",
            gauge.name(),
            s.last,
            s.min(),
            s.max,
            s.mean(),
            s.samples
        ));
    }
    out.push('}');
    if let Some(ts) = hub.windows.as_ref() {
        out.push_str(&format!(
            ",\"timeline\":{{\"window_width\":{},\"retain\":{},\"watermark\":{},\"evicted\":{},\"windows\":[",
            ts.width(),
            ts.spec().retain,
            ts.watermark(),
            window_stats_json(ts.evicted())
        ));
        for (i, (id, w)) in ts.windows().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let stats = window_stats_json(w);
            out.push_str(&format!("{{\"id\":{id},{}", &stats[1..]));
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

fn prom_summary(out: &mut String, name: &str, scheme: &str, h: &crate::histogram::Histogram) {
    let scheme = escape(scheme);
    for (q, v) in [
        (0.5, h.quantile(0.5)),
        (0.9, h.quantile(0.9)),
        (0.99, h.quantile(0.99)),
        (0.999, h.quantile(0.999)),
    ] {
        out.push_str(&format!(
            "{name}{{scheme=\"{scheme}\",quantile=\"{q}\"}} {v}\n"
        ));
    }
    out.push_str(&format!("{name}_sum{{scheme=\"{scheme}\"}} {}\n", h.sum()));
    out.push_str(&format!(
        "{name}_count{{scheme=\"{scheme}\"}} {}\n",
        h.len()
    ));
}

/// Render hubs — one per scheme — in the Prometheus text exposition
/// format (`bda-cli simulate/compare --metrics-out` writes this).
pub fn to_prometheus(hubs: &[(&str, &MetricsHub)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP bda_queries_total Completed queries.\n# TYPE bda_queries_total counter\n");
    for (scheme, hub) in hubs {
        out.push_str(&format!(
            "bda_queries_total{{scheme=\"{}\"}} {}\n",
            escape(scheme),
            hub.completed
        ));
    }
    out.push_str(
        "# HELP bda_queries_found_total Queries that found their record.\n# TYPE bda_queries_found_total counter\n",
    );
    for (scheme, hub) in hubs {
        out.push_str(&format!(
            "bda_queries_found_total{{scheme=\"{}\"}} {}\n",
            escape(scheme),
            hub.found
        ));
    }
    out.push_str(
        "# HELP bda_queries_abandoned_total Queries abandoned by the retry policy.\n# TYPE bda_queries_abandoned_total counter\n",
    );
    for (scheme, hub) in hubs {
        out.push_str(&format!(
            "bda_queries_abandoned_total{{scheme=\"{}\"}} {}\n",
            escape(scheme),
            hub.abandoned
        ));
    }
    for (family, help, pick) in [
        (
            "bda_phase_access_bytes_total",
            "Access-time bytes attributed to each walk phase.",
            0usize,
        ),
        (
            "bda_phase_tuning_bytes_total",
            "Tuning-time bytes attributed to each walk phase.",
            1,
        ),
        (
            "bda_phase_steps_total",
            "Walk steps attributed to each phase.",
            2,
        ),
    ] {
        out.push_str(&format!(
            "# HELP {family} {help}\n# TYPE {family} counter\n"
        ));
        for (scheme, hub) in hubs {
            for phase in Phase::ALL {
                let t = hub.spans.get(phase);
                let v = [t.access, t.tuning, t.count][pick];
                out.push_str(&format!(
                    "{family}{{scheme=\"{}\",phase=\"{}\"}} {v}\n",
                    escape(scheme),
                    phase.name()
                ));
            }
        }
    }
    for (family, help, which) in [
        (
            "bda_access_bytes",
            "Per-query access time in bytes.",
            0usize,
        ),
        ("bda_tuning_bytes", "Per-query tuning time in bytes.", 1),
        (
            "bda_retry_depth",
            "Corrupted reads ridden out per query.",
            2,
        ),
    ] {
        out.push_str(&format!(
            "# HELP {family} {help}\n# TYPE {family} summary\n"
        ));
        for (scheme, hub) in hubs {
            let h = [&hub.access, &hub.tuning, &hub.retry_depth][which];
            prom_summary(&mut out, family, scheme, h);
        }
    }
    out.push_str(
        "# HELP bda_engine_gauge Engine occupancy gauges sampled at wakeup boundaries.\n# TYPE bda_engine_gauge gauge\n",
    );
    for (scheme, hub) in hubs {
        for (gauge, s) in hub.gauges.iter() {
            for (stat, v) in [
                ("last", s.last as f64),
                ("min", s.min() as f64),
                ("max", s.max as f64),
                ("mean", s.mean()),
            ] {
                out.push_str(&format!(
                    "bda_engine_gauge{{scheme=\"{}\",gauge=\"{}\",stat=\"{stat}\"}} {v}\n",
                    escape(scheme),
                    gauge.name()
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parsing + schema validation (no external dependencies).
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough structure for schema validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; validation only checks type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Parse a JSON document (strict enough for schema validation).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(_) => Err(format!("{ctx}.{key} is not a number")),
        None => Err(format!("{ctx}.{key} is missing")),
    }
}

fn require_histogram(doc: &Json, key: &str) -> Result<(), String> {
    let h = doc
        .get(key)
        .ok_or_else(|| format!("missing histogram '{key}'"))?;
    for field in ["count", "sum", "min", "max", "p50", "p90", "p99", "p999"] {
        require_num(h, field, key)?;
    }
    let (min, max) = (require_num(h, "min", key)?, require_num(h, "max", key)?);
    let (p50, p999) = (require_num(h, "p50", key)?, require_num(h, "p999", key)?);
    if require_num(h, "count", key)? > 0.0 && !(min <= p50 && p50 <= p999 && p999 <= max) {
        return Err(format!("{key}: quantiles out of order"));
    }
    Ok(())
}

/// Validate one `bda-obs/v1` document (as written by [`to_json`]):
/// structure, key completeness, and basic ordering invariants. Returns
/// the parsed scheme name on success.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(Json::Str(s)) => return Err(format!("unknown schema '{s}', expected '{SCHEMA}'")),
        _ => return Err("missing 'schema' string".into()),
    }
    let scheme = match doc.get("scheme") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err("missing 'scheme' string".into()),
    };
    let completed = require_num(&doc, "completed", "$")?;
    let found = require_num(&doc, "found", "$")?;
    require_num(&doc, "abandoned", "$")?;
    if found > completed {
        return Err("found exceeds completed".into());
    }
    let phases = doc.get("phases").ok_or("missing 'phases' object")?;
    for phase in Phase::ALL {
        let p = phases
            .get(phase.name())
            .ok_or_else(|| format!("phases.{} is missing", phase.name()))?;
        let access = require_num(p, "access", phase.name())?;
        let tuning = require_num(p, "tuning", phase.name())?;
        require_num(p, "count", phase.name())?;
        if tuning > access {
            return Err(format!("phases.{}: tuning exceeds access", phase.name()));
        }
    }
    for key in ["access", "tuning", "retry_depth"] {
        require_histogram(&doc, key)?;
    }
    let gauges = doc.get("gauges").ok_or("missing 'gauges' object")?;
    for gauge in Gauge::ALL {
        let g = gauges
            .get(gauge.name())
            .ok_or_else(|| format!("gauges.{} is missing", gauge.name()))?;
        for field in ["last", "min", "max", "mean", "samples"] {
            require_num(g, field, gauge.name())?;
        }
    }
    if let Some(timeline) = doc.get("timeline") {
        validate_timeline(timeline, completed, found)?;
    }
    Ok(scheme)
}

const WINDOW_COUNTERS: [&str; 11] = [
    "completions",
    "found",
    "abandoned",
    "corrupt_reads",
    "stale_restarts",
    "version_skews",
    "access",
    "tuning",
    "wake_batches",
    "in_flight_high",
    "busy_ticks",
];

fn validate_window_stats(w: &Json, ctx: &str) -> Result<(), String> {
    for field in WINDOW_COUNTERS {
        require_num(w, field, ctx)?;
    }
    if require_num(w, "tuning", ctx)? > require_num(w, "access", ctx)? {
        return Err(format!("{ctx}: tuning exceeds access"));
    }
    let phases = w
        .get("phases")
        .ok_or_else(|| format!("{ctx}.phases is missing"))?;
    for phase in Phase::ALL {
        let p = phases
            .get(phase.name())
            .ok_or_else(|| format!("{ctx}.phases.{} is missing", phase.name()))?;
        for field in ["access", "tuning", "count"] {
            require_num(p, field, phase.name())?;
        }
    }
    Ok(())
}

/// Validate a `timeline` block against the document's aggregate
/// counters: structure, completeness, and the collector's exactness
/// invariant (window sums + the evicted fold = aggregates).
fn validate_timeline(timeline: &Json, completed: f64, found: f64) -> Result<(), String> {
    if require_num(timeline, "window_width", "timeline")? < 1.0 {
        return Err("timeline.window_width must be at least 1".into());
    }
    require_num(timeline, "retain", "timeline")?;
    require_num(timeline, "watermark", "timeline")?;
    let evicted = timeline
        .get("evicted")
        .ok_or("timeline.evicted is missing")?;
    validate_window_stats(evicted, "timeline.evicted")?;
    let windows = match timeline.get("windows") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("timeline.windows is not an array".into()),
        None => return Err("timeline.windows is missing".into()),
    };
    let mut sum_completed = require_num(evicted, "completions", "timeline.evicted")?;
    let mut sum_found = require_num(evicted, "found", "timeline.evicted")?;
    let mut last_id = -1.0f64;
    for (i, w) in windows.iter().enumerate() {
        let ctx = format!("timeline.windows[{i}]");
        let id = require_num(w, "id", &ctx)?;
        if id <= last_id {
            return Err(format!("{ctx}: window ids are not strictly increasing"));
        }
        last_id = id;
        validate_window_stats(w, &ctx)?;
        sum_completed += require_num(w, "completions", &ctx)?;
        sum_found += require_num(w, "found", &ctx)?;
    }
    if sum_completed != completed {
        return Err(format!(
            "timeline: window completions sum to {sum_completed}, document says {completed}"
        ));
    }
    if sum_found != found {
        return Err(format!(
            "timeline: window found sum to {sum_found}, document says {found}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::PhaseSpans;

    fn sample_hub() -> MetricsHub {
        let mut hub = MetricsHub::new();
        let mut spans = PhaseSpans::new();
        spans.add(Phase::InitialProbe, 10, 10);
        spans.add(Phase::Doze, 40, 0);
        spans.add(Phase::DataRead, 50, 50);
        hub.complete(100, 60, 1, true, false, Some(&spans));
        hub.complete(220, 75, 0, false, true, Some(&spans));
        hub.gauges.record(Gauge::InFlight, 3);
        hub.gauges.record(Gauge::SlabOccupancy, 4);
        hub.gauges.record(Gauge::WakeupQueueDepth, 2);
        hub.gauges.record(Gauge::FreeListLen, 1);
        hub
    }

    #[test]
    fn emitted_json_round_trips_through_the_validator() {
        let hub = sample_hub();
        let json = to_json("flat", &hub);
        assert_eq!(validate(&json).unwrap(), "flat");
        // Scheme names with JSON-special characters survive escaping.
        let weird = to_json("sch\"eme\\x", &hub);
        assert_eq!(validate(&weird).unwrap(), "sch\"eme\\x");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let hub = sample_hub();
        let good = to_json("flat", &hub);
        assert!(validate(&good.replace("bda-obs/v1", "bda-obs/v0")).is_err());
        assert!(validate(&good.replace("\"doze\"", "\"dose\"")).is_err());
        assert!(validate(&good.replace("\"retry_depth\"", "\"retries\"")).is_err());
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        assert!(validate(&format!("{good} trailing")).is_err());
    }

    fn windowed_hub() -> MetricsHub {
        use crate::timeseries::{Completion, WindowSpec};
        let mut hub = sample_hub();
        // Rebuild the two completions through the windowed path so the
        // timeline block agrees with the aggregates recorded above.
        let mut windowed = MetricsHub::new();
        windowed.enable_windows(WindowSpec::new(64));
        let mut spans = PhaseSpans::new();
        spans.add(Phase::InitialProbe, 10, 10);
        spans.add(Phase::Doze, 40, 0);
        spans.add(Phase::DataRead, 50, 50);
        for (end_tick, access, tuning, retries, found, abandoned) in [
            (100u64, 100u64, 60u64, 1u32, true, false),
            (320, 220, 75, 0, false, true),
        ] {
            windowed.complete_at(
                &Completion {
                    end_tick,
                    access,
                    tuning,
                    retries,
                    stale_restarts: 0,
                    version_skews: 0,
                    found,
                    abandoned,
                },
                Some(&spans),
            );
        }
        windowed.windows.as_mut().unwrap().record_batch(0, 2);
        hub.windows = windowed.windows;
        hub
    }

    #[test]
    fn timeline_block_round_trips_through_the_validator() {
        let hub = windowed_hub();
        let json = to_json("flat", &hub);
        assert!(
            json.contains("\"timeline\""),
            "timeline block missing:\n{json}"
        );
        assert_eq!(validate(&json).unwrap(), "flat");
    }

    #[test]
    fn validator_rejects_inconsistent_or_malformed_timelines() {
        let hub = windowed_hub();
        let good = to_json("flat", &hub);
        // Window sums must equal the aggregates exactly.
        let skewed = good.replacen("\"completions\":1", "\"completions\":2", 1);
        assert_ne!(skewed, good);
        let err = validate(&skewed).unwrap_err();
        assert!(err.contains("completions"), "unexpected error: {err}");
        // Structural damage inside a window is caught.
        assert!(validate(&good.replace("\"busy_ticks\"", "\"busy\"")).is_err());
        assert!(validate(&good.replace("\"window_width\":64", "\"window_width\":0")).is_err());
        // A future schema version is rejected outright, timeline or not.
        let v2 = good.replace("bda-obs/v1", "bda-obs/v2");
        let err = validate(&v2).unwrap_err();
        assert!(
            err.contains("unknown schema 'bda-obs/v2'"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json("{\"a\": [1, 2.5, {\"b\": \"x\\ny\"}, true, null]}").unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(2.5));
        assert_eq!(arr[2].get("b"), Some(&Json::Str("x\ny".into())));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn prometheus_text_contains_every_family() {
        let hub = sample_hub();
        let text = to_prometheus(&[("flat", &hub)]);
        for needle in [
            "bda_queries_total{scheme=\"flat\"} 2",
            "bda_phase_access_bytes_total{scheme=\"flat\",phase=\"doze\"} 80",
            "bda_access_bytes{scheme=\"flat\",quantile=\"0.99\"}",
            "bda_access_bytes_count{scheme=\"flat\"} 2",
            "bda_engine_gauge{scheme=\"flat\",gauge=\"in_flight\",stat=\"last\"} 3",
            "# TYPE bda_retry_depth summary",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }
}
