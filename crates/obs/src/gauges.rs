//! Engine-level occupancy gauges, sampled at wakeup boundaries.
//!
//! The discrete-event engine advances in wake-up batches — one batch per
//! distinct simulated instant — which makes batch boundaries the natural
//! sampling grid for population-style metrics: they are exactly the
//! moments the engine's state changes. Four gauges cover the slab
//! engine's moving parts.

/// The engine state variables sampled once per wake-up batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Clients tuned in but not yet finished.
    InFlight,
    /// Client slots admitted (in flight or awaiting their arrival).
    SlabOccupancy,
    /// Distinct pending wake-up instants in the scheduler.
    WakeupQueueDepth,
    /// Recycled slots awaiting reuse.
    FreeListLen,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 4;

    /// All gauges, in canonical order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::InFlight,
        Gauge::SlabOccupancy,
        Gauge::WakeupQueueDepth,
        Gauge::FreeListLen,
    ];

    /// Dense index, `0..COUNT`, matching [`Gauge::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Gauge::InFlight => 0,
            Gauge::SlabOccupancy => 1,
            Gauge::WakeupQueueDepth => 2,
            Gauge::FreeListLen => 3,
        }
    }

    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::InFlight => "in_flight",
            Gauge::SlabOccupancy => "slab_occupancy",
            Gauge::WakeupQueueDepth => "wakeup_queue_depth",
            Gauge::FreeListLen => "free_list_len",
        }
    }
}

/// Running summary of one gauge's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeStat {
    /// Most recent sample.
    pub last: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples (for the mean).
    pub sum: u128,
    /// Number of samples.
    pub samples: u64,
}

impl Default for GaugeStat {
    fn default() -> Self {
        GaugeStat {
            last: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
            samples: 0,
        }
    }
}

impl GaugeStat {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += u128::from(v);
        self.samples += 1;
    }

    /// Smallest sample (0 when nothing was sampled).
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all samples (0 when nothing was sampled).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Fold another stat into this one. `last` keeps the *other* side's
    /// value when it sampled anything (merge order is "then"), so folding
    /// sequential segments preserves the final reading.
    pub fn merge(&mut self, other: &GaugeStat) {
        if other.samples > 0 {
            self.last = other.last;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.samples += other.samples;
    }
}

/// All four gauges of one engine (or one merged fleet of engines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSet {
    stats: [GaugeStat; Gauge::COUNT],
}

impl GaugeSet {
    /// Empty set.
    pub fn new() -> Self {
        GaugeSet::default()
    }

    /// Record one sample of `gauge`.
    pub fn record(&mut self, gauge: Gauge, v: u64) {
        self.stats[gauge.index()].record(v);
    }

    /// The summary for `gauge`.
    pub fn get(&self, gauge: Gauge) -> GaugeStat {
        self.stats[gauge.index()]
    }

    /// Fold another set into this one (see [`GaugeStat::merge`]).
    pub fn merge(&mut self, other: &GaugeSet) {
        for (a, b) in self.stats.iter_mut().zip(&other.stats) {
            a.merge(b);
        }
    }

    /// `(gauge, stat)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Gauge, GaugeStat)> + '_ {
        Gauge::ALL.iter().map(|&g| (g, self.get(g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_tracks_extrema_and_mean() {
        let mut s = GaugeStat::default();
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        for v in [3u64, 9, 6] {
            s.record(v);
        }
        assert_eq!(s.last, 6);
        assert_eq!(s.min(), 3);
        assert_eq!(s.max, 9);
        assert!((s.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_the_later_last() {
        let mut first = GaugeSet::new();
        first.record(Gauge::InFlight, 10);
        let mut second = GaugeSet::new();
        second.record(Gauge::InFlight, 2);
        second.record(Gauge::InFlight, 4);
        first.merge(&second);
        let s = first.get(Gauge::InFlight);
        assert_eq!(s.last, 4);
        assert_eq!(s.min(), 2);
        assert_eq!(s.max, 10);
        assert_eq!(s.samples, 3);
        // Merging an empty set changes nothing.
        let snapshot = first;
        first.merge(&GaugeSet::new());
        assert_eq!(first, snapshot);
    }
}
