//! Streaming log-bucketed histograms for latency-style metrics.
//!
//! The paper reports only means; real deployments care about tails (a
//! client stuck until the next broadcast cycle is a visible stall). This
//! histogram records `u64` samples (byte-times, retry depths) in
//! logarithmically spaced buckets — constant memory, bounded relative
//! error — and reports arbitrary quantiles. Bins are **mergeable**: every
//! histogram shares the one fixed bucket layout, so [`Histogram::merge`]
//! is a plain element-wise sum and therefore associative and commutative —
//! per-worker or per-round histograms fold into a global one without bias,
//! a property the crate's property tests pin.
//!
//! This is the single histogram implementation of the workspace; `bda-sim`
//! re-exports it (the former `bda_sim::histogram` duplicate is gone).

/// Sub-buckets per power of two; 16 gives ≤ ~3 % relative quantile error.
const SUBBUCKETS: u32 = 16;
const SUB_SHIFT: u32 = 4; // log2(SUBBUCKETS)

/// A fixed-memory histogram over `u64` samples with bounded relative
/// error. Equality compares the full bin contents, so two histograms are
/// equal iff they are observationally identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        // 64 powers of two × SUBBUCKETS linear sub-buckets each.
        Histogram {
            counts: vec![0u64; (64 * SUBBUCKETS) as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUBBUCKETS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // ≥ SUB_SHIFT
        let sub = (v >> (exp - SUB_SHIFT)) - SUBBUCKETS as u64; // 0..SUBBUCKETS
        ((exp - SUB_SHIFT + 1) as u64 * SUBBUCKETS as u64 + sub) as usize
    }

    /// Representative (lower-bound) value of bucket `i` — the inverse of
    /// [`Histogram::bucket_of`] up to sub-bucket resolution.
    fn bucket_floor(i: usize) -> u64 {
        let i = i as u64;
        let sb = SUBBUCKETS as u64;
        if i < sb {
            return i;
        }
        let exp = (i / sb - 1) as u32 + SUB_SHIFT;
        let sub = i % sb;
        (sb + sub) << (exp - SUB_SHIFT)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. All histograms share one
    /// fixed bin layout, so this is an exact element-wise sum: merging is
    /// associative and commutative, and a merged histogram is
    /// indistinguishable from one that recorded the concatenated samples.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with ≲3 % relative error; 0 when
    /// empty. `q = 0.5` is the median.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The standard reporting quartet `(p50, p90, p99, p99.9)`.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_error() {
        for v in (0u64..100_000).step_by(7) {
            let b = Histogram::bucket_of(v);
            let floor = Histogram::bucket_floor(b);
            assert!(floor <= v, "floor {floor} > v {v}");
            // Next bucket's floor bounds the value from above with ≤ 1/16
            // relative slack.
            let ceil = Histogram::bucket_floor(b + 1);
            assert!(ceil > v, "ceil {ceil} ≤ v {v}");
            assert!(
                (ceil - floor) as f64 <= (floor as f64 / SUBBUCKETS as f64).max(1.0),
                "bucket width too wide at {v}"
            );
        }
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
        for (q, want) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - want).abs() / want < 0.05,
                "q={q}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(1.0), 42);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.percentiles(), (42, 42, 42, 42));
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.len(), 3);
        assert!(h.quantile(0.9) > 1u64 << 60);
    }

    #[test]
    fn skewed_distribution_tail() {
        let mut h = Histogram::new();
        for _ in 0..9_900 {
            h.record(100);
        }
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5);
        let p999 = h.quantile(0.999);
        assert!((90..=110).contains(&p50), "p50={p50}");
        assert!(p999 >= 900_000, "p999={p999}");
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1000u64 {
            let x = (v * 7919) % 50_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(1 << 40);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut e = Histogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }
}
