//! # bda-obs — the observability layer
//!
//! The paper's entire evaluation is two scalar averages — access time and
//! tuning time. Everything added since (retries, abandonment, stale
//! restarts, version skews) shows up only as bespoke counters, with no way
//! to ask *where* a walk's bytes actually went or what the tail looks
//! like. This crate is the cross-cutting answer, designed around one hard
//! constraint: **instrumentation must cost nothing when it is off.**
//!
//! * [`Recorder`] — the statically-dispatched span sink. Walkers are
//!   generic over a `Recorder` whose associated `const ENABLED` gates
//!   every instrumentation site, so with the default [`NoopRecorder`] the
//!   instrumented hot paths compile to the same code as before the layer
//!   existed (the `engine_bench` harness verifies the throughput is
//!   unchanged).
//! * [`Phase`] — the six-way taxonomy every walk step is attributed to,
//!   decomposing the paper's two metrics per phase per scheme.
//! * [`Histogram`] — log-bucketed percentile histogram (p50/p90/p99/p99.9)
//!   with associatively mergeable bins; one implementation shared by the
//!   simulator, the engine and the exporters.
//! * [`Gauge`]/[`GaugeSet`] — engine-level occupancy gauges sampled at
//!   wakeup boundaries.
//! * [`MetricsHub`] — the mergeable aggregate everything drains into.
//! * [`TimeSeries`] — time-resolved telemetry: fixed-width tick windows
//!   (completions, wake batches, in-flight high-water, corrupt/stale
//!   events, per-phase tick totals, busy ticks) whose window sums equal
//!   the end-of-run aggregates exactly and merge window-by-window across
//!   shards.
//! * [`export`] — a compact JSON schema (`bda-obs/v1`), a Prometheus text
//!   renderer, and a dependency-free validator for the JSON schema.
//! * [`tracefmt`] — a Chrome-trace-event/Perfetto exporter
//!   (`bda-obs/trace/v1`): per-shard counter lanes from a [`TimeSeries`]
//!   plus seed-sampled per-request span timelines, all in the tick
//!   domain.
//! * [`progress`] — leveled progress events for long-running harnesses,
//!   so `--quiet` can actually be silent.
//!
//! The crate is deliberately dependency-free (times are raw `u64` byte
//! counts, not `bda_core::Ticks`) so it sits *below* `bda-core` in the
//! workspace DAG and every layer can use it.

pub mod export;
pub mod gauges;
pub mod histogram;
pub mod metrics;
pub mod phase;
pub mod progress;
pub mod recorder;
pub mod timeseries;
pub mod tracefmt;

pub use gauges::{Gauge, GaugeSet, GaugeStat};
pub use histogram::Histogram;
pub use metrics::MetricsHub;
pub use phase::{BucketKind, Phase};
pub use progress::{NullProgress, ProgressSink, QuietProgress, Severity, StderrProgress};
pub use recorder::{NoopRecorder, PhaseSpans, PhaseTotal, Recorder, SpanRecorder};
pub use timeseries::{Completion, TimeSeries, WindowSpec, WindowStats};
pub use tracefmt::{sample_indices, sample_priority, validate_trace, TraceBuilder, TRACE_SCHEMA};
