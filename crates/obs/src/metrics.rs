//! The aggregate every execution layer drains into.
//!
//! A [`MetricsHub`] owns one of each metric kind — per-phase span totals,
//! the three percentile histograms (access time, tuning time, retry
//! depth), the engine gauges, and completion counters. Hubs merge
//! associatively, so per-engine, per-round or per-worker hubs fold into a
//! global one without bias.
//!
//! This crate knows nothing about `AccessOutcome` (it sits below
//! `bda-core`), so completions arrive as scalars.

use crate::gauges::GaugeSet;
use crate::histogram::Histogram;
use crate::recorder::PhaseSpans;
use crate::timeseries::{Completion, TimeSeries, WindowSpec};

/// Aggregated observability state for one scheme under one driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsHub {
    /// Per-phase access/tuning byte totals summed over all completions.
    pub spans: PhaseSpans,
    /// Access-time distribution (bytes per query).
    pub access: Histogram,
    /// Tuning-time distribution (bytes listened per query).
    pub tuning: Histogram,
    /// Retry-depth distribution (corrupted reads ridden out per query).
    pub retry_depth: Histogram,
    /// Engine occupancy gauges (empty under the direct walker).
    pub gauges: GaugeSet,
    /// Queries completed.
    pub completed: u64,
    /// Queries that found their record.
    pub found: u64,
    /// Queries truthfully abandoned by the retry policy.
    pub abandoned: u64,
    /// Windowed time series, when [`MetricsHub::enable_windows`] was
    /// called. `None` (the default) keeps the hub purely aggregate;
    /// drivers that only call [`MetricsHub::complete`] never touch it.
    pub windows: Option<TimeSeries>,
}

impl MetricsHub {
    /// Empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Record one completed query. `spans` is the walk's per-phase
    /// decomposition when the driver collected one (`None` folds in
    /// nothing, keeping counters and histograms exact regardless).
    pub fn complete(
        &mut self,
        access: u64,
        tuning: u64,
        retries: u32,
        found: bool,
        abandoned: bool,
        spans: Option<&PhaseSpans>,
    ) {
        self.completed += 1;
        self.found += u64::from(found);
        self.abandoned += u64::from(abandoned);
        self.access.record(access);
        self.tuning.record(tuning);
        self.retry_depth.record(u64::from(retries));
        if let Some(s) = spans {
            self.spans.merge(s);
        }
    }

    /// Attach a windowed [`TimeSeries`] so future completions resolve in
    /// time as well as in aggregate. Call before recording; completions
    /// recorded through [`MetricsHub::complete`] (no instant) bypass the
    /// windows, so windowed drivers must use [`MetricsHub::complete_at`].
    pub fn enable_windows(&mut self, spec: WindowSpec) {
        self.windows = Some(TimeSeries::new(spec));
    }

    /// Record one completed query with its completion instant. Exactly
    /// [`MetricsHub::complete`] on the aggregates, plus window attribution
    /// (at `c.end_tick`) when windows are enabled — so windowed and
    /// unwindowed hubs agree on every aggregate component bit for bit.
    pub fn complete_at(&mut self, c: &Completion, spans: Option<&PhaseSpans>) {
        self.complete(c.access, c.tuning, c.retries, c.found, c.abandoned, spans);
        if let Some(ts) = self.windows.as_mut() {
            ts.record_completion(c, spans);
        }
    }

    /// Fold an iterator of hubs into one, in iteration order — the shape
    /// a sharded driver produces (one hub per worker shard). Returns
    /// `None` for an empty iterator so callers can distinguish "metrics
    /// never enabled" from "enabled but nothing completed". Because
    /// [`MetricsHub::merge`] is associative and histogram/span merges are
    /// element-wise sums, the fold order only affects the order-tagged
    /// gauge summaries; every other component equals single-hub
    /// recording of the concatenated completions.
    pub fn merged<I: IntoIterator<Item = MetricsHub>>(hubs: I) -> Option<MetricsHub> {
        let mut iter = hubs.into_iter();
        let mut merged = iter.next()?;
        for hub in iter {
            merged.merge(&hub);
        }
        Some(merged)
    }

    /// Fold another hub into this one. Associative: component merges are
    /// element-wise sums (histograms, spans), order-tagged summaries
    /// (gauges), or window-id-aligned sums (time series; a hub without
    /// windows adopts the other's).
    pub fn merge(&mut self, other: &MetricsHub) {
        self.spans.merge(&other.spans);
        self.access.merge(&other.access);
        self.tuning.merge(&other.tuning);
        self.retry_depth.merge(&other.retry_depth);
        self.gauges.merge(&other.gauges);
        self.completed += other.completed;
        self.found += other.found;
        self.abandoned += other.abandoned;
        match (self.windows.as_mut(), other.windows.as_ref()) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.windows = Some(theirs.clone()),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample_spans() -> PhaseSpans {
        let mut s = PhaseSpans::new();
        s.add(Phase::InitialProbe, 10, 10);
        s.add(Phase::Doze, 40, 0);
        s.add(Phase::DataRead, 50, 50);
        s
    }

    #[test]
    fn complete_updates_every_component() {
        let mut hub = MetricsHub::new();
        let spans = sample_spans();
        hub.complete(100, 60, 2, true, false, Some(&spans));
        hub.complete(300, 80, 0, false, true, None);
        assert_eq!(hub.completed, 2);
        assert_eq!(hub.found, 1);
        assert_eq!(hub.abandoned, 1);
        assert_eq!(hub.access.len(), 2);
        assert_eq!(hub.access.max(), 300);
        assert_eq!(hub.tuning.sum(), 140);
        assert_eq!(hub.retry_depth.quantile(1.0), 2);
        assert_eq!(hub.spans.total_access(), 100);
    }

    #[test]
    fn merge_equals_sequential_completion() {
        let spans = sample_spans();
        let mut left = MetricsHub::new();
        left.complete(100, 60, 0, true, false, Some(&spans));
        let mut right = MetricsHub::new();
        right.complete(200, 90, 1, true, false, Some(&spans));
        let mut merged = left.clone();
        merged.merge(&right);

        let mut sequential = MetricsHub::new();
        sequential.complete(100, 60, 0, true, false, Some(&spans));
        sequential.complete(200, 90, 1, true, false, Some(&spans));
        assert_eq!(merged, sequential);
    }

    #[test]
    fn windowed_hub_matches_unwindowed_aggregates_exactly() {
        use crate::timeseries::{Completion, WindowSpec};
        let spans = sample_spans();
        let mut plain = MetricsHub::new();
        let mut windowed = MetricsHub::new();
        windowed.enable_windows(WindowSpec::new(64));
        for i in 0..20u64 {
            let c = Completion {
                end_tick: i * 37,
                access: 100 + i,
                tuning: 60,
                retries: (i % 2) as u32,
                stale_restarts: 0,
                version_skews: 0,
                found: true,
                abandoned: false,
            };
            plain.complete(
                c.access,
                c.tuning,
                c.retries,
                c.found,
                c.abandoned,
                Some(&spans),
            );
            windowed.complete_at(&c, Some(&spans));
        }
        // Aggregates are untouched by windowing.
        let mut strip = windowed.clone();
        strip.windows = None;
        assert_eq!(strip, plain);
        // Window sums equal the aggregates exactly.
        let totals = windowed.windows.as_ref().unwrap().totals();
        assert_eq!(totals.completions, windowed.completed);
        assert_eq!(u128::from(totals.access_ticks), windowed.access.sum());
        assert_eq!(u128::from(totals.tuning_ticks), windowed.tuning.sum());
        assert_eq!(u128::from(totals.corrupt_reads), windowed.retry_depth.sum());
        assert_eq!(totals.spans, windowed.spans);
    }

    #[test]
    fn merge_adopts_and_aligns_window_series() {
        use crate::timeseries::{Completion, WindowSpec};
        let c = |end_tick: u64| Completion {
            end_tick,
            access: 10,
            tuning: 5,
            retries: 0,
            stale_restarts: 0,
            version_skews: 0,
            found: true,
            abandoned: false,
        };
        let mut a = MetricsHub::new();
        a.enable_windows(WindowSpec::new(100));
        a.complete_at(&c(50), None);
        let mut b = MetricsHub::new();
        b.enable_windows(WindowSpec::new(100));
        b.complete_at(&c(60), None);
        b.complete_at(&c(250), None);
        let mut merged = a.clone();
        merged.merge(&b);
        let ts = merged.windows.as_ref().unwrap();
        assert_eq!(ts.window(0).unwrap().completions, 2);
        assert_eq!(ts.window(2).unwrap().completions, 1);
        // A windowless hub adopts the other side's series on merge.
        let mut plain = MetricsHub::new();
        plain.complete(10, 5, 0, true, false, None);
        plain.merge(&a);
        assert_eq!(
            plain.windows.as_ref().unwrap().totals().completions,
            1,
            "adopted series carries only the windowed side's events"
        );
    }
}
