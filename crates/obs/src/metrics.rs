//! The aggregate every execution layer drains into.
//!
//! A [`MetricsHub`] owns one of each metric kind — per-phase span totals,
//! the three percentile histograms (access time, tuning time, retry
//! depth), the engine gauges, and completion counters. Hubs merge
//! associatively, so per-engine, per-round or per-worker hubs fold into a
//! global one without bias.
//!
//! This crate knows nothing about `AccessOutcome` (it sits below
//! `bda-core`), so completions arrive as scalars.

use crate::gauges::GaugeSet;
use crate::histogram::Histogram;
use crate::recorder::PhaseSpans;

/// Aggregated observability state for one scheme under one driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsHub {
    /// Per-phase access/tuning byte totals summed over all completions.
    pub spans: PhaseSpans,
    /// Access-time distribution (bytes per query).
    pub access: Histogram,
    /// Tuning-time distribution (bytes listened per query).
    pub tuning: Histogram,
    /// Retry-depth distribution (corrupted reads ridden out per query).
    pub retry_depth: Histogram,
    /// Engine occupancy gauges (empty under the direct walker).
    pub gauges: GaugeSet,
    /// Queries completed.
    pub completed: u64,
    /// Queries that found their record.
    pub found: u64,
    /// Queries truthfully abandoned by the retry policy.
    pub abandoned: u64,
}

impl MetricsHub {
    /// Empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Record one completed query. `spans` is the walk's per-phase
    /// decomposition when the driver collected one (`None` folds in
    /// nothing, keeping counters and histograms exact regardless).
    pub fn complete(
        &mut self,
        access: u64,
        tuning: u64,
        retries: u32,
        found: bool,
        abandoned: bool,
        spans: Option<&PhaseSpans>,
    ) {
        self.completed += 1;
        self.found += u64::from(found);
        self.abandoned += u64::from(abandoned);
        self.access.record(access);
        self.tuning.record(tuning);
        self.retry_depth.record(u64::from(retries));
        if let Some(s) = spans {
            self.spans.merge(s);
        }
    }

    /// Fold an iterator of hubs into one, in iteration order — the shape
    /// a sharded driver produces (one hub per worker shard). Returns
    /// `None` for an empty iterator so callers can distinguish "metrics
    /// never enabled" from "enabled but nothing completed". Because
    /// [`MetricsHub::merge`] is associative and histogram/span merges are
    /// element-wise sums, the fold order only affects the order-tagged
    /// gauge summaries; every other component equals single-hub
    /// recording of the concatenated completions.
    pub fn merged<I: IntoIterator<Item = MetricsHub>>(hubs: I) -> Option<MetricsHub> {
        let mut iter = hubs.into_iter();
        let mut merged = iter.next()?;
        for hub in iter {
            merged.merge(&hub);
        }
        Some(merged)
    }

    /// Fold another hub into this one. Associative: component merges are
    /// element-wise sums (histograms, spans) or order-tagged summaries
    /// (gauges).
    pub fn merge(&mut self, other: &MetricsHub) {
        self.spans.merge(&other.spans);
        self.access.merge(&other.access);
        self.tuning.merge(&other.tuning);
        self.retry_depth.merge(&other.retry_depth);
        self.gauges.merge(&other.gauges);
        self.completed += other.completed;
        self.found += other.found;
        self.abandoned += other.abandoned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn sample_spans() -> PhaseSpans {
        let mut s = PhaseSpans::new();
        s.add(Phase::InitialProbe, 10, 10);
        s.add(Phase::Doze, 40, 0);
        s.add(Phase::DataRead, 50, 50);
        s
    }

    #[test]
    fn complete_updates_every_component() {
        let mut hub = MetricsHub::new();
        let spans = sample_spans();
        hub.complete(100, 60, 2, true, false, Some(&spans));
        hub.complete(300, 80, 0, false, true, None);
        assert_eq!(hub.completed, 2);
        assert_eq!(hub.found, 1);
        assert_eq!(hub.abandoned, 1);
        assert_eq!(hub.access.len(), 2);
        assert_eq!(hub.access.max(), 300);
        assert_eq!(hub.tuning.sum(), 140);
        assert_eq!(hub.retry_depth.quantile(1.0), 2);
        assert_eq!(hub.spans.total_access(), 100);
    }

    #[test]
    fn merge_equals_sequential_completion() {
        let spans = sample_spans();
        let mut left = MetricsHub::new();
        left.complete(100, 60, 0, true, false, Some(&spans));
        let mut right = MetricsHub::new();
        right.complete(200, 90, 1, true, false, Some(&spans));
        let mut merged = left.clone();
        merged.merge(&right);

        let mut sequential = MetricsHub::new();
        sequential.complete(100, 60, 0, true, false, Some(&spans));
        sequential.complete(200, 90, 1, true, false, Some(&spans));
        assert_eq!(merged, sequential);
    }
}
