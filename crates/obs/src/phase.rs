//! The phase taxonomy: where a walk's bytes go.
//!
//! Every externally visible step of a client query — one bucket read or
//! one doze — is attributed to exactly one [`Phase`], so the paper's two
//! metrics (access time and tuning time) decompose into a seven-way
//! breakdown per scheme. Attribution happens in the walkers at the moment
//! the step's byte cost is known, which makes the decomposition *exact by
//! construction*: per-phase access bytes sum to the walk's access time and
//! per-phase tuning bytes to its tuning time, an invariant the span
//! accounting test pins on all eight schemes.

/// What one walk step was spent on.
///
/// Precedence when several labels could apply to a read: a corrupted
/// transmission is always [`Phase::Retry`] (the payload never reached the
/// machine); a version-skewed bucket is [`Phase::StaleRecovery`]; the
/// first usable read of a walk is [`Phase::InitialProbe`] (the paper's
/// initial wait `Ft` rides on it, since a freshly tuned-in client listens
/// through the tail of a partial bucket); everything else is classified by
/// the machine's own [`BucketKind`] judgement of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The first usable bucket read after tune-in, including the partial
    /// bucket tail listened through to find the boundary.
    InitialProbe,
    /// Reads of index/control information (tree nodes, hash control
    /// parts, signature buckets) used to navigate, not to answer.
    IndexTraversal,
    /// Radio-off time between probes — access time with no tuning cost.
    Doze,
    /// Reads of data buckets, including false drops (a wrong data bucket
    /// downloaded on a spurious signature match is still a data read).
    DataRead,
    /// Reads lost to transmission corruption, plus nothing else — the
    /// recovery doze a retry policy inserts is ordinary [`Phase::Doze`].
    Retry,
    /// Reads of buckets whose broadcast-program version differed from the
    /// walk's anchor version (dynamic broadcast only).
    StaleRecovery,
    /// Radio retuning from one channel of a multichannel group to another
    /// — elapsed air time with the radio settling, so access time with no
    /// tuning cost (like [`Phase::Doze`], but attributable to the group
    /// topology rather than the schedule).
    ChannelSwitch,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 7;

    /// All phases, in canonical (display and index) order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::InitialProbe,
        Phase::IndexTraversal,
        Phase::Doze,
        Phase::DataRead,
        Phase::Retry,
        Phase::StaleRecovery,
        Phase::ChannelSwitch,
    ];

    /// Dense index, `0..COUNT`, matching [`Phase::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Phase::InitialProbe => 0,
            Phase::IndexTraversal => 1,
            Phase::Doze => 2,
            Phase::DataRead => 3,
            Phase::Retry => 4,
            Phase::StaleRecovery => 5,
            Phase::ChannelSwitch => 6,
        }
    }

    /// Stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::InitialProbe => "initial_probe",
            Phase::IndexTraversal => "index_traversal",
            Phase::Doze => "doze",
            Phase::DataRead => "data_read",
            Phase::Retry => "retry",
            Phase::StaleRecovery => "stale_recovery",
            Phase::ChannelSwitch => "channel_switch",
        }
    }
}

/// A protocol machine's own classification of a bucket payload, used to
/// attribute clean, non-initial reads to [`Phase::IndexTraversal`] or
/// [`Phase::DataRead`]. Only the machine knows whether a bucket steered
/// the walk or carried (candidate) answer data, so the walker asks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketKind {
    /// Navigation: tree nodes, hash control chains, signatures.
    Index,
    /// Payload: a (candidate) record download.
    Data,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT, "names must be distinct");
    }
}
