//! Progress reporting for long sweeps, routed through a sink instead of
//! ad-hoc `eprintln!`.
//!
//! The bench sweeps used to print progress straight to stderr, which made
//! `--quiet` a lie: it silenced the tables but not the chatter. Progress
//! now flows through a [`ProgressSink`], and quietness is a property of
//! the sink, not of scattered call sites. Errors (aborted sweeps, poisoned
//! cells) are [`Severity::Error`] and survive `--quiet`; routine progress
//! is [`Severity::Progress`] and is dropped by the quiet sink.
//!
//! `emit` takes `&self` and the trait requires `Sync`, so one sink can be
//! shared by the scoped worker threads of a parallel sweep.

/// How important a progress event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine progress; suppressed by quiet sinks.
    Progress,
    /// A failure the user must see even under `--quiet`.
    Error,
}

/// A sink for progress events. Shared across sweep worker threads.
pub trait ProgressSink: Sync {
    /// Deliver one event.
    fn emit(&self, severity: Severity, message: &str);
}

/// Prints every event to stderr (the default, chatty sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn emit(&self, _severity: Severity, message: &str) {
        eprintln!("{message}");
    }
}

/// Prints only [`Severity::Error`] events — the `--quiet` sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuietProgress;

impl ProgressSink for QuietProgress {
    fn emit(&self, severity: Severity, message: &str) {
        if severity == Severity::Error {
            eprintln!("{message}");
        }
    }
}

/// Drops everything. Useful in tests asserting that a path is silent.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    fn emit(&self, _severity: Severity, _message: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A capturing sink for tests.
    struct Capture(Mutex<Vec<(Severity, String)>>);

    impl ProgressSink for Capture {
        fn emit(&self, severity: Severity, message: &str) {
            self.0.lock().unwrap().push((severity, message.to_string()));
        }
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = Capture(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            let shared: &dyn ProgressSink = &sink;
            for i in 0..4 {
                scope.spawn(move || shared.emit(Severity::Progress, &format!("cell {i}")));
            }
        });
        let events = sink.0.into_inner().unwrap();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|(s, _)| *s == Severity::Progress));
    }

    #[test]
    fn severity_orders_error_above_progress() {
        assert!(Severity::Error > Severity::Progress);
    }
}
