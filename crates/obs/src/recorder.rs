//! The span sink walkers are generic over, and its two stock impls.
//!
//! Observability that is *sometimes* on must cost nothing when it is off.
//! Dynamic dispatch (`&dyn Recorder`) or an `Option<..>` check per step
//! would tax the hottest loop in the repo — the walker's `step()` — for
//! every caller, instrumented or not. Instead the walkers take a type
//! parameter `R: Recorder` defaulting to [`NoopRecorder`], and guard every
//! instrumentation site with `if R::ENABLED { .. }`. `ENABLED` is an
//! associated `const`, so for the no-op case the branch — and the phase
//! classification feeding it — folds away at compile time and the
//! instrumented walker is the same machine code as the uninstrumented one.

use crate::phase::Phase;

/// A sink for per-step walk spans.
///
/// Implementations with `ENABLED = false` promise their [`Recorder::span`]
/// is a no-op; walkers skip the call (and the phase attribution feeding
/// it) entirely.
pub trait Recorder {
    /// Whether this recorder observes anything. Instrumentation sites are
    /// compiled out when `false`.
    const ENABLED: bool;

    /// One walk step: `phase` consumed `access` bytes of access time, of
    /// which `tuning` bytes were listened to (`tuning == access` for
    /// reads, `tuning == 0` for dozes).
    fn span(&mut self, phase: Phase, access: u64, tuning: u64);

    /// `n` walk steps of the same phase, recorded in bulk: together they
    /// consumed `access` bytes of access time and `tuning` bytes of
    /// tuning time. Used by the analytical fast-forward path, which
    /// accounts a whole run of skipped buckets in one call; recording
    /// `span_n` must be indistinguishable from recording the `n`
    /// constituent spans one by one (same totals, count advanced by `n`).
    fn span_n(&mut self, phase: Phase, n: u64, access: u64, tuning: u64);
}

/// The default recorder: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span(&mut self, _phase: Phase, _access: u64, _tuning: u64) {}

    #[inline(always)]
    fn span_n(&mut self, _phase: Phase, _n: u64, _access: u64, _tuning: u64) {}
}

/// A mutable borrow records into the referent, so callers can keep
/// ownership of an accumulating recorder across many walks.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn span(&mut self, phase: Phase, access: u64, tuning: u64) {
        (**self).span(phase, access, tuning);
    }

    #[inline(always)]
    fn span_n(&mut self, phase: Phase, n: u64, access: u64, tuning: u64) {
        (**self).span_n(phase, n, access, tuning);
    }
}

/// Accumulated byte totals for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Access-time bytes attributed to this phase.
    pub access: u64,
    /// Tuning-time bytes attributed to this phase (≤ `access`).
    pub tuning: u64,
    /// Steps attributed to this phase.
    pub count: u64,
}

impl PhaseTotal {
    fn add(&mut self, access: u64, tuning: u64) {
        self.access += access;
        self.tuning += tuning;
        self.count += 1;
    }

    fn add_n(&mut self, n: u64, access: u64, tuning: u64) {
        self.access += access;
        self.tuning += tuning;
        self.count += n;
    }

    fn merge(&mut self, other: &PhaseTotal) {
        self.access += other.access;
        self.tuning += other.tuning;
        self.count += other.count;
    }
}

/// Per-phase span totals — the walk-level decomposition of the paper's
/// two metrics. Exact by construction: [`PhaseSpans::total_access`] equals
/// the walk's access time and [`PhaseSpans::total_tuning`] its tuning
/// time, because every step records its byte deltas as they are paid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSpans {
    totals: [PhaseTotal; Phase::COUNT],
}

impl PhaseSpans {
    /// All-zero spans.
    pub fn new() -> Self {
        PhaseSpans::default()
    }

    /// The accumulated totals for `phase`.
    pub fn get(&self, phase: Phase) -> PhaseTotal {
        self.totals[phase.index()]
    }

    /// Attribute one step to `phase`.
    pub fn add(&mut self, phase: Phase, access: u64, tuning: u64) {
        self.totals[phase.index()].add(access, tuning);
    }

    /// Attribute `n` steps to `phase` in bulk — exactly equivalent to `n`
    /// [`PhaseSpans::add`] calls whose access/tuning deltas sum to
    /// `access`/`tuning` (the fast-forward path's aggregate accounting).
    pub fn add_n(&mut self, phase: Phase, n: u64, access: u64, tuning: u64) {
        self.totals[phase.index()].add_n(n, access, tuning);
    }

    /// Fold another walk's (or another worker's) spans into this one.
    /// Associative and commutative, like every merge in this crate.
    pub fn merge(&mut self, other: &PhaseSpans) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            a.merge(b);
        }
    }

    /// Sum of per-phase access bytes — equals the walk's access time.
    pub fn total_access(&self) -> u64 {
        self.totals.iter().map(|t| t.access).sum()
    }

    /// Sum of per-phase tuning bytes — equals the walk's tuning time.
    pub fn total_tuning(&self) -> u64 {
        self.totals.iter().map(|t| t.tuning).sum()
    }

    /// `(phase, totals)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseTotal)> + '_ {
        Phase::ALL.iter().map(|&p| (p, self.get(p)))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.totals.iter().all(|t| t.count == 0)
    }
}

/// The accumulating recorder: folds every span into a [`PhaseSpans`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanRecorder {
    /// The per-phase totals recorded so far.
    pub spans: PhaseSpans,
}

impl SpanRecorder {
    /// A fresh, all-zero recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }
}

impl Recorder for SpanRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn span(&mut self, phase: Phase, access: u64, tuning: u64) {
        self.spans.add(phase, access, tuning);
    }

    #[inline]
    fn span_n(&mut self, phase: Phase, n: u64, access: u64, tuning: u64) {
        self.spans.add_n(phase, n, access, tuning);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_total() {
        let mut r = SpanRecorder::new();
        r.span(Phase::InitialProbe, 10, 10);
        r.span(Phase::Doze, 90, 0);
        r.span(Phase::DataRead, 50, 50);
        assert_eq!(r.spans.total_access(), 150);
        assert_eq!(r.spans.total_tuning(), 60);
        assert_eq!(r.spans.get(Phase::Doze).count, 1);
        assert_eq!(r.spans.get(Phase::Retry).count, 0);
        assert!(!r.spans.is_empty());
    }

    #[test]
    fn borrowed_recorder_records_into_referent() {
        let mut r = SpanRecorder::new();
        fn record_step<R: Recorder>(mut sink: R) {
            sink.span(Phase::Retry, 5, 5);
        }
        record_step(&mut r);
        assert_eq!(r.spans.get(Phase::Retry).count, 1);
        // Enablement propagates through the borrow; the no-op stays off.
        const _: () = assert!(<&mut SpanRecorder as Recorder>::ENABLED);
        const _: () = assert!(!NoopRecorder::ENABLED);
    }

    #[test]
    fn bulk_spans_equal_their_constituents() {
        // span_n(phase, n, Σaccess, Σtuning) ≡ the n individual spans.
        let mut one_by_one = SpanRecorder::new();
        for _ in 0..5 {
            one_by_one.span(Phase::IndexTraversal, 24, 24);
            one_by_one.span(Phase::Doze, 533, 0);
        }
        let mut bulk = SpanRecorder::new();
        bulk.span_n(Phase::IndexTraversal, 5, 5 * 24, 5 * 24);
        bulk.span_n(Phase::Doze, 5, 5 * 533, 0);
        assert_eq!(one_by_one.spans, bulk.spans);
        // Zero-count bulk spans are no-ops in every field.
        bulk.span_n(Phase::Retry, 0, 0, 0);
        assert_eq!(one_by_one.spans, bulk.spans);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = PhaseSpans::new();
        a.add(Phase::Doze, 100, 0);
        let mut b = PhaseSpans::new();
        b.add(Phase::Doze, 20, 0);
        b.add(Phase::DataRead, 30, 30);
        a.merge(&b);
        assert_eq!(a.get(Phase::Doze).access, 120);
        assert_eq!(a.get(Phase::Doze).count, 2);
        assert_eq!(a.get(Phase::DataRead).tuning, 30);
        assert_eq!(a.total_access(), 150);
    }
}
