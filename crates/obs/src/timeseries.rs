//! Time-resolved telemetry: fixed-width tick windows over a run.
//!
//! The aggregate [`crate::MetricsHub`] answers *how much* — total access
//! ticks, the tuning histogram, how many requests abandoned. It cannot
//! answer *when*: which stretch of the broadcast saw the corruption
//! spike, where wakeup batches bunch up, when a shard went idle. A
//! [`TimeSeries`] adds the time axis while keeping every invariant the
//! observability layer is built on:
//!
//! * **Tick domain only.** Windows are keyed by `tick / width` where
//!   ticks are bytes of air time — never wall clock — so a windowed run
//!   is exactly as deterministic as an unwindowed one.
//! * **Exact accounting.** Every recorded event lands in exactly one
//!   window (or, once a window ages out of the ring, in the `evicted`
//!   accumulator), so [`TimeSeries::totals`] equals the end-of-run
//!   aggregates *exactly* — no sampling, no decay. The property suite
//!   pins window sums against `EngineStats` on every scheme.
//! * **Mergeable by window id.** Shards over one broadcast program share
//!   the global tick clock, so per-shard series merge window-by-window
//!   ([`TimeSeries::merge`]); the per-request counter projection of the
//!   merged series is bit-identical to a single-engine run for every
//!   shard count, exactly like [`crate::MetricsHub`] itself.
//!
//! Retention is a ring in spirit: at most `retain` live windows are kept,
//! and older ones fold into `evicted` (sums stay exact). Folding keeps the
//! *highest* window ids, so the tail of a long run is always resolved.

use std::collections::BTreeMap;

use crate::recorder::PhaseSpans;

/// Configuration for windowed collection: window width in ticks and how
/// many live windows to retain before folding old ones into the evicted
/// accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Ticks (bytes of air time) per window. A natural choice is one
    /// broadcast cycle, so each window is one revolution of the program.
    pub width: u64,
    /// Maximum number of live windows; older windows fold into the
    /// evicted accumulator (sums stay exact, resolution is lost).
    pub retain: usize,
}

impl WindowSpec {
    /// Default live-window retention.
    pub const DEFAULT_RETAIN: usize = 4096;

    /// A spec with the given window width and default retention.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width >= 1, "window width must be at least one tick");
        WindowSpec {
            width,
            retain: Self::DEFAULT_RETAIN,
        }
    }

    /// Override the retention (minimum 1).
    pub fn with_retain(mut self, retain: usize) -> Self {
        assert!(retain >= 1, "must retain at least one live window");
        self.retain = retain;
        self
    }
}

/// One completed query, as the execution layers hand it to
/// [`crate::MetricsHub::complete_at`]. This crate sits below `bda-core`,
/// so the outcome arrives as scalars; `end_tick` is the completion
/// instant (`arrival + access`) that decides window attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Completion instant in ticks: `arrival + access`.
    pub end_tick: u64,
    /// Access time (bytes from tune-in to completion).
    pub access: u64,
    /// Tuning time (bytes listened; ≤ access).
    pub tuning: u64,
    /// Corrupted reads ridden out (or abandoned at).
    pub retries: u32,
    /// Stale-machine restarts after version skew.
    pub stale_restarts: u32,
    /// Version-skewed buckets observed.
    pub version_skews: u32,
    /// Whether the record was retrieved.
    pub found: bool,
    /// Whether the retry policy truthfully gave up.
    pub abandoned: bool,
}

/// Counters accumulated over one tick window (or over all evicted
/// windows). All per-request fields attribute at the request's
/// *completion* instant; `wake_batches`, `in_flight_high` and
/// `busy_ticks` attribute at the engine instants they describe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Requests completed in this window.
    pub completions: u64,
    /// Completions that found their record.
    pub found: u64,
    /// Completions truthfully abandoned by the retry policy.
    pub abandoned: u64,
    /// Corrupted reads across completions in this window.
    pub corrupt_reads: u64,
    /// Stale-machine restarts across completions in this window.
    pub stale_restarts: u64,
    /// Version-skewed buckets across completions in this window.
    pub version_skews: u64,
    /// Access ticks summed over completions in this window.
    pub access_ticks: u64,
    /// Tuning ticks summed over completions in this window.
    pub tuning_ticks: u64,
    /// Wake-up batches the engine drained at instants in this window.
    pub wake_batches: u64,
    /// High-water in-flight population sampled at this window's wake
    /// batches (0 when no batch landed here).
    pub in_flight_high: u64,
    /// Ticks of this window during which the engine had at least one
    /// client in flight.
    pub busy_ticks: u64,
    /// Per-phase tick totals of the completions attributed here.
    pub spans: PhaseSpans,
}

impl WindowStats {
    /// Fold another window's counters into this one: sums, except
    /// `in_flight_high` which keeps the max (it is a high-water mark, not
    /// a flow).
    pub fn merge(&mut self, other: &WindowStats) {
        self.completions += other.completions;
        self.found += other.found;
        self.abandoned += other.abandoned;
        self.corrupt_reads += other.corrupt_reads;
        self.stale_restarts += other.stale_restarts;
        self.version_skews += other.version_skews;
        self.access_ticks += other.access_ticks;
        self.tuning_ticks += other.tuning_ticks;
        self.wake_batches += other.wake_batches;
        self.in_flight_high = self.in_flight_high.max(other.in_flight_high);
        self.busy_ticks += other.busy_ticks;
        self.spans.merge(&other.spans);
    }

    /// The projection of these counters that is **invariant under
    /// sharding**: every field is a sum of per-request quantities, so for
    /// any partition of a batch the per-shard windows merge to exactly
    /// the single-engine window. `wake_batches`, `in_flight_high` and
    /// `busy_ticks` describe scheduler shape and are excluded, mirroring
    /// `EngineStats::outcome_counters`.
    pub fn outcome_counters(&self) -> [u64; 8] {
        [
            self.completions,
            self.found,
            self.abandoned,
            self.corrupt_reads,
            self.stale_restarts,
            self.version_skews,
            self.access_ticks,
            self.tuning_ticks,
        ]
    }

    fn record(&mut self, c: &Completion, spans: Option<&PhaseSpans>) {
        self.completions += 1;
        self.found += u64::from(c.found);
        self.abandoned += u64::from(c.abandoned);
        self.corrupt_reads += u64::from(c.retries);
        self.stale_restarts += u64::from(c.stale_restarts);
        self.version_skews += u64::from(c.version_skews);
        self.access_ticks += c.access;
        self.tuning_ticks += c.tuning;
        if let Some(s) = spans {
            self.spans.merge(s);
        }
    }
}

/// Fixed-width tick windows with bounded live retention and an exact
/// evicted accumulator. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    spec: WindowSpec,
    /// Live windows keyed by window id (`tick / width`).
    windows: BTreeMap<u64, WindowStats>,
    /// Fold of every window that aged out of the live set. Totals stay
    /// exact: `evicted` + live windows = everything ever recorded.
    evicted: WindowStats,
    /// Window ids below this have been folded; late events to them go
    /// straight to `evicted`.
    watermark: u64,
}

impl TimeSeries {
    /// An empty series with the given window spec.
    pub fn new(spec: WindowSpec) -> Self {
        TimeSeries {
            spec,
            windows: BTreeMap::new(),
            evicted: WindowStats::default(),
            watermark: 0,
        }
    }

    /// The window spec this series collects under.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Window width in ticks.
    pub fn width(&self) -> u64 {
        self.spec.width
    }

    /// The window id covering `tick`.
    pub fn window_id(&self, tick: u64) -> u64 {
        tick / self.spec.width
    }

    /// Number of live windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.evicted == WindowStats::default()
    }

    /// Live `(window id, stats)` pairs in ascending id order.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &WindowStats)> + '_ {
        self.windows.iter().map(|(&id, w)| (id, w))
    }

    /// The live stats for window `id`, if retained.
    pub fn window(&self, id: u64) -> Option<&WindowStats> {
        self.windows.get(&id)
    }

    /// The fold of every window that aged out of the live set.
    pub fn evicted(&self) -> &WindowStats {
        &self.evicted
    }

    /// Window ids below this have been folded into [`TimeSeries::evicted`].
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    fn slot(&mut self, id: u64) -> &mut WindowStats {
        if id < self.watermark {
            return &mut self.evicted;
        }
        if let std::collections::btree_map::Entry::Vacant(e) = self.windows.entry(id) {
            e.insert(WindowStats::default());
            self.trim();
            if id < self.watermark {
                return &mut self.evicted;
            }
        }
        self.windows.get_mut(&id).expect("window just ensured")
    }

    fn trim(&mut self) {
        while self.windows.len() > self.spec.retain {
            let (id, w) = self.windows.pop_first().expect("len > retain >= 1");
            self.evicted.merge(&w);
            self.watermark = self.watermark.max(id + 1);
        }
    }

    /// Record one completed query, attributed to the window containing
    /// its completion instant.
    pub fn record_completion(&mut self, c: &Completion, spans: Option<&PhaseSpans>) {
        let id = self.window_id(c.end_tick);
        self.slot(id).record(c, spans);
    }

    /// Record one drained wake-up batch at `tick` with the engine's
    /// post-batch in-flight population.
    pub fn record_batch(&mut self, tick: u64, in_flight: u64) {
        let id = self.window_id(tick);
        let w = self.slot(id);
        w.wake_batches += 1;
        w.in_flight_high = w.in_flight_high.max(in_flight);
    }

    /// Attribute the half-open busy interval `[start, end)` — ticks during
    /// which the engine had at least one client in flight — across the
    /// windows it overlaps.
    pub fn record_busy_span(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let width = self.spec.width;
        let mut cursor = start;
        while cursor < end {
            let id = cursor / width;
            let window_end = (id + 1).saturating_mul(width).max(cursor + 1);
            let upto = end.min(window_end);
            self.slot(id).busy_ticks += upto - cursor;
            cursor = upto;
        }
    }

    /// Fold another series into this one, window id by window id. Both
    /// series must share a [`WindowSpec`]. Retention is re-applied after
    /// the union, so merging per-shard series yields the same live set
    /// (and the same evicted fold) as a single engine recording the
    /// concatenated events — the shard-count-invariance the test suite
    /// pins.
    ///
    /// # Panics
    ///
    /// Panics if the specs differ (windows would not be comparable).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge time series with different window specs"
        );
        self.watermark = self.watermark.max(other.watermark);
        // Re-fold own live windows that fall below the raised watermark.
        while let Some((&id, _)) = self.windows.first_key_value() {
            if id >= self.watermark {
                break;
            }
            let w = self.windows.remove(&id).expect("first key exists");
            self.evicted.merge(&w);
        }
        self.evicted.merge(&other.evicted);
        for (&id, w) in &other.windows {
            if id < self.watermark {
                self.evicted.merge(w);
            } else {
                self.windows.entry(id).or_default().merge(w);
            }
        }
        self.trim();
    }

    /// Exact fold of everything ever recorded: all live windows plus the
    /// evicted accumulator. By construction this equals the end-of-run
    /// aggregates (`in_flight_high` is a max over windows, not a sum).
    pub fn totals(&self) -> WindowStats {
        let mut t = self.evicted;
        for w in self.windows.values() {
            t.merge(w);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn completion(end_tick: u64, access: u64, tuning: u64) -> Completion {
        Completion {
            end_tick,
            access,
            tuning,
            retries: 1,
            stale_restarts: 0,
            version_skews: 0,
            found: true,
            abandoned: false,
        }
    }

    #[test]
    fn events_land_in_the_window_of_their_instant() {
        let mut ts = TimeSeries::new(WindowSpec::new(100));
        ts.record_completion(&completion(0, 10, 5), None);
        ts.record_completion(&completion(99, 20, 10), None);
        ts.record_completion(&completion(100, 30, 15), None);
        ts.record_batch(250, 7);
        assert_eq!(ts.window(0).unwrap().completions, 2);
        assert_eq!(ts.window(0).unwrap().access_ticks, 30);
        assert_eq!(ts.window(1).unwrap().completions, 1);
        assert_eq!(ts.window(2).unwrap().wake_batches, 1);
        assert_eq!(ts.window(2).unwrap().in_flight_high, 7);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn totals_are_exact_even_under_tight_retention() {
        let mut ts = TimeSeries::new(WindowSpec::new(10).with_retain(3));
        let mut spans = PhaseSpans::new();
        spans.add(Phase::DataRead, 5, 5);
        for i in 0..50u64 {
            let mut c = completion(i * 10, 5, 5);
            c.retries = (i % 3) as u32;
            ts.record_completion(&c, Some(&spans));
        }
        assert_eq!(ts.len(), 3, "retention caps live windows");
        assert!(ts.watermark() > 0);
        let t = ts.totals();
        assert_eq!(t.completions, 50);
        assert_eq!(t.access_ticks, 250);
        assert_eq!(t.corrupt_reads, (0..50u64).map(|i| i % 3).sum::<u64>());
        assert_eq!(t.spans.get(Phase::DataRead).count, 50);
        // Late events to a folded window go straight to `evicted`.
        ts.record_completion(&completion(0, 1, 1), None);
        assert_eq!(ts.totals().completions, 51);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn busy_spans_distribute_exactly_across_windows() {
        let mut ts = TimeSeries::new(WindowSpec::new(100));
        ts.record_busy_span(50, 250);
        assert_eq!(ts.window(0).unwrap().busy_ticks, 50);
        assert_eq!(ts.window(1).unwrap().busy_ticks, 100);
        assert_eq!(ts.window(2).unwrap().busy_ticks, 50);
        let total: u64 = ts.windows().map(|(_, w)| w.busy_ticks).sum();
        assert_eq!(total, 200);
        // Degenerate spans record nothing.
        ts.record_busy_span(10, 10);
        ts.record_busy_span(10, 5);
        assert_eq!(ts.totals().busy_ticks, 200);
    }

    #[test]
    fn merge_is_window_aligned_and_order_insensitive() {
        let spec = WindowSpec::new(100);
        let mut a = TimeSeries::new(spec);
        let mut b = TimeSeries::new(spec);
        let mut whole = TimeSeries::new(spec);
        for i in 0..40u64 {
            let c = completion(i * 37, 7, 3);
            whole.record_completion(&c, None);
            if i % 2 == 0 {
                a.record_completion(&c, None);
            } else {
                b.record_completion(&c, None);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative here");
        assert_eq!(ab, whole, "split-and-merge equals single recording");
    }

    #[test]
    fn merge_with_retention_matches_single_series() {
        let spec = WindowSpec::new(10).with_retain(4);
        let mut a = TimeSeries::new(spec);
        let mut b = TimeSeries::new(spec);
        let mut whole = TimeSeries::new(spec);
        // Monotone event stream, round-robin split — the sharded shape.
        for i in 0..100u64 {
            let c = completion(i * 7, 2, 1);
            whole.record_completion(&c, None);
            if i % 2 == 0 {
                a.record_completion(&c, None);
            } else {
                b.record_completion(&c, None);
            }
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, whole, "retention must commute with merging");
        assert_eq!(merged.totals(), whole.totals());
    }

    #[test]
    #[should_panic(expected = "different window specs")]
    fn merging_mismatched_specs_is_rejected() {
        let mut a = TimeSeries::new(WindowSpec::new(10));
        let b = TimeSeries::new(WindowSpec::new(20));
        a.merge(&b);
    }

    #[test]
    fn high_water_is_a_max_not_a_sum() {
        let mut a = TimeSeries::new(WindowSpec::new(100));
        a.record_batch(5, 10);
        let mut b = TimeSeries::new(WindowSpec::new(100));
        b.record_batch(7, 25);
        b.record_batch(8, 4);
        a.merge(&b);
        let w = a.window(0).unwrap();
        assert_eq!(w.wake_batches, 3);
        assert_eq!(w.in_flight_high, 25);
        assert_eq!(a.totals().in_flight_high, 25);
    }

    #[test]
    fn zero_width_windows_are_rejected() {
        let r = std::panic::catch_unwind(|| WindowSpec::new(0));
        assert!(r.is_err());
    }
}
