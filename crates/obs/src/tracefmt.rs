//! Chrome-trace-event export (`bda-obs/trace/v1`) — timelines Perfetto
//! and `chrome://tracing` can load directly.
//!
//! The document is the standard JSON object form of the trace event
//! format, plus a `schema` tag for our validator:
//!
//! ```json
//! {
//!   "schema": "bda-obs/trace/v1",
//!   "displayTimeUnit": "ms",
//!   "traceEvents": [
//!     {"ph":"M","name":"process_name","pid":1,"tid":0,
//!      "args":{"name":"flat"}},
//!     {"ph":"M","name":"thread_name","pid":1,"tid":0,
//!      "args":{"name":"shard 0"}},
//!     {"ph":"C","name":"shard 0","pid":1,"tid":0,"ts":0,
//!      "args":{"completions":12,"busy_ticks":500}},
//!     {"ph":"X","name":"data_read","pid":2,"tid":7,"ts":120,"dur":8,
//!      "args":{"tuning":8}}
//!   ]
//! }
//! ```
//!
//! All `ts`/`dur` values are **ticks** (bytes of air time), not wall
//! time — the trace is a deterministic artifact of the simulation, byte
//! identical across runs and hosts. Counter lanes (`ph:"C"`) carry
//! per-window series from a [`TimeSeries`]; span lanes (`ph:"X"`) carry
//! per-request phase segments for a deterministically sampled subset of
//! requests (tracing every client of a 100k-request run is infeasible;
//! see [`sample_indices`]).

use std::fmt::Write as _;

use crate::export::{escape, parse_json, Json};
use crate::timeseries::TimeSeries;

/// The schema identifier written into (and required of) every trace
/// document.
pub const TRACE_SCHEMA: &str = "bda-obs/trace/v1";

/// Incremental builder for one `bda-obs/trace/v1` document.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process lane `pid` (a `ph:"M"` metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Name the thread lane `(pid, tid)` (a `ph:"M"` metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// One counter sample (`ph:"C"`): `series` are `(name, value)` pairs
    /// plotted together in the lane `name` at instant `ts`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, ts: u64, series: &[(&str, u64)]) {
        let mut args = String::new();
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{v}", escape(k));
        }
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
            escape(name)
        ));
    }

    /// One complete span (`ph:"X"`) of `dur` ticks starting at `ts`, with
    /// numeric `args`.
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        dur: u64,
        args: &[(&str, u64)],
    ) {
        let mut extra = String::new();
        for (k, v) in args {
            let _ = write!(extra, ",\"{}\":{v}", escape(k));
        }
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"cat\":\"walk\",\"args\":{{\"_\":0{extra}}}}}",
            escape(name)
        ));
    }

    /// Emit one counter lane per shard-style [`TimeSeries`]: a sample per
    /// live window at the window's start tick, carrying completions, wake
    /// batches, in-flight high-water, busy ticks and corrupt reads. The
    /// evicted fold, having no single instant, is not plotted (its sums
    /// live in the metrics JSON).
    pub fn counter_lane(&mut self, pid: u64, tid: u64, name: &str, series: &TimeSeries) {
        self.thread_name(pid, tid, name);
        let width = series.width();
        for (id, w) in series.windows() {
            self.counter(
                pid,
                tid,
                name,
                id * width,
                &[
                    ("completions", w.completions),
                    ("wake_batches", w.wake_batches),
                    ("in_flight_high", w.in_flight_high),
                    ("busy_ticks", w.busy_ticks),
                    ("corrupt_reads", w.corrupt_reads),
                ],
            );
        }
    }

    /// Render the finished document.
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(64 + self.events.iter().map(String::len).sum::<usize>());
        let _ = write!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }
}

/// The sampling priority of request `index` under `seed` — a pure
/// function of its two arguments (SplitMix64 of `seed ^ mix(index)`), so
/// trace sampling is reproducible run to run and shard placement can
/// never change which requests are traced. Lower priority = sampled
/// first.
pub fn sample_priority(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `k` request indices (of `0..n`) with the lowest
/// [`sample_priority`], ties broken by index, returned in ascending index
/// order. Deterministic in `(seed, n, k)`.
pub fn sample_indices(seed: u64, n: u64, k: usize) -> Vec<u64> {
    let mut ranked: Vec<(u64, u64)> = (0..n).map(|i| (sample_priority(seed, i), i)).collect();
    ranked.sort_unstable();
    ranked.truncate(k);
    let mut picked: Vec<u64> = ranked.into_iter().map(|(_, i)| i).collect();
    picked.sort_unstable();
    picked
}

fn event_num(e: &Json, key: &str, i: usize) -> Result<f64, String> {
    match e.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(_) => Err(format!("traceEvents[{i}].{key} is not a number")),
        None => Err(format!("traceEvents[{i}].{key} is missing")),
    }
}

/// Validate one `bda-obs/trace/v1` document: schema tag, event array,
/// and per-phase-type required fields. Returns the event count on
/// success.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == TRACE_SCHEMA => {}
        Some(Json::Str(s)) => {
            return Err(format!("unknown schema '{s}', expected '{TRACE_SCHEMA}'"))
        }
        _ => return Err("missing 'schema' string".into()),
    }
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("'traceEvents' is not an array".into()),
        None => return Err("missing 'traceEvents' array".into()),
    };
    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("traceEvents[{i}].ph is missing")),
        };
        match e.get("name") {
            Some(Json::Str(_)) => {}
            _ => return Err(format!("traceEvents[{i}].name is missing")),
        }
        event_num(e, "pid", i)?;
        event_num(e, "tid", i)?;
        match ph {
            "X" => {
                let ts = event_num(e, "ts", i)?;
                let dur = event_num(e, "dur", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative ts/dur"));
                }
            }
            "C" => {
                event_num(e, "ts", i)?;
                match e.get("args") {
                    Some(Json::Obj(members)) if !members.is_empty() => {
                        for (k, v) in members {
                            if !matches!(v, Json::Num(_)) {
                                return Err(format!("traceEvents[{i}].args.{k} is not a number"));
                            }
                        }
                    }
                    _ => return Err(format!("traceEvents[{i}]: counter without args")),
                }
            }
            "M" => match e.get("args").and_then(|a| a.get("name")) {
                Some(Json::Str(_)) => {}
                _ => return Err(format!("traceEvents[{i}]: metadata without args.name")),
            },
            other => return Err(format!("traceEvents[{i}]: unsupported ph '{other}'")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{Completion, TimeSeries, WindowSpec};

    fn sample_series() -> TimeSeries {
        let mut ts = TimeSeries::new(WindowSpec::new(100));
        for i in 0..5u64 {
            ts.record_completion(
                &Completion {
                    end_tick: i * 70,
                    access: 10,
                    tuning: 4,
                    retries: 0,
                    stale_restarts: 0,
                    version_skews: 0,
                    found: true,
                    abandoned: false,
                },
                None,
            );
            ts.record_batch(i * 70, i);
        }
        ts.record_busy_span(0, 280);
        ts
    }

    #[test]
    fn built_traces_round_trip_through_the_validator() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "flat");
        b.counter_lane(1, 0, "shard 0", &sample_series());
        b.span(2, 7, "data_read", 120, 8, &[("tuning", 8)]);
        b.span(2, 7, "doze \"d\"", 128, 90, &[]);
        let n = b.len();
        let doc = b.finish();
        assert_eq!(validate_trace(&doc).unwrap(), n);
        assert!(doc.contains("\"schema\":\"bda-obs/trace/v1\""));
    }

    #[test]
    fn validator_rejects_schema_version_mismatch_and_malformed_events() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "flat");
        let good = b.finish();
        // Schema-version mismatch: a future v2 document must be rejected,
        // not half-validated.
        let v2 = good.replace("bda-obs/trace/v1", "bda-obs/trace/v2");
        let err = validate_trace(&v2).unwrap_err();
        assert!(err.contains("unknown schema"), "got: {err}");
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace("{\"schema\":\"bda-obs/trace/v1\"}").is_err());
        assert!(validate_trace(
            "{\"schema\":\"bda-obs/trace/v1\",\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"pid\":1,\"tid\":1,\"ts\":1}]}"
        )
        .is_err(), "X span without dur must fail");
        assert!(validate_trace(
            "{\"schema\":\"bda-obs/trace/v1\",\"traceEvents\":[{\"ph\":\"C\",\"name\":\"c\",\"pid\":1,\"tid\":1,\"ts\":1,\"args\":{}}]}"
        )
        .is_err(), "counter without series must fail");
        assert!(validate_trace(
            "{\"schema\":\"bda-obs/trace/v1\",\"traceEvents\":[{\"ph\":\"B\",\"name\":\"b\",\"pid\":1,\"tid\":1}]}"
        )
        .is_err(), "unsupported phase type must fail");
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        // Stable across calls (purity) and sensitive to both arguments.
        for i in 0..100u64 {
            assert_eq!(sample_priority(42, i), sample_priority(42, i));
        }
        assert_ne!(sample_priority(42, 7), sample_priority(43, 7));
        assert_ne!(sample_priority(42, 7), sample_priority(42, 8));
        let a = sample_indices(0xBEEF, 10_000, 16);
        let b = sample_indices(0xBEEF, 10_000, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending index order");
        // A different seed samples a different subset (overwhelmingly).
        assert_ne!(a, sample_indices(0xF00D, 10_000, 16));
        // k >= n degenerates to everything.
        assert_eq!(sample_indices(1, 5, 99), vec![0, 1, 2, 3, 4]);
    }
}
