//! Property tests for the observability primitives: merge associativity
//! across all mergeable types, and histogram quantile bounds checked
//! against exact sorted samples.

use bda_obs::{Histogram, MetricsHub, Phase, PhaseSpans};
use proptest::prelude::*;

fn histogram_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn spans_of(steps: &[(u8, u64)]) -> PhaseSpans {
    let mut s = PhaseSpans::new();
    for &(p, access) in steps {
        let phase = Phase::ALL[p as usize % Phase::COUNT];
        let tuning = if phase == Phase::Doze { 0 } else { access };
        s.add(phase, access, tuning);
    }
    s
}

fn hub_of(completions: &[(u64, u64, u8)]) -> MetricsHub {
    let mut hub = MetricsHub::new();
    for &(access, tuning, retries) in completions {
        let tuning = tuning.min(access);
        hub.complete(
            access,
            tuning,
            u32::from(retries),
            retries == 0,
            false,
            None,
        );
    }
    hub
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and merge equals concatenated
    /// recording, for histograms.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..60),
        b in prop::collection::vec(any::<u64>(), 0..60),
        c in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let concat: Vec<u64> =
            a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &histogram_of(&concat));
    }

    /// Quantiles stay within [min, max], are monotone in q, and land
    /// within the histogram's documented ~1/16 relative error of the
    /// exact order statistic.
    #[test]
    fn quantiles_bound_exact_order_statistics(
        mut samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
        q_millis in prop::collection::vec(0u32..=1000, 1..8),
    ) {
        let h = histogram_of(&samples);
        samples.sort_unstable();
        let n = samples.len();

        let mut sorted_qs: Vec<f64> =
            q_millis.iter().map(|&m| f64::from(m) / 1000.0).collect();
        sorted_qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut prev = 0u64;
        for &q in &sorted_qs {
            let got = h.quantile(q);
            prop_assert!(got >= *samples.first().unwrap());
            prop_assert!(got <= *samples.last().unwrap());
            prop_assert!(got >= prev, "quantile not monotone at q={}", q);
            prev = got;

            // Compare against the exact order statistic the histogram
            // targets: rank ceil(q·n) (1-based), clamped to ≥ 1.
            let rank = ((q * n as f64).ceil() as usize).max(1).min(n);
            let exact = samples[rank - 1];
            // Log-bucketed floors sit within one sub-bucket below the
            // exact value: floor ≤ exact, and exact < floor·(1 + 1/16)
            // + 1 (the +1 covers the linear sub-16 region).
            prop_assert!(
                got <= exact,
                "quantile {} overshot exact rank value {}", got, exact
            );
            let ceiling = exact.max(1) as f64;
            prop_assert!(
                got as f64 >= ceiling / (1.0 + 1.0 / 16.0) - 1.0,
                "quantile {} more than one sub-bucket below exact {}", got, exact
            );
        }
    }

    /// Histogram sum/min/max/len agree with the exact values.
    #[test]
    fn scalar_summaries_are_exact(
        samples in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = histogram_of(&samples);
        prop_assert_eq!(h.len(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// Merge associativity for per-phase span totals, plus exactness of
    /// the access/tuning roll-ups.
    #[test]
    fn span_merge_is_associative_and_totals_exact(
        a in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..40),
        b in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..40),
        c in prop::collection::vec((any::<u8>(), 0u64..1_000_000), 0..40),
    ) {
        let (sa, sb, sc) = (spans_of(&a), spans_of(&b), spans_of(&c));

        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);

        prop_assert_eq!(left, right);

        let all: Vec<(u8, u64)> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, spans_of(&all));
        prop_assert_eq!(
            left.total_access(),
            all.iter().map(|&(_, v)| v).sum::<u64>()
        );
        prop_assert!(left.total_tuning() <= left.total_access());
    }

    /// Merge associativity for whole hubs: merging per-worker hubs in any
    /// grouping equals recording every completion into one hub.
    #[test]
    fn hub_merge_is_associative(
        a in prop::collection::vec((0u64..1_000_000, any::<u64>(), any::<u8>()), 0..30),
        b in prop::collection::vec((0u64..1_000_000, any::<u64>(), any::<u8>()), 0..30),
        c in prop::collection::vec((0u64..1_000_000, any::<u64>(), any::<u8>()), 0..30),
    ) {
        let (ha, hb, hc) = (hub_of(&a), hub_of(&b), hub_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let all: Vec<(u64, u64, u8)> =
            a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hub_of(&all));
    }

    /// The JSON exporter and validator agree on every randomly built hub.
    #[test]
    fn exported_json_always_validates(
        completions in prop::collection::vec((0u64..1_000_000, any::<u64>(), any::<u8>()), 0..30),
        scheme_pick in any::<proptest::sample::Index>(),
    ) {
        const SCHEMES: &[&str] = &[
            "flat", "(1,m)", "distributed", "hashing \"B\"",
            "simple_sig\\tail", "hybrid index+sig",
        ];
        let scheme = SCHEMES[scheme_pick.index(SCHEMES.len())];
        let hub = hub_of(&completions);
        let json = bda_obs::export::to_json(scheme, &hub);
        let parsed = bda_obs::export::validate(&json);
        prop_assert_eq!(parsed.as_deref(), Ok(scheme));
    }
}
